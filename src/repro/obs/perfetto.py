"""Chrome/Perfetto trace-event export of chunk journeys.

Renders a :class:`~repro.obs.provenance.JourneyTracker`'s records (or a
journal/flight dump re-parsed from JSONL) in the Trace Event Format
that ``ui.perfetto.dev`` and ``chrome://tracing`` load directly:

- one *process* (pid) per conversation (C.ID), name ``conn <C.ID>``;
- one *thread* (tid) per chunk label, named ``chunk [offset,+length)``,
  plus tid 0 as the conversation's lifecycle lane (establishment,
  verification verdicts, delivery, eviction);
- consecutive stage records become ``X`` (complete) slices — the gap
  between ``link_tx`` and ``link_rx`` is literally the wire time — with
  the final record an instant;
- retransmission generations are joined to their consequences with
  ``s``/``f`` flow arrows, so a refusal → retry → placement chain reads
  as arrows across the timeline.

Timestamps are simulated seconds scaled to microseconds (the format's
unit).  Every slice carries the full label in ``args`` so a parsed
trace reconstructs each chunk's stage sequence exactly
(:func:`chunk_timelines`) — the export is lossless for journeys.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping

from repro.obs.provenance import JourneyTracker, StageRecord

__all__ = [
    "journeys_to_trace",
    "write_trace",
    "parse_trace",
    "chunk_timelines",
]

#: One simulated second in trace-event timestamp units (microseconds).
_US = 1e6


def _coerce(records: Iterable[StageRecord | Mapping[str, object]]) -> list[StageRecord]:
    out: list[StageRecord] = []
    for record in records:
        if isinstance(record, StageRecord):
            out.append(record)
        elif isinstance(record, Mapping) and record.get("kind") == "provenance":
            out.append(StageRecord.from_dict(record))
    return out


def journeys_to_trace(
    records: Iterable[StageRecord | Mapping[str, object]],
    conn: int | None = None,
) -> dict[str, object]:
    """Build a Trace Event Format document from provenance records.

    *records* may be :class:`StageRecord` objects (a tracker's
    ``records``) or parsed JSONL dicts (``kind == "provenance"`` lines
    of a journal or flight dump; other kinds are ignored).  *conn*
    restricts the export to one conversation.
    """
    parsed = _coerce(records)
    if conn is not None:
        parsed = [r for r in parsed if r.c_id == conn]

    by_conn: dict[int, list[tuple[int, StageRecord]]] = {}
    for seq, record in enumerate(parsed):
        by_conn.setdefault(record.c_id, []).append((seq, record))

    events: list[dict[str, object]] = []
    for c_id in sorted(by_conn):
        conn_records = by_conn[c_id]
        chunk_keys = sorted(
            {r.key for _, r in conn_records if r.level == "chunk"},
            key=lambda key: (key[1], key[2]),
        )
        tids = {key: tid for tid, key in enumerate(chunk_keys, start=1)}
        events.append(
            {
                "ph": "M", "pid": c_id, "tid": 0, "name": "process_name",
                "args": {"name": f"conn {c_id}"},
            }
        )
        events.append(
            {
                "ph": "M", "pid": c_id, "tid": 0, "name": "process_sort_index",
                "args": {"sort_index": c_id},
            }
        )
        events.append(
            {
                "ph": "M", "pid": c_id, "tid": 0, "name": "thread_name",
                "args": {"name": "lifecycle"},
            }
        )
        for key, tid in tids.items():
            events.append(
                {
                    "ph": "M", "pid": c_id, "tid": tid, "name": "thread_name",
                    "args": {"name": f"chunk [{key[1]},+{key[2]})"},
                }
            )

        # Lifecycle lane: tpdu / frame / conn records as instants.
        for _, record in conn_records:
            if record.level == "chunk":
                continue
            events.append(
                {
                    "ph": "i", "s": "t", "pid": c_id, "tid": 0,
                    "ts": record.t * _US,
                    "name": record.stage,
                    "args": _args(record),
                }
            )

        # Chunk lanes: stage slices plus retransmission flow arrows.
        for key in chunk_keys:
            tid = tids[key]
            timeline = sorted(
                (
                    (seq, r)
                    for seq, r in conn_records
                    if r.level == "chunk" and r.key == key
                ),
                key=lambda pair: (pair[1].t, pair[0]),
            )
            for index, (_, record) in enumerate(timeline):
                ts = record.t * _US
                if index + 1 < len(timeline):
                    duration = timeline[index + 1][1].t * _US - ts
                    events.append(
                        {
                            "ph": "X", "pid": c_id, "tid": tid,
                            "ts": ts, "dur": duration,
                            "name": record.stage,
                            "args": _args(record),
                        }
                    )
                else:
                    events.append(
                        {
                            "ph": "i", "s": "p", "pid": c_id, "tid": tid,
                            "ts": ts,
                            "name": record.stage,
                            "args": _args(record),
                        }
                    )
                if record.stage == "retransmit":
                    flow_id = f"{c_id}:{key[1]}+{key[2]}:g{record.gen}"
                    events.append(
                        {
                            "ph": "s", "pid": c_id, "tid": tid, "ts": ts,
                            "id": flow_id, "name": "retransmission",
                            "cat": "retransmission",
                        }
                    )
                    consequence = next(
                        (
                            later
                            for _, later in timeline[index + 1:]
                            if later.stage != "retransmit"
                        ),
                        None,
                    )
                    if consequence is not None:
                        events.append(
                            {
                                "ph": "f", "bp": "e", "pid": c_id, "tid": tid,
                                "ts": consequence.t * _US,
                                "id": flow_id, "name": "retransmission",
                                "cat": "retransmission",
                            }
                        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _args(record: StageRecord) -> dict[str, object]:
    args: dict[str, object] = {
        "c_id": record.c_id,
        "offset": record.offset,
        "length": record.length,
        "gen": record.gen,
        "level": record.level,
    }
    args.update(record.fields)
    return args


def write_trace(target: str | Path, trace: Mapping[str, object]) -> int:
    """Write a trace document as deterministic JSON; returns the event
    count."""
    Path(target).write_text(
        json.dumps(trace, sort_keys=True) + "\n", encoding="utf-8"
    )
    events = trace.get("traceEvents")
    return len(events) if isinstance(events, list) else 0


def parse_trace(trace: Mapping[str, object]) -> list[dict[str, object]]:
    """The trace's event list, validated to be shaped like exported
    output (raises ValueError otherwise)."""
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("not a trace-event document: no traceEvents list")
    for event in events:
        if not isinstance(event, dict) or "ph" not in event:
            raise ValueError(f"malformed trace event: {event!r}")
    return events


def chunk_timelines(
    trace: Mapping[str, object],
) -> dict[tuple[int, int, int], list[tuple[float, str, int]]]:
    """Reconstruct per-chunk stage sequences from an exported trace.

    Returns ``{(c_id, offset, length): [(t_seconds, stage, gen), ...]}``
    in timeline order — the inverse of :func:`journeys_to_trace` for
    chunk-level records, used by the round-trip property suite.
    """
    out: dict[tuple[int, int, int], list[tuple[float, str, int]]] = {}
    for event in parse_trace(trace):
        if event.get("ph") not in ("X", "i"):
            continue
        args = event.get("args")
        if not isinstance(args, dict) or args.get("level") != "chunk":
            continue
        key = (int(args["c_id"]), int(args["offset"]), int(args["length"]))
        ts = float(event["ts"])  # type: ignore[arg-type]
        out.setdefault(key, []).append(
            (ts / _US, str(event["name"]), int(args.get("gen", 0)))
        )
    for timeline in out.values():
        timeline.sort(key=lambda item: item[0])
    return out
