"""Flat, diffable snapshots of a metric registry.

The exporters in :mod:`repro.obs.export` serialize instruments as
self-describing records; this module flattens the same state into a
single ``{"scope.name.field": value}`` mapping whose keys are stable
and whose values are plain JSON scalars.  Two observed runs with the
same seeds produce byte-identical snapshots, so the perf subsystem
(:mod:`repro.perf`) can diff them key by key and treat *any* drift in a
counter as a regression signal.

Layout of the flattened keys:

- counters   -> ``scope.name`` (the running total)
- gauges     -> ``scope.name`` and ``scope.name.high_water``
- histograms and timers -> ``scope.name.count``, ``scope.name.sum``,
  ``scope.name.min``, ``scope.name.max`` and one
  ``scope.name.bucket[<exponent>]`` entry per occupied bucket
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import Registry

__all__ = ["Scalar", "SnapshotDelta", "metric_snapshot", "diff_snapshots"]

Scalar = float | int | str | None


def metric_snapshot(registry: Registry) -> dict[str, Scalar]:
    """Flatten every instrument in *registry* into one sorted mapping.

    The mapping is deterministic: keys are sorted, values are plain
    scalars, and nothing wall-clock dependent is included.
    """
    flat: dict[str, Scalar] = {}
    for sample in registry.samples():
        base = f"{sample.scope}.{sample.name}"
        data = sample.data
        if sample.kind == "counter":
            flat[base] = _scalar(data["value"])
        elif sample.kind == "gauge":
            flat[base] = _scalar(data["value"])
            flat[f"{base}.high_water"] = _scalar(data["high_water"])
        else:  # histogram / timer share the histogram sample shape
            flat[f"{base}.count"] = _scalar(data["count"])
            flat[f"{base}.sum"] = _scalar(data["sum"])
            flat[f"{base}.min"] = _scalar(data["min"])
            flat[f"{base}.max"] = _scalar(data["max"])
            buckets = data["buckets"]
            if isinstance(buckets, dict):
                for exponent, count in sorted(
                    buckets.items(), key=lambda kv: int(kv[0])
                ):
                    flat[f"{base}.bucket[{exponent}]"] = _scalar(count)
    return dict(sorted(flat.items()))


def _scalar(value: object) -> Scalar:
    if value is None or isinstance(value, (int, float, str)):
        return value
    raise ValueError(f"non-scalar snapshot value {value!r}")


@dataclass(frozen=True, slots=True)
class SnapshotDelta:
    """One key whose value differs between two snapshots.

    ``old`` is None for keys only present in the new snapshot and
    ``new`` is None for keys that disappeared.
    """

    key: str
    old: Scalar
    new: Scalar

    @property
    def kind(self) -> str:
        if self.old is None and self.new is not None:
            return "added"
        if self.new is None and self.old is not None:
            return "removed"
        return "changed"


def diff_snapshots(
    old: dict[str, Scalar], new: dict[str, Scalar]
) -> list[SnapshotDelta]:
    """Every key whose value differs, in sorted key order.

    Equality is exact — these are deterministic counters, so there is
    no tolerance: a one-byte drift in ``host.touch_bytes_total`` is a
    real behavioural change, not noise.
    """
    deltas: list[SnapshotDelta] = []
    for key in sorted(set(old) | set(new)):
        old_value = old.get(key)
        new_value = new.get(key)
        if old_value != new_value:
            deltas.append(SnapshotDelta(key, old_value, new_value))
    return deltas
