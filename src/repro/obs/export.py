"""Exporters: JSON lines for machines, aligned tables for humans.

The JSON-lines format is one self-describing record per line —
``{"kind": "counter"|"gauge"|"histogram"|"timer"|"event"|"span", ...}``
— so a trace file concatenates, greps, and streams trivially.  Keys
are sorted and nothing nondeterministic (timestamps, pids, hostnames)
is emitted, so a seeded run produces a byte-identical trace file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.obs.metrics import Registry, bucket_label
from repro.obs.tracing import Tracer

__all__ = [
    "metric_records",
    "trace_records",
    "write_jsonl",
    "render_table",
    "render_histogram_buckets",
]


def metric_records(registry: Registry) -> list[dict[str, object]]:
    """Every instrument as a JSON-able record, sorted by (scope, name)."""
    return [sample.as_dict() for sample in registry.samples()]


def trace_records(tracer: Tracer) -> list[dict[str, object]]:
    """Every trace event/span as a JSON-able record, in time order."""
    records = [record.as_dict() for record in tracer.records()]
    if tracer.dropped:
        records.append({"kind": "meta", "dropped_records": tracer.dropped})
    return records


def write_jsonl(
    target: str | Path | IO[str],
    registry: Registry | None = None,
    tracer: Tracer | None = None,
) -> int:
    """Write metrics then trace records to *target*; returns line count."""
    records: list[dict[str, object]] = []
    if registry is not None:
        records.extend(metric_records(registry))
    if tracer is not None:
        records.extend(trace_records(tracer))
    lines = [json.dumps(record, sort_keys=True) for record in records]
    text = "".join(line + "\n" for line in lines)
    if isinstance(target, (str, Path)):
        Path(target).write_text(text, encoding="utf-8")
    else:
        target.write(text)
    return len(lines)


def _histogram_cells(data: dict[str, object]) -> str:
    count = data.get("count", 0)
    mean = data.get("mean", 0.0)
    maximum = data.get("max")
    parts = [f"count={count}", f"mean={_num(mean)}"]
    if maximum is not None:
        parts.append(f"max={_num(maximum)}")
    return "  ".join(parts)


def _num(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_table(registry: Registry, tracer: Tracer | None = None) -> str:
    """A per-scope, human-readable summary of a registry (and trace)."""
    lines: list[str] = []
    by_scope: dict[str, list[tuple[str, str, str]]] = {}
    for sample in registry.samples():
        if sample.kind == "counter":
            detail = _num(sample.data["value"])
        elif sample.kind == "gauge":
            detail = (
                f"{_num(sample.data['value'])}  "
                f"(high-water {_num(sample.data['high_water'])})"
            )
        else:  # histogram / timer
            detail = _histogram_cells(sample.data)
        by_scope.setdefault(sample.scope, []).append((sample.kind, sample.name, detail))

    for scope in sorted(by_scope):
        lines.append(f"== {scope} ==")
        rows = by_scope[scope]
        kind_width = max(len(kind) for kind, _, _ in rows)
        name_width = max(len(name) for _, name, _ in rows)
        for kind, name, detail in rows:
            lines.append(f"  {kind.ljust(kind_width)}  {name.ljust(name_width)}  {detail}")

    if tracer is not None and (tracer.events or tracer.spans or tracer.dropped):
        lines.append("== trace ==")
        counts: dict[tuple[str, str], int] = {}
        for event in tracer.events:
            counts[(event.scope, event.name)] = counts.get((event.scope, event.name), 0) + 1
        for span in tracer.spans:
            counts[(span.scope, span.name)] = counts.get((span.scope, span.name), 0) + 1
        for (scope, name), count in sorted(counts.items()):
            lines.append(f"  {scope}.{name}: {count} record(s)")
        if tracer.dropped:
            lines.append(f"  (dropped {tracer.dropped} record(s) past the buffer bound)")
    return "\n".join(lines)


def render_histogram_buckets(buckets: dict[str, int]) -> str:
    """Render sparse exponent-keyed buckets as ``<=2^e:count`` pairs."""
    parts = [
        f"{bucket_label(int(exponent))}:{count}"
        for exponent, count in sorted(buckets.items(), key=lambda kv: int(kv[0]))
    ]
    return " ".join(parts)
