"""Discrete-event network substrate.

Replaces the paper's AURORA testbed hardware: links with rate, delay,
MTU and impairments; multipath striping with skew (the 8x155 Mbps
scenario of Section 1); and chunk-aware fragmenting routers implementing
the three Figure 4 re-enveloping strategies.
"""

from repro.netsim.bottleneck import (
    BottleneckPort,
    SharedBottleneck,
    build_shared_bottleneck,
)
from repro.netsim.events import EventLoop
from repro.netsim.link import Link, LinkStats
from repro.netsim.multipath import MultipathChannel, aurora_stripe
from repro.netsim.router import ChunkRouter, RepackMode, RouterStats
from repro.netsim.rng import corrupt_bytes, default_rng, substream
from repro.netsim.shardloop import ShardedLoop
from repro.netsim.routechange import RouteSwitcher
from repro.netsim.topology import ChunkPath, HopSpec, build_chunk_path
from repro.netsim.trace import ArrivalRecord, ReceiverTrace
from repro.netsim.turner import BottleneckQueue, QueueStats

__all__ = [
    "RouteSwitcher",
    "BottleneckQueue",
    "QueueStats",
    "EventLoop",
    "ShardedLoop",
    "Link",
    "LinkStats",
    "MultipathChannel",
    "aurora_stripe",
    "ChunkRouter",
    "RouterStats",
    "RepackMode",
    "substream",
    "default_rng",
    "corrupt_bytes",
    "HopSpec",
    "ChunkPath",
    "build_chunk_path",
    "ArrivalRecord",
    "ReceiverTrace",
    "BottleneckPort",
    "SharedBottleneck",
    "build_shared_bottleneck",
]
