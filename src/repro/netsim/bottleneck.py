"""Shared-bottleneck topology: N host pairs over one contended link.

The multiplexed-endpoint experiments need the shape the paper's AURORA
scenario implies but the point-to-point :mod:`repro.netsim.topology`
paths cannot express: many conversations whose packets *share* one
bottleneck link (and its loss process), so fairness and lock-up
avoidance are properties of the shared resource, not of any single
connection.

:class:`SharedBottleneck` wires N host pairs through one forward
bottleneck link and one reverse (acknowledgment) link.  Each pair gets
a :class:`BottleneckPort` with a private access link into the forward
bottleneck.  At the far side a chunk-aware demultiplexer — the same
decode-once, route-by-C.ID move :class:`~repro.transport.endpoint.
ChunkEndpoint` makes — splits every bottleneck frame into per-port
packets by each chunk's C.ID, because one envelope may carry chunks for
several pairs (Appendix A).  The reverse link routes ACK packets back
to the owning pair the same way.

With a single attached pair (one sender endpoint hosting hundreds of
conversations) the demux is a pass-through: the default route sends
every C.ID to port 0 and no re-enveloping occurs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.chunk import Chunk
from repro.core.errors import CodecError
from repro.core.packet import Packet
from repro.netsim.events import EventLoop
from repro.netsim.link import Link
from repro.netsim.rng import substream
from repro.netsim.topology import HopSpec
from repro.obs import counter, journey_handle

__all__ = ["BottleneckPort", "SharedBottleneck", "build_shared_bottleneck"]

_OBS_FORWARD = counter("netsim", "bottleneck.frames_forward", "frames through the bottleneck")
_OBS_REVERSE = counter("netsim", "bottleneck.frames_reverse", "frames through the reverse link")
_OBS_SPLIT = counter(
    "netsim", "bottleneck.split_frames", "frames re-enveloped for more than one port"
)
_OBS_MISROUTED = counter(
    "netsim", "bottleneck.misrouted_chunks", "chunks with no route to any port"
)
_OBS_UNDECODABLE = counter(
    "netsim", "bottleneck.undecodable_frames", "frames the demux could not decode"
)
_OBS_JOURNEY = journey_handle()


@dataclass
class BottleneckPort:
    """One host pair's attachment point.

    The pair's *sender* host transmits via :meth:`send` (through the
    pair's private access link into the shared bottleneck) and receives
    demultiplexed reverse traffic on *deliver_reverse*; the *receiver*
    host transmits via :meth:`send_reverse` and receives its share of
    forward traffic on *deliver_forward*.
    """

    index: int
    deliver_forward: Callable[[bytes], None]
    deliver_reverse: Callable[[bytes], None]
    access: Link
    _bottleneck: "SharedBottleneck"

    def send(self, frame: bytes) -> None:
        """Sender-host egress: access link, then the shared bottleneck."""
        self.access.send(frame)

    def send_reverse(self, frame: bytes) -> None:
        """Receiver-host egress onto the shared reverse link."""
        self._bottleneck.reverse_link.send(frame)


@dataclass
class SharedBottleneck:
    """N host pairs contending for one forward and one reverse link."""

    loop: EventLoop
    forward_link: Link = field(init=False)
    reverse_link: Link = field(init=False)
    bottleneck_spec: HopSpec = field(default_factory=lambda: HopSpec(mtu=1500))
    reverse_spec: HopSpec | None = None
    seed: int = 0

    ports: list[BottleneckPort] = field(default_factory=list, init=False)
    #: C.ID -> port index; unbound C.IDs fall back to port 0.
    routes: dict[int, int] = field(default_factory=dict, init=False)
    frames_forward: int = 0
    frames_reverse: int = 0
    split_frames: int = 0
    misrouted_chunks: int = 0
    undecodable_frames: int = 0

    def __post_init__(self) -> None:
        spec = self.bottleneck_spec
        self.forward_link = Link(
            loop=self.loop,
            deliver=self._demux_forward,
            rate_bps=spec.rate_bps,
            delay=spec.delay,
            mtu=spec.mtu,
            loss_rate=spec.loss_rate,
            corrupt_rate=spec.corrupt_rate,
            dup_rate=spec.dup_rate,
            rng=substream(self.seed, "bottleneck", 0),
        )
        rev = self.reverse_spec if self.reverse_spec is not None else spec
        self.reverse_link = Link(
            loop=self.loop,
            deliver=self._demux_reverse,
            rate_bps=rev.rate_bps,
            delay=rev.delay,
            mtu=rev.mtu,
            loss_rate=rev.loss_rate,
            corrupt_rate=rev.corrupt_rate,
            dup_rate=rev.dup_rate,
            rng=substream(self.seed, "bottleneck-reverse", 0),
        )

    # ------------------------------------------------------------------

    def attach_pair(
        self,
        deliver_forward: Callable[[bytes], None],
        deliver_reverse: Callable[[bytes], None],
        access: HopSpec | None = None,
    ) -> BottleneckPort:
        """Wire one (sender host, receiver host) pair in; returns its port."""
        spec = access if access is not None else HopSpec(mtu=self.forward_link.mtu)
        index = len(self.ports)
        access_link = Link(
            loop=self.loop,
            deliver=self.forward_link.send,
            rate_bps=spec.rate_bps,
            delay=spec.delay,
            mtu=spec.mtu,
            loss_rate=spec.loss_rate,
            corrupt_rate=spec.corrupt_rate,
            dup_rate=spec.dup_rate,
            rng=substream(self.seed, "access", index),
        )
        port = BottleneckPort(
            index=index,
            deliver_forward=deliver_forward,
            deliver_reverse=deliver_reverse,
            access=access_link,
            _bottleneck=self,
        )
        self.ports.append(port)
        return port

    def bind(self, connection_id: int, port: BottleneckPort) -> None:
        """Route a conversation's C.ID to *port* in both directions."""
        self.routes[connection_id] = port.index

    def run(self) -> float:
        """Drive the simulation to quiescence."""
        return self.loop.run()

    # ------------------------------------------------------------------

    def _demux_forward(self, frame: bytes) -> None:
        self.frames_forward += 1
        _OBS_FORWARD.inc()
        self._demux(frame, forward=True)

    def _demux_reverse(self, frame: bytes) -> None:
        self.frames_reverse += 1
        _OBS_REVERSE.inc()
        self._demux(frame, forward=False)

    def _demux(self, frame: bytes, forward: bool) -> None:
        """Split one shared-link frame into per-port packets by C.ID."""
        if not self.ports:
            return
        if len(self.ports) == 1 and not self.routes:
            # Single-pair fast path: nothing to split, deliver verbatim.
            port = self.ports[0]
            (port.deliver_forward if forward else port.deliver_reverse)(frame)
            return
        try:
            packet = Packet.decode(frame)
        except CodecError:
            self.undecodable_frames += 1
            _OBS_UNDECODABLE.inc()
            return
        by_port: dict[int, list[Chunk]] = {}
        for chunk in packet.chunks:
            index = self.routes.get(chunk.c.ident, 0)
            if index >= len(self.ports):
                self.misrouted_chunks += 1
                _OBS_MISROUTED.inc()
                continue
            if _OBS_JOURNEY and chunk.is_data:
                _OBS_JOURNEY.chunk(
                    "routed", chunk, t=self.loop.now, port=index
                )
            by_port.setdefault(index, []).append(chunk)
        if len(by_port) > 1:
            self.split_frames += 1
            _OBS_SPLIT.inc()
        for index, chunks in by_port.items():
            port = self.ports[index]
            sink = port.deliver_forward if forward else port.deliver_reverse
            sink(Packet(chunks=chunks).encode())


def build_shared_bottleneck(
    loop: EventLoop,
    pairs: list[tuple[Callable[[bytes], None], Callable[[bytes], None]]],
    bottleneck: HopSpec | None = None,
    reverse: HopSpec | None = None,
    access: HopSpec | None = None,
    seed: int = 0,
) -> SharedBottleneck:
    """Build a shared bottleneck and attach every (forward, reverse) pair.

    Each element of *pairs* is ``(deliver_forward, deliver_reverse)`` —
    typically ``(receiver_endpoint.receive_packet,
    sender_endpoint.receive_packet)``.  Bind conversations to ports with
    :meth:`SharedBottleneck.bind` as they are opened.
    """
    topology = SharedBottleneck(
        loop=loop,
        bottleneck_spec=bottleneck if bottleneck is not None else HopSpec(mtu=1500),
        reverse_spec=reverse,
        seed=seed,
    )
    for deliver_forward, deliver_reverse in pairs:
        topology.attach_pair(deliver_forward, deliver_reverse, access=access)
    return topology
