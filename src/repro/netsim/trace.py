"""Receiver-side measurement: arrival records and disorder metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import gauge

__all__ = ["ArrivalRecord", "ReceiverTrace"]

_OBS_ARRIVALS = gauge("netsim", "trace.arrivals", "frames recorded by the receiver trace")
_OBS_LATE = gauge("netsim", "trace.late_arrivals", "frames behind a higher send index")
_OBS_MAX_DISPLACEMENT = gauge(
    "netsim", "trace.max_displacement", "worst send-vs-arrival positional displacement"
)
_OBS_DISORDER = gauge("netsim", "trace.disorder_fraction", "late arrivals / arrivals")


@dataclass(frozen=True, slots=True)
class ArrivalRecord:
    """One delivered frame with its arrival time and send index."""

    time: float
    index: int
    size: int


@dataclass
class ReceiverTrace:
    """Collects arrivals and summarizes disorder and latency.

    The *index* is the sender-side emission order; disorder is measured
    as the fraction of arrivals whose index is smaller than an index
    already seen (late arrivals), plus the maximum displacement.
    """

    arrivals: list[ArrivalRecord] = field(default_factory=list)

    def record(self, time: float, index: int, size: int) -> None:
        self.arrivals.append(ArrivalRecord(time, index, size))

    @property
    def count(self) -> int:
        return len(self.arrivals)

    def late_arrivals(self) -> int:
        """Frames that arrived after a higher-index frame (disordered)."""
        high = -1
        late = 0
        for record in self.arrivals:
            if record.index < high:
                late += 1
            high = max(high, record.index)
        return late

    def disorder_fraction(self) -> float:
        return self.late_arrivals() / len(self.arrivals) if self.arrivals else 0.0

    def max_displacement(self) -> int:
        """Largest positional displacement between send and arrival order."""
        worst = 0
        for position, record in enumerate(self.arrivals):
            worst = max(worst, abs(record.index - position))
        return worst

    def publish(self) -> dict[str, float]:
        """Publish the disorder metrics as ``netsim`` gauges.

        Sets ``trace.arrivals``, ``trace.late_arrivals``,
        ``trace.max_displacement``, and ``trace.disorder_fraction`` on
        the active registry (a no-op when none is installed) and
        returns the published values.
        """
        values = {
            "arrivals": float(self.count),
            "late_arrivals": float(self.late_arrivals()),
            "max_displacement": float(self.max_displacement()),
            "disorder_fraction": self.disorder_fraction(),
        }
        _OBS_ARRIVALS.set(values["arrivals"])
        _OBS_LATE.set(values["late_arrivals"])
        _OBS_MAX_DISPLACEMENT.set(values["max_displacement"])
        _OBS_DISORDER.set(values["disorder_fraction"])
        return values

    def latency_of(self, send_times: dict[int, float]) -> list[float]:
        """Per-frame latency given the sender's emission timestamps."""
        return [
            record.time - send_times[record.index]
            for record in self.arrivals
            if record.index in send_times
        ]
