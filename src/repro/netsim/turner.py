"""Turner-style TPDU-aware dropping (Section 3).

"Also, if fragments travel along the same route, we have the option of
dropping all of the fragments of a TPDU if any fragment must be
dropped, a technique suggested by Turner [TURN 92]."

:class:`BottleneckQueue` models a congested output queue of bounded
depth.  In ``"random"`` mode it drops whichever frame overflows the
queue; in ``"turner"`` mode, once any frame of a TPDU is dropped, every
later frame carrying chunks of that TPDU is dropped too — the remaining
fragments are useless to the receiver (the TPDU will be retransmitted
whole), so forwarding them only wastes downstream capacity.  The
CLAIM-TURNER bench measures goodput under both policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Literal

from repro.core.errors import CodecError
from repro.core.packet import Packet
from repro.core.types import ChunkType
from repro.netsim.events import EventLoop

__all__ = ["BottleneckQueue", "QueueStats"]

DropPolicy = Literal["random", "turner"]


@dataclass
class QueueStats:
    frames_in: int = 0
    frames_forwarded: int = 0
    frames_dropped_overflow: int = 0
    frames_dropped_turner: int = 0
    bytes_forwarded: int = 0
    bytes_saved_by_turner: int = 0


@dataclass
class BottleneckQueue:
    """A rate-limited FIFO with bounded depth and a drop policy.

    Attributes:
        loop: event loop.
        forward: downstream delivery.
        rate_bps: drain rate.
        depth_frames: queue capacity; arrivals beyond it are dropped.
        policy: ``"random"`` (plain tail drop) or ``"turner"``.
    """

    loop: EventLoop
    forward: Callable[[bytes], None]
    rate_bps: float = 10e6
    depth_frames: int = 8
    policy: DropPolicy = "random"
    stats: QueueStats = field(default_factory=QueueStats)

    _queue: list[bytes] = field(default_factory=list, init=False)
    _draining: bool = field(default=False, init=False)
    _doomed_tpdus: set[tuple[int, int]] = field(default_factory=set, init=False)

    def send(self, frame: bytes) -> None:
        self.stats.frames_in += 1
        if self.policy == "turner" and self._carries_doomed_tpdu(frame):
            self.stats.frames_dropped_turner += 1
            self.stats.bytes_saved_by_turner += len(frame)
            return
        if len(self._queue) >= self.depth_frames:
            self.stats.frames_dropped_overflow += 1
            if self.policy == "turner":
                self._doom(frame)
            return
        self._queue.append(frame)
        if not self._draining:
            self._drain_next()

    # ------------------------------------------------------------------

    def _drain_next(self) -> None:
        if not self._queue:
            self._draining = False
            return
        self._draining = True
        frame = self._queue.pop(0)
        tx_time = len(frame) * 8 / self.rate_bps
        self.stats.frames_forwarded += 1
        self.stats.bytes_forwarded += len(frame)

        def done() -> None:
            self.forward(frame)
            self._drain_next()

        self.loop.schedule(tx_time, done)

    def _tpdu_keys(self, frame: bytes) -> set[tuple[int, int]]:
        try:
            packet = Packet.decode(frame)
        except CodecError:
            return set()
        return {
            (c.c.ident, c.t.ident)
            for c in packet.chunks
            if c.type in (ChunkType.DATA, ChunkType.ERROR_DETECTION)
        }

    def _doom(self, frame: bytes) -> None:
        self._doomed_tpdus.update(self._tpdu_keys(frame))

    def _carries_doomed_tpdu(self, frame: bytes) -> bool:
        keys = self._tpdu_keys(frame)
        return bool(keys & self._doomed_tpdus)

    def forget_tpdu(self, c_id: int, t_id: int) -> None:
        """Clear doom state (e.g. when a retransmission begins)."""
        self._doomed_tpdus.discard((c_id, t_id))

    def reset_dooms(self) -> None:
        self._doomed_tpdus.clear()
