"""Deterministic adversarial network machinery (ROADMAP item 4).

The receiver is strict about what it accepts, but strictness proven
against random loss is not strictness proven against an *attacker*.
This module supplies the attack half of that proof as reusable netsim
machinery, all of it seeded and exactly reproducible:

- :class:`OverlapRewriter` — an on-path adversary that forges DATA
  chunks overlapping genuine ones with *different* bytes.  The attack
  classes mirror the inconsistent-fragment taxonomy of "Overlapping
  data in network protocols: bridging OS and NIDS reassembly gap"
  (PAPERS.md): same-range rewrites, subset and superset overlaps, and
  straddling overlaps that cross chunk boundaries.  TCP reassemblers
  famously *disagree* about which copy wins; the chunk receiver must
  instead detect the inconsistency and refuse to resolve it silently.
- :class:`AlmostSortedReorder` and :class:`InterruptCoalescingReorder`
  — pathological reorder models beyond multipath skew, per "Sorting
  Reordered Packets with Interrupt Coalescing" (PAPERS.md): traffic
  that is *almost* sorted except for bounded local displacement, and
  the batch-inverted delivery a coalescing NIC interrupt handler
  produces.  Both plug into :class:`~repro.netsim.link.Link` and
  :class:`~repro.netsim.router.ChunkRouter` via their ``reorder``
  seams.
- :class:`FrameFlood` — a rate-paced injector that pumps
  attacker-crafted frames into any ``send`` callable.  The frames
  themselves come from a factory supplied by the scenario layer
  (:mod:`repro.app.adversarial`), keeping this module below the
  transport in the layering DAG.

Nothing here is stochastic in the unseeded sense: every generator
draws from :func:`repro.netsim.rng.substream`, so an attack run is a
pure function of its seed — a failing invariant is a reproducible
counterexample, not an anecdote.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol

from repro.core.chunk import Chunk
from repro.core.errors import CodecError
from repro.core.packet import Packet
from repro.core.tuples import FramingTuple
from repro.core.types import ChunkType
from repro.netsim.events import EventLoop
from repro.netsim.rng import default_rng
from repro.obs import counter

if TYPE_CHECKING:
    import random

__all__ = [
    "OVERLAP_KINDS",
    "ReorderPolicy",
    "AlmostSortedReorder",
    "InterruptCoalescingReorder",
    "OverlapRewriter",
    "OverlapStats",
    "FrameFlood",
]

_OBS_FORGED = counter("netsim", "adversary.forged_chunks", "overlapping chunks forged")
_OBS_ATTACKED = counter("netsim", "adversary.frames_attacked", "frames given forged companions")
_OBS_DISPLACED = counter("netsim", "adversary.frames_displaced", "frames delayed out of order")
_OBS_COALESCED = counter("netsim", "adversary.frames_coalesced", "frames batch-released")
_OBS_FLOODED = counter("netsim", "adversary.frames_flooded", "attacker frames injected")


# ----------------------------------------------------------------------
# Reorder models (pluggable Link/Router policies)
# ----------------------------------------------------------------------


class ReorderPolicy(Protocol):
    """Maps a frame's nominal arrival time to its (possibly reordered)
    release time.

    Implementations may be stateful (coalescing windows) but must be
    deterministic; *now* is the simulation clock at scheduling time and
    bounds the result from below (events cannot fire in the past).
    """

    def release_time(self, nominal: float, now: float) -> float:
        """The adjusted delivery time for a frame due at *nominal*."""
        ...


@dataclass
class AlmostSortedReorder:
    """Almost-sorted permutations: most frames in order, a bounded
    fraction locally displaced.

    The reordering papers in PAPERS.md observe that real internet
    reordering is overwhelmingly *local*: sequences arrive almost
    sorted, with a small fraction of elements displaced by a bounded
    distance (which is what makes sorting-based recovery cheap).  Each
    frame is independently late with probability *displacement_rate*,
    by an extra delay uniform in ``(0, max_skew]`` — enough to jump a
    handful of positions at typical serialization rates, never more.
    """

    displacement_rate: float = 0.2
    max_skew: float = 0.002
    rng: random.Random = field(default_factory=default_rng)
    displaced: int = 0

    def release_time(self, nominal: float, now: float) -> float:
        if self.displacement_rate and self.rng.random() < self.displacement_rate:
            self.displaced += 1
            _OBS_DISPLACED.inc()
            nominal += self.rng.random() * self.max_skew
        return max(nominal, now)


@dataclass
class InterruptCoalescingReorder:
    """Batch-inverted delivery under NIC interrupt coalescing.

    A coalescing NIC raises one interrupt per *window*, and a driver
    that walks its descriptor ring from the most recent entry delivers
    the batch newest-first.  Frames whose nominal arrival falls in one
    window are all released at the window boundary, in inverted order
    (later arrivals first), which is the pathological almost-reversed
    pattern of "Sorting Reordered Packets with Interrupt Coalescing".

    Inversion is expressed as a decreasing epsilon offset per frame
    within the window, so the event loop's (time, seq) ordering yields
    LIFO without any buffering here.
    """

    window: float = 0.001
    invert: bool = True
    #: cap on distinguishable frames per window (offset resolution).
    max_batch: int = 4096
    coalesced: int = 0
    _window_end: float = field(default=-1.0, repr=False)
    _batch_index: int = field(default=0, repr=False)

    def release_time(self, nominal: float, now: float) -> float:
        boundary = math.ceil(nominal / self.window) * self.window
        if boundary != self._window_end:
            self._window_end = boundary
            self._batch_index = 0
        self._batch_index += 1
        self.coalesced += 1
        _OBS_COALESCED.inc()
        if not self.invert:
            return max(boundary, now)
        epsilon = self.window * 1e-6
        slot = self.max_batch - min(self._batch_index, self.max_batch)
        return max(boundary + slot * epsilon, now)


# ----------------------------------------------------------------------
# Overlap attacks against virtual reassembly
# ----------------------------------------------------------------------

#: The inconsistent-overlap taxonomy (NIDS-gap paper, PAPERS.md).
OVERLAP_KINDS: tuple[str, ...] = ("same-range", "subset", "superset", "straddle")


@dataclass
class OverlapStats:
    """What the rewriter did to the traffic it saw."""

    frames_seen: int = 0
    frames_attacked: int = 0
    forged_chunks: int = 0
    forged_by_kind: dict[str, int] = field(default_factory=dict)
    undecodable_frames: int = 0


@dataclass
class OverlapRewriter:
    """On-path adversary forging inconsistent overlapping DATA chunks.

    Sits on a delivery path (``link.deliver = rewriter.send``) and, per
    DATA chunk observed, forges a companion chunk whose C-level range
    overlaps the genuine one but whose payload bytes *differ* (each
    byte XOR ``taint``).  The forged chunk is wire-valid — headers
    decode, LEN/SIZE agree with the payload — so nothing upstream of
    virtual reassembly can reject it; the receiver must catch the
    *semantic* inconsistency.

    Attributes:
        deliver: the downstream sink for both genuine and forged frames.
        kinds: overlap classes drawn from (subset of ``OVERLAP_KINDS``).
        attack_rate: per-DATA-chunk forgery probability.
        forge_first: deliver the forged frame *before* the genuine one
            (the poison-first variant: placement sees attacker bytes
            first, and honest retransmissions become the "conflict").
        taint: XOR mask applied to forged payload bytes (any nonzero
            value guarantees inconsistency).
    """

    deliver: Callable[[bytes], None]
    kinds: tuple[str, ...] = OVERLAP_KINDS
    attack_rate: float = 1.0
    forge_first: bool = False
    taint: int = 0xA5
    rng: random.Random = field(default_factory=default_rng)
    stats: OverlapStats = field(default_factory=OverlapStats)

    def __post_init__(self) -> None:
        unknown = set(self.kinds) - set(OVERLAP_KINDS)
        if unknown:
            raise ValueError(f"unknown overlap kinds: {sorted(unknown)}")
        if not 0 < self.taint < 256:
            raise ValueError(f"taint must be a nonzero byte, got {self.taint}")

    def send(self, frame: bytes) -> None:
        """Forward one frame, possibly preceded/followed by forgeries."""
        self.stats.frames_seen += 1
        forged = self._forge_frames(frame)
        if forged:
            self.stats.frames_attacked += 1
            _OBS_ATTACKED.inc()
        if self.forge_first:
            for fake in forged:
                self.deliver(fake)
            self.deliver(frame)
        else:
            self.deliver(frame)
            for fake in forged:
                self.deliver(fake)

    # ------------------------------------------------------------------

    def _forge_frames(self, frame: bytes) -> list[bytes]:
        try:
            packet = Packet.decode(frame)
        except CodecError:
            self.stats.undecodable_frames += 1
            return []
        forged: list[Chunk] = []
        for chunk in packet.chunks:
            if not chunk.is_data:
                continue
            if self.attack_rate < 1.0 and self.rng.random() >= self.attack_rate:
                continue
            kind = self.kinds[self.rng.randrange(len(self.kinds))]
            forged.append(self.forge(chunk, kind))
        if not forged:
            return []
        return [Packet(chunks=[fake]).encode() for fake in forged]

    def forge(self, chunk: Chunk, kind: str) -> Chunk:
        """One forged chunk overlapping *chunk* per the given *kind*.

        The forged range is expressed at all three framing levels with
        self-consistent deltas (C.SN − T.SN and C.SN − X.SN preserved),
        so per-chunk consistency checks cannot reject it a priori —
        only the byte-level overlap comparison can.
        """
        self.stats.forged_chunks += 1
        self.stats.forged_by_kind[kind] = self.stats.forged_by_kind.get(kind, 0) + 1
        _OBS_FORGED.inc()
        length = chunk.length
        if kind == "subset" and length > 1:
            offset = self.rng.randrange(length - 1)
            units = 1 + self.rng.randrange(length - offset - 1) if length - offset > 1 else 1
        elif kind == "superset":
            offset = -1 if chunk.c.sn > 0 and chunk.t.sn > 0 and chunk.x.sn > 0 else 0
            units = length - offset
        elif kind == "straddle":
            # Overlap the tail and extend past the end of the chunk.
            offset = max(length - 1, 0)
            units = 2
        else:  # same-range (and subset of a single-unit chunk)
            offset = 0
            units = length
        payload = self._taint_units(chunk, offset, units)
        return Chunk(
            type=ChunkType.DATA,
            size=chunk.size,
            length=units,
            c=self._shift(chunk.c, offset, close=False),
            t=self._shift(chunk.t, offset, close=False),
            x=self._shift(chunk.x, offset, close=False),
            payload=payload,
        )

    def _shift(self, label: FramingTuple, offset: int, close: bool) -> FramingTuple:
        return FramingTuple(label.ident, label.sn + offset, close)

    def _taint_units(self, chunk: Chunk, offset: int, units: int) -> bytes:
        """Forged payload for *units* atomic units starting at *offset*
        (relative to the chunk); units outside the chunk extend its last
        byte pattern, units inside are the real bytes XOR ``taint``."""
        unit_bytes = chunk.unit_bytes
        out = bytearray(units * unit_bytes)
        for index in range(units):
            source = min(max(offset + index, 0), chunk.length - 1)
            start = source * unit_bytes
            piece = chunk.payload[start : start + unit_bytes]
            out[index * unit_bytes : (index + 1) * unit_bytes] = bytes(
                b ^ self.taint for b in piece
            )
        return bytes(out)


# ----------------------------------------------------------------------
# Floods
# ----------------------------------------------------------------------


@dataclass
class FrameFlood:
    """Rate-paced injection of attacker frames into a send path.

    The *frames* factory maps an injection index to wire bytes (or
    ``None`` to stop early); what those bytes mean — a signaling storm,
    C.ID churn, slow-loris keep-alives — is the scenario layer's
    business.  This class only owns the pacing, which is what makes a
    flood a *flood*: a deterministic arrival process the target cannot
    influence.
    """

    loop: EventLoop
    send: Callable[[bytes], None]
    frames: Callable[[int], bytes | None]
    interval: float = 1e-4
    count: int = 1000
    start: float = 0.0
    injected: int = 0
    stopped: bool = False

    def launch(self) -> None:
        """Schedule the whole flood onto the event loop."""
        for index in range(self.count):
            when = max(self.start + index * self.interval, self.loop.now)
            self.loop.at(when, self._make_shot(index))

    def _make_shot(self, index: int) -> Callable[[], None]:
        def shoot() -> None:
            if self.stopped:
                return
            frame = self.frames(index)
            if frame is None:
                self.stopped = True
                return
            self.injected += 1
            _OBS_FLOODED.inc()
            self.send(frame)

        return shoot
