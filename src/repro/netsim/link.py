"""Network links.

A :class:`Link` moves opaque byte frames from its input to a delivery
callback with serialization delay (frame length / rate), propagation
delay, and optional impairments: loss, single-bit corruption, and
duplication.  Frames never reorder *within* one link (it is FIFO);
disorder in the simulator arises from loss/retransmission, from
multipath striping (:mod:`repro.netsim.multipath`), which is exactly the
paper's taxonomy of disordering causes (Section 1), and — when a
``reorder`` policy from :mod:`repro.netsim.adversary` is plugged in —
from pathological delivery models (almost-sorted displacement,
interrupt-coalescing batch inversion) applied to arrival times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.netsim.events import EventLoop
from repro.netsim.rng import corrupt_bytes, default_rng
from repro.obs import counter, gauge, journey_handle

if TYPE_CHECKING:
    import random

    from repro.netsim.adversary import ReorderPolicy

__all__ = ["Link", "LinkStats"]

# Aggregated across every link; per-link numbers stay in LinkStats.
_OBS_FRAMES_IN = counter("netsim", "link.frames_in", "frames offered to links")
_OBS_FRAMES_DELIVERED = counter("netsim", "link.frames_delivered", "frames delivered")
_OBS_FRAMES_LOST = counter("netsim", "link.frames_lost", "frames dropped by loss")
_OBS_FRAMES_CORRUPTED = counter("netsim", "link.frames_corrupted", "frames bit-corrupted")
_OBS_FRAMES_DUPLICATED = counter("netsim", "link.frames_duplicated", "frames duplicated")
_OBS_FRAMES_OVERSIZE = counter("netsim", "link.frames_dropped_oversize", "frames over MTU")
_OBS_BYTES_DELIVERED = counter("netsim", "link.bytes_delivered", "bytes delivered")
_OBS_INFLIGHT = gauge("netsim", "link.inflight_frames", "frames serializing/propagating")
# The link treats frames as opaque bytes; journey records decode the
# chunk labels only while a tracker is installed (null-sink discipline).
_OBS_JOURNEY = journey_handle()

Deliver = Callable[[bytes], None]


@dataclass
class LinkStats:
    """Per-link counters."""

    frames_in: int = 0
    frames_delivered: int = 0
    frames_lost: int = 0
    frames_corrupted: int = 0
    frames_duplicated: int = 0
    frames_dropped_oversize: int = 0
    bytes_in: int = 0
    bytes_delivered: int = 0


@dataclass
class Link:
    """A point-to-point FIFO link.

    Attributes:
        loop: the event loop driving the simulation.
        deliver: downstream callback receiving each frame's bytes.
        rate_bps: transmission rate in bits/second.
        delay: propagation delay in seconds.
        mtu: maximum frame size in bytes; larger frames are dropped
            (option 1 of the fragmentation taxonomy, Section 3 — routers
            exist to avoid ever hitting this).
        loss_rate / corrupt_rate / dup_rate: independent per-frame
            impairment probabilities.
        rng: the link's private random stream.
        reorder: optional delivery-time policy (see
            :mod:`repro.netsim.adversary`); maps each frame's nominal
            arrival time to a possibly displaced release time, breaking
            the FIFO guarantee deterministically.
    """

    loop: EventLoop
    deliver: Deliver
    rate_bps: float = 155e6
    delay: float = 0.001
    mtu: int = 1500
    loss_rate: float = 0.0
    corrupt_rate: float = 0.0
    dup_rate: float = 0.0
    rng: random.Random = field(default_factory=default_rng)
    reorder: ReorderPolicy | None = None
    stats: LinkStats = field(default_factory=LinkStats)

    _busy_until: float = field(default=0.0, init=False)

    def send(self, frame: bytes) -> None:
        """Queue one frame for transmission at the current sim time."""
        self.stats.frames_in += 1
        self.stats.bytes_in += len(frame)
        _OBS_FRAMES_IN.inc()
        if len(frame) > self.mtu:
            self.stats.frames_dropped_oversize += 1
            _OBS_FRAMES_OVERSIZE.inc()
            if _OBS_JOURNEY:
                _OBS_JOURNEY.frame(
                    "dropped", frame, t=self.loop.now, reason="oversize"
                )
            return
        if self.loss_rate and self.rng.random() < self.loss_rate:
            self.stats.frames_lost += 1
            _OBS_FRAMES_LOST.inc()
            if _OBS_JOURNEY:
                _OBS_JOURNEY.frame("dropped", frame, t=self.loop.now, reason="loss")
            return
        if self.corrupt_rate and self.rng.random() < self.corrupt_rate:
            frame = corrupt_bytes(frame, self.rng)
            self.stats.frames_corrupted += 1
            _OBS_FRAMES_CORRUPTED.inc()

        if _OBS_JOURNEY:
            _OBS_JOURNEY.frame("link_tx", frame, t=self.loop.now)
        start = max(self.loop.now, self._busy_until)
        tx_time = len(frame) * 8 / self.rate_bps
        self._busy_until = start + tx_time
        arrival = self._busy_until + self.delay
        if self.reorder is not None:
            arrival = max(self.reorder.release_time(arrival, self.loop.now), self.loop.now)

        copies = 1
        if self.dup_rate and self.rng.random() < self.dup_rate:
            copies = 2
            self.stats.frames_duplicated += 1
            _OBS_FRAMES_DUPLICATED.inc()
        for _ in range(copies):
            _OBS_INFLIGHT.inc()
            self.loop.at(arrival, lambda f=frame: self._arrive(f))

    def _arrive(self, frame: bytes) -> None:
        self.stats.frames_delivered += 1
        self.stats.bytes_delivered += len(frame)
        _OBS_INFLIGHT.dec()
        _OBS_FRAMES_DELIVERED.inc()
        _OBS_BYTES_DELIVERED.inc(len(frame))
        if _OBS_JOURNEY:
            _OBS_JOURNEY.frame("link_rx", frame, t=self.loop.now)
        self.deliver(frame)
