"""Route changes as a disorder source (Section 1).

"Route changes that occur during communication also can cause packet
disordering, because the first packet sent along the new route may
arrive before the last packet sent along the old route."

:class:`RouteSwitcher` forwards frames over one of two links and flips
to the alternate at scheduled times.  When the new route is faster
(shorter delay), frames sent just after the switch overtake frames
still in flight on the old route — the exact overtaking the paper
describes, without any loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.link import Link

__all__ = ["RouteSwitcher"]


@dataclass
class RouteSwitcher:
    """Two-route forwarder with scheduled route flips."""

    primary: Link
    alternate: Link
    _active: int = field(default=0, init=False)
    switches: int = field(default=0, init=False)

    def send(self, frame: bytes) -> None:
        (self.primary if self._active == 0 else self.alternate).send(frame)

    def switch(self) -> None:
        """Flip to the other route immediately."""
        self._active ^= 1
        self.switches += 1

    def schedule_switch(self, at: float) -> None:
        """Flip routes at absolute simulated time *at*."""
        self.primary.loop.at(at, self.switch)

    @property
    def active_route(self) -> str:
        return "primary" if self._active == 0 else "alternate"
