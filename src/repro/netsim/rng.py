"""Deterministic randomness for simulations.

All stochastic behaviour (loss, corruption, duplication, jitter) draws
from per-component :class:`random.Random` streams derived from one run
seed, so every experiment is exactly reproducible and components do not
perturb each other's streams when reconfigured.
"""

from __future__ import annotations

import random

__all__ = ["substream", "default_rng", "corrupt_bytes"]


def default_rng() -> random.Random:
    """A deterministic stream for components created without one.

    Always seed 0: a component that forgets to wire in a
    :func:`substream` still behaves identically run to run, it just
    shares its draws with every other forgetful component.  (An
    *unseeded* ``random.Random()`` default was exactly the
    reproducibility bug the determinism lint pass exists to catch.)
    """
    return random.Random(0)


def substream(seed: int, *labels: object) -> random.Random:
    """A named child stream of the run *seed*.

    ``substream(42, "link", 3)`` always yields the same stream, no
    matter what other components exist.
    """
    return random.Random(f"{seed}/{'/'.join(map(str, labels))}")


def corrupt_bytes(data: bytes, rng: random.Random, flips: int = 1) -> bytes:
    """Return *data* with *flips* random single-bit errors applied."""
    if not data:
        return data
    out = bytearray(data)
    for _ in range(flips):
        index = rng.randrange(len(out))
        out[index] ^= 1 << rng.randrange(8)
    return bytes(out)
