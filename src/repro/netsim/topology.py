"""Topology assembly: sender -> links/routers -> receiver.

Builds the internetworking paths used by the Figure 4 and Table 1
experiments: a sequence of networks with per-hop MTUs, joined by
chunk-aware routers that re-envelope chunks for the next hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.netsim.events import EventLoop
from repro.netsim.link import Link
from repro.netsim.router import ChunkRouter, RepackMode
from repro.netsim.rng import substream

__all__ = ["HopSpec", "ChunkPath", "build_chunk_path"]


@dataclass(frozen=True, slots=True)
class HopSpec:
    """One network hop on a path."""

    mtu: int
    rate_bps: float = 155e6
    delay: float = 0.001
    loss_rate: float = 0.0
    corrupt_rate: float = 0.0
    dup_rate: float = 0.0


@dataclass
class ChunkPath:
    """A sender-to-receiver path of links joined by chunk routers."""

    loop: EventLoop
    entry: Callable[[bytes], None]
    links: list[Link]
    routers: list[ChunkRouter]

    def send(self, frame: bytes) -> None:
        self.entry(frame)

    def run(self) -> float:
        """Drive the simulation to quiescence, draining router batches."""
        time = self.loop.run()
        for router in self.routers:
            router.flush_now()
        return self.loop.run()

    @property
    def first_mtu(self) -> int:
        return self.links[0].mtu


def build_chunk_path(
    loop: EventLoop,
    hops: list[HopSpec],
    deliver: Callable[[bytes], None],
    mode: RepackMode = "repack",
    batch_window: float = 0.0,
    seed: int = 0,
) -> ChunkPath:
    """Chain ``link -> router -> link -> ... -> deliver`` per *hops*.

    Routers sit between consecutive hops and re-envelope chunks for the
    next hop's MTU using the given Figure 4 *mode*.
    """
    if not hops:
        raise ValueError("a path needs at least one hop")
    links: list[Link] = []
    routers: list[ChunkRouter] = []

    downstream: Callable[[bytes], None] = deliver
    # Build from the last hop backwards so each stage knows its successor.
    for position in range(len(hops) - 1, -1, -1):
        hop = hops[position]
        link = Link(
            loop=loop,
            deliver=downstream,
            rate_bps=hop.rate_bps,
            delay=hop.delay,
            mtu=hop.mtu,
            loss_rate=hop.loss_rate,
            corrupt_rate=hop.corrupt_rate,
            dup_rate=hop.dup_rate,
            rng=substream(seed, "hop", position),
        )
        links.insert(0, link)
        if position > 0:
            router = ChunkRouter(
                loop=loop,
                forward=link.send,
                out_mtu=hop.mtu,
                mode=mode,
                batch_window=batch_window,
            )
            routers.insert(0, router)
            downstream = router.receive
        else:
            downstream = link.send

    return ChunkPath(loop=loop, entry=downstream, links=links, routers=routers)
