"""A minimal discrete-event scheduler.

Everything in :mod:`repro.netsim` — link serialization, propagation,
router forwarding, multipath skew — is expressed as callbacks scheduled
on one :class:`EventLoop`.  Simulated time is a float in seconds.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.obs import counter

__all__ = ["EventLoop"]

_OBS_EVENTS = counter("netsim", "loop.events_processed", "event-loop callbacks run")
_OBS_SIM_TIME = counter(
    "netsim", "loop.sim_time_total", "simulated seconds advanced across run() calls"
)


class EventLoop:
    """Priority-queue event loop with stable FIFO ordering at equal times."""

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.now = 0.0
        self._processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run *callback* at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self.at(self.now + delay, callback)

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Run *callback* at absolute simulated *time*."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def run(self, until: float | None = None) -> float:
        """Process events (optionally only up to time *until*).

        Returns the simulated time after the last processed event.
        """
        started = self.now
        try:
            while self._queue:
                time, _seq, callback = self._queue[0]
                if until is not None and time > until:
                    self.now = until
                    return self.now
                heapq.heappop(self._queue)
                self.now = time
                self._processed += 1
                _OBS_EVENTS.inc()
                callback()
            return self.now
        finally:
            if self.now > started:
                _OBS_SIM_TIME.inc(self.now - started)

    def pending(self) -> int:
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._processed
