"""A minimal discrete-event scheduler.

Everything in :mod:`repro.netsim` — link serialization, propagation,
router forwarding, multipath skew — is expressed as callbacks scheduled
on one :class:`EventLoop`.  Simulated time is a float in seconds.

The loop exposes a narrow observer seam (:class:`ScheduleObserver`,
:func:`set_schedule_observer`) used by the opt-in runtime sanitizer
:mod:`repro.analysis.simsan`: each schedule and each dispatch is
reported with the event's ``(time, seq)`` identity so the sanitizer can
fingerprint payload buffers and audit the schedule stream.  The seam is
a plain module-level hook — this module never imports the analysis
layer (the layering pass enforces that direction), and with no observer
installed the cost is one ``is None`` test per event.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Protocol

from repro.obs import counter

__all__ = [
    "EventLoop",
    "ScheduleObserver",
    "set_schedule_observer",
    "get_schedule_observer",
]

_OBS_EVENTS = counter("netsim", "loop.events_processed", "event-loop callbacks run")
_OBS_SIM_TIME = counter(
    "netsim", "loop.sim_time_total", "simulated seconds advanced across run() calls"
)


class ScheduleObserver(Protocol):
    """Observer seam for :mod:`repro.analysis.simsan`."""

    def on_schedule(
        self, loop: "EventLoop", time: float, seq: int, callback: Callable[[], None]
    ) -> None:
        """Called when *callback* is enqueued for *time*."""

    def on_dispatch(
        self, loop: "EventLoop", time: float, seq: int, callback: Callable[[], None]
    ) -> None:
        """Called immediately before *callback* runs."""


_observer: ScheduleObserver | None = None


def set_schedule_observer(observer: ScheduleObserver | None) -> None:
    """Install (or, with ``None``, remove) the global schedule observer."""
    global _observer
    _observer = observer


def get_schedule_observer() -> ScheduleObserver | None:
    return _observer


class EventLoop:
    """Priority-queue event loop with stable FIFO ordering at equal times."""

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.now = 0.0
        self._processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run *callback* at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self.at(self.now + delay, callback)

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Run *callback* at absolute simulated *time*."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        seq = next(self._counter)
        if _observer is not None:
            _observer.on_schedule(self, time, seq, callback)
        heapq.heappush(self._queue, (time, seq, callback))

    def run(self, until: float | None = None) -> float:
        """Process events (optionally only up to time *until*).

        Returns the simulated time after the last processed event.
        """
        started = self.now
        try:
            while self._queue:
                time, seq, callback = self._queue[0]
                if until is not None and time > until:
                    self.now = until
                    return self.now
                heapq.heappop(self._queue)
                self.now = time
                self._processed += 1
                _OBS_EVENTS.inc()
                if _observer is not None:
                    _observer.on_dispatch(self, time, seq, callback)
                callback()
            return self.now
        finally:
            if self.now > started:
                _OBS_SIM_TIME.inc(self.now - started)

    def next_event_time(self) -> float | None:
        """Time of the earliest pending event, or ``None`` when idle."""
        if not self._queue:
            return None
        return self._queue[0][0]

    def step(self) -> bool:
        """Dispatch exactly one event; returns False when the queue is empty.

        Used by :class:`repro.netsim.shardloop.ShardedLoop` to interleave
        several loops in deterministic lockstep.  Sim-time accounting is the
        composer's job (it knows the global clock), so ``step`` advances
        ``now`` without touching the sim-time counter.
        """
        if not self._queue:
            return False
        time, seq, callback = heapq.heappop(self._queue)
        self.now = time
        self._processed += 1
        _OBS_EVENTS.inc()
        if _observer is not None:
            _observer.on_dispatch(self, time, seq, callback)
        callback()
        return True

    def advance_to(self, time: float) -> None:
        """Move the idle clock forward to *time* without dispatching.

        Refuses to rewind and refuses to skip past a pending event — the
        lockstep composer must dispatch that event (via :meth:`step`) first.
        """
        if time < self.now:
            raise ValueError(f"cannot advance to {time} < now {self.now}")
        head = self.next_event_time()
        if head is not None and time > head:
            raise ValueError(
                f"cannot advance to {time} past pending event at {head}"
            )
        self.now = time

    def pending(self) -> int:
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._processed
