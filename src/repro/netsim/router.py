"""Chunk-aware routers: fragmentation inside the network (Section 3.1).

"Chunk fragmentation is easiest to understand if we think of packets as
envelopes that carry chunks.  Whenever we must change from one packet
size to another packet size, it is as if chunks are emptied from one
size of envelope and placed in another size of envelope."

A :class:`ChunkRouter` joins two links of (possibly) different MTUs.
Toward a smaller MTU it splits chunks (Appendix C).  Toward a larger
MTU it applies one of the three Figure 4 strategies:

- ``"one-per-packet"`` — method 1: one small chunk per large packet;
- ``"repack"`` — method 2: combine multiple chunks per large packet;
- ``"reassemble"`` — method 3: chunk reassembly (Appendix D) first.

All three are transparent to the receiver: it sees well-formed chunks
regardless of how many routers re-enveloped them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Literal

from repro.core.chunk import Chunk
from repro.core.errors import CodecError
from repro.core.packet import Packet, pack_chunks
from repro.core.reassemble import coalesce
from repro.core.types import PACKET_HEADER_BYTES
from repro.netsim.events import EventLoop
from repro.obs import counter, gauge, journey_handle

if TYPE_CHECKING:
    from repro.netsim.adversary import ReorderPolicy

__all__ = ["ChunkRouter", "RouterStats", "RepackMode"]

_OBS_FRAMES_IN = counter("netsim", "router.frames_in", "frames arriving at routers")
_OBS_FRAMES_OUT = counter("netsim", "router.frames_out", "frames forwarded by routers")
_OBS_CHUNKS_IN = counter("netsim", "router.chunks_in", "chunks unpacked at routers")
_OBS_CHUNKS_OUT = counter("netsim", "router.chunks_out", "chunks re-enveloped out")
_OBS_CHUNKS_SPLIT = counter("netsim", "router.chunks_split", "Appendix C splits performed")
_OBS_CHUNKS_MERGED = counter("netsim", "router.chunks_merged", "Appendix D merges performed")
_OBS_DECODE_FAILURES = counter("netsim", "router.decode_failures", "undecodable frames")
_OBS_PENDING = gauge("netsim", "router.pending_chunks", "chunks batched awaiting flush")
_OBS_JOURNEY = journey_handle()

RepackMode = Literal["repack", "one-per-packet", "reassemble"]


@dataclass
class RouterStats:
    frames_in: int = 0
    frames_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    chunks_in: int = 0
    chunks_out: int = 0
    chunks_split: int = 0
    chunks_merged: int = 0
    decode_failures: int = 0


@dataclass
class ChunkRouter:
    """Store-and-forward chunk re-enveloping router.

    Attributes:
        loop: simulation event loop.
        forward: the downstream ``send`` callable (usually a Link).
        out_mtu: MTU of the outgoing direction.
        mode: Figure 4 strategy used when combining is possible.
        processing_delay: per-frame forwarding latency in seconds.
        batch_window: when > 0, chunks are held up to this many seconds
            so chunks from several arriving packets can share outgoing
            envelopes (methods 2 and 3 pay off across packets); 0 means
            strictly per-frame operation.
        reorder: optional delivery-time policy applied to outgoing
            frames (see :mod:`repro.netsim.adversary`), modelling a
            router whose egress scheduling disorders traffic.
    """

    loop: EventLoop
    forward: Callable[[bytes], None]
    out_mtu: int
    mode: RepackMode = "repack"
    processing_delay: float = 5e-6
    batch_window: float = 0.0
    reorder: ReorderPolicy | None = None
    stats: RouterStats = field(default_factory=RouterStats)

    _pending: list[Chunk] = field(default_factory=list, init=False)
    _flush_scheduled: bool = field(default=False, init=False)

    def receive(self, frame: bytes) -> None:
        """Handle one arriving frame (wire bytes of a chunk packet)."""
        self.stats.frames_in += 1
        self.stats.bytes_in += len(frame)
        _OBS_FRAMES_IN.inc()
        try:
            packet = Packet.decode(frame)
        except CodecError:
            self.stats.decode_failures += 1
            _OBS_DECODE_FAILURES.inc()
            return
        self.stats.chunks_in += len(packet.chunks)
        _OBS_CHUNKS_IN.inc(len(packet.chunks))
        if _OBS_JOURNEY:
            for chunk in packet.chunks:
                if chunk.is_data:
                    _OBS_JOURNEY.chunk("routed", chunk, t=self.loop.now)
        if self.batch_window > 0:
            self._pending.extend(packet.chunks)
            _OBS_PENDING.set(len(self._pending))
            if self._budget_filled() or not self._flush_scheduled:
                if self._budget_filled():
                    self._flush()
                else:
                    self._flush_scheduled = True
                    self.loop.schedule(self.batch_window, self._timed_flush)
        else:
            self._emit(packet.chunks)

    def _budget_filled(self) -> bool:
        wire = sum(ch.wire_bytes for ch in self._pending)
        return wire >= self.out_mtu - PACKET_HEADER_BYTES

    def _timed_flush(self) -> None:
        self._flush_scheduled = False
        if self._pending:
            self._flush()

    def _flush(self) -> None:
        chunks, self._pending = self._pending, []
        _OBS_PENDING.set(0)
        self._emit(chunks)

    def _emit(self, chunks: list[Chunk]) -> None:
        if not chunks:
            return
        if self.mode == "reassemble":
            before = len(chunks)
            chunks = coalesce(chunks)
            self.stats.chunks_merged += before - len(chunks)
            _OBS_CHUNKS_MERGED.inc(before - len(chunks))
        if self.mode == "one-per-packet":
            packets = []
            for chunk in chunks:
                packets.extend(pack_chunks([chunk], self.out_mtu))
        else:
            packets = pack_chunks(chunks, self.out_mtu)
        out_chunks = sum(len(p.chunks) for p in packets)
        self.stats.chunks_split += max(0, out_chunks - len(chunks))
        self.stats.chunks_out += out_chunks
        _OBS_CHUNKS_SPLIT.inc(max(0, out_chunks - len(chunks)))
        _OBS_CHUNKS_OUT.inc(out_chunks)
        for index, packet in enumerate(packets):
            data = packet.encode()
            self.stats.frames_out += 1
            self.stats.bytes_out += len(data)
            _OBS_FRAMES_OUT.inc()
            delay = self.processing_delay * (index + 1)
            if self.reorder is not None:
                nominal = self.loop.now + delay
                out = max(self.reorder.release_time(nominal, self.loop.now), self.loop.now)
                self.loop.at(out, lambda d=data: self.forward(d))
            else:
                self.loop.schedule(delay, lambda d=data: self.forward(d))

    def flush_now(self) -> None:
        """Force out any batched chunks (end-of-run drain)."""
        if self._pending:
            self._flush()
