"""Multipath striping — the paper's canonical source of packet disorder.

"For example, obtaining gigabit rates on a SONET OC-3 ATM network
requires using eight 155 Mbps ATM connections in parallel.  Skew among
the routes can cause packets to leave the network in a different order
than that in which they entered" (Section 1).

:class:`MultipathChannel` stripes frames round-robin over N member
links whose propagation delays differ ("skew"), so frames exit out of
order even with zero loss.  :func:`aurora_stripe` builds the 8x155 Mbps
configuration the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.netsim.events import EventLoop
from repro.netsim.link import Link
from repro.netsim.rng import substream

__all__ = ["MultipathChannel", "aurora_stripe"]


@dataclass
class MultipathChannel:
    """Round-robin striping over parallel links."""

    links: list[Link]
    _next: int = field(default=0, init=False)

    def send(self, frame: bytes) -> None:
        self.links[self._next].send(frame)
        self._next = (self._next + 1) % len(self.links)

    @property
    def frames_in(self) -> int:
        return sum(link.stats.frames_in for link in self.links)

    @property
    def frames_delivered(self) -> int:
        return sum(link.stats.frames_delivered for link in self.links)


def aurora_stripe(
    loop: EventLoop,
    deliver: Callable[[bytes], None],
    paths: int = 8,
    rate_bps: float = 155e6,
    base_delay: float = 0.001,
    skew: float = 0.0002,
    mtu: int = 9180,
    loss_rate: float = 0.0,
    seed: int = 0,
) -> MultipathChannel:
    """The 8x155 Mbps striped configuration of Section 1.

    Path *k* has propagation delay ``base_delay + k * skew``; with
    *skew* > one frame's serialization time, round-robin striping
    guarantees reordering at the exit.
    """
    links = [
        Link(
            loop=loop,
            deliver=deliver,
            rate_bps=rate_bps,
            delay=base_delay + k * skew,
            mtu=mtu,
            loss_rate=loss_rate,
            rng=substream(seed, "path", k),
        )
        for k in range(paths)
    ]
    return MultipathChannel(links)
