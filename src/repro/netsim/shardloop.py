"""Deterministic lockstep composition of several event loops.

A sharded endpoint gives every worker shard its own
:class:`~repro.netsim.events.EventLoop` so shard state never races, but
the simulation still needs one global clock.  :class:`ShardedLoop`
composes N member loops and advances them in deterministic lockstep:
each iteration it picks the member with the earliest pending event —
ties broken by member index — moves *every* member's idle clock to that
time, then dispatches exactly one event on the chosen member.  Replaying
the same seed therefore replays the same global event order regardless
of how work is distributed across shards.

Member 0 is the primary (network) loop: :meth:`at` and :meth:`schedule`
delegate to it, so a ``ShardedLoop`` can stand in for a plain
``EventLoop`` anywhere a driver only schedules and runs.  Sim-time is
accounted once, by the composer, against the same
``netsim/loop.sim_time_total`` counter the plain loop uses — member
:meth:`~repro.netsim.events.EventLoop.step` calls deliberately skip it.
"""

from __future__ import annotations

from typing import Callable

from repro.netsim.events import EventLoop
from repro.obs import counter

__all__ = ["ShardedLoop"]

_OBS_SIM_TIME = counter(
    "netsim", "loop.sim_time_total", "simulated seconds advanced across run() calls"
)


class ShardedLoop:
    """N event loops advancing under one clock, one event at a time."""

    def __init__(self, members: int = 1) -> None:
        if members < 1:
            raise ValueError(f"need at least one member loop (members={members})")
        self._members: list[EventLoop] = [EventLoop() for _ in range(members)]

    # -- membership ----------------------------------------------------
    @property
    def members(self) -> tuple[EventLoop, ...]:
        return tuple(self._members)

    def member(self, index: int) -> EventLoop:
        return self._members[index]

    def add_member(self) -> EventLoop:
        """Create, register, and return a new member loop at the global now."""
        loop = EventLoop()
        loop.now = self.now
        self._members.append(loop)
        return loop

    # -- EventLoop-compatible surface ----------------------------------
    @property
    def now(self) -> float:
        return self._members[0].now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run *callback* at ``now + delay`` on the primary loop."""
        self._members[0].schedule(delay, callback)

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Run *callback* at absolute *time* on the primary loop."""
        self._members[0].at(time, callback)

    def pending(self) -> int:
        return sum(member.pending() for member in self._members)

    @property
    def events_processed(self) -> int:
        return sum(member.events_processed for member in self._members)

    # -- lockstep run --------------------------------------------------
    def _earliest(self) -> tuple[float, int] | None:
        """(time, member index) of the globally earliest pending event."""
        best: tuple[float, int] | None = None
        for index, member in enumerate(self._members):
            head = member.next_event_time()
            if head is None:
                continue
            if best is None or (head, index) < best:
                best = (head, index)
        return best

    def run(self, until: float | None = None) -> float:
        """Process events across all members (optionally up to *until*).

        Returns the global simulated time after the last processed event.
        """
        started = self.now
        try:
            while True:
                best = self._earliest()
                if best is None:
                    break
                time, index = best
                if until is not None and time > until:
                    break
                for member in self._members:
                    member.advance_to(time)
                self._members[index].step()
            if until is not None and until > self.now:
                for member in self._members:
                    member.advance_to(until)
            return self.now
        finally:
            if self.now > started:
                _OBS_SIM_TIME.inc(self.now - started)
