"""Round-trip and validation tests for the BENCH_<n>.json schema."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import PerfError
from repro.perf.schema import (
    SCHEMA_VERSION,
    Artifact,
    BenchRecord,
    BudgetCheck,
    Hotspot,
    WallStats,
    artifact_paths,
    dump_artifact,
    load_artifact,
    next_artifact_path,
)


def _artifact() -> Artifact:
    return Artifact(
        payload_scale=0.25,
        repeats=2,
        quick=True,
        benches=(
            BenchRecord(
                name="fig1_multiframing",
                module="bench_fig1_multiframing",
                wall=WallStats(samples=(0.004, 0.006, 0.005)),
                figures={"framer.chunks": 129, "framer.units": 1024},
                metrics={
                    "netsim.loop.events_processed": 40,
                    "netsim.loop.sim_time_total": 1.5,
                },
                hotspots=(Hotspot("builder.py:10(add_frame)", 0.003, 86),),
            ),
            BenchRecord(
                name="fig5_invariant",
                module="bench_fig5_invariant",
                wall=WallStats(samples=(0.02, 0.02)),
                figures={"trials": 50, "wsc2_stable": 50},
                metrics={"wsc.tpdu_verified": 50},
            ),
        ),
        budgets=(
            BudgetCheck.evaluate(
                "fig5.wsc2_order_invariant", "order invariance", 50.0, "==", 50.0
            ),
        ),
        info={"python": "3.11.7"},
    )


class TestWallStats:
    def test_median_and_iqr(self):
        stats = WallStats(samples=(1.0, 2.0, 3.0, 10.0))
        assert stats.median == 2.5
        # Inclusive quartiles of (1, 2, 3, 10): q1=1.75, q3=4.75.
        assert stats.iqr == pytest.approx(3.0)

    def test_single_sample_has_zero_iqr(self):
        stats = WallStats(samples=(0.5,))
        assert stats.median == 0.5
        assert stats.iqr == 0.0

    def test_empty_samples_rejected(self):
        with pytest.raises(PerfError):
            WallStats(samples=())


class TestBudgetCheck:
    def test_ops(self):
        assert BudgetCheck.evaluate("a", "", 1.0, "==", 1.0).passed
        assert BudgetCheck.evaluate("b", "", 1.9, "<=", 2.0).passed
        assert not BudgetCheck.evaluate("c", "", 2.1, "<=", 2.0).passed
        assert BudgetCheck.evaluate("d", "", 3.0, ">=", 2.0).passed

    def test_unknown_op_rejected(self):
        with pytest.raises(PerfError):
            BudgetCheck.evaluate("e", "", 1.0, "!=", 2.0)


class TestRoundTrip:
    def test_dict_round_trip_is_lossless(self):
        artifact = _artifact()
        again = Artifact.from_dict(artifact.to_dict())
        assert again == artifact

    def test_file_round_trip_through_json(self, tmp_path):
        artifact = _artifact()
        path = tmp_path / "BENCH_0001.json"
        dump_artifact(artifact, path)
        assert load_artifact(path) == artifact
        # The on-disk form is deterministic: sorted keys, stable layout.
        dump_artifact(artifact, tmp_path / "again.json")
        assert path.read_text() == (tmp_path / "again.json").read_text()

    def test_derived_totals(self):
        artifact = _artifact()
        assert artifact.bench("fig5_invariant") is not None
        assert artifact.bench("missing") is None
        assert artifact.total_sim_time_s == pytest.approx(1.5)
        assert artifact.total_events == 40
        assert artifact.failed_budgets == ()


class TestValidation:
    def test_wrong_schema_version_rejected(self):
        raw = _artifact().to_dict()
        raw["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(PerfError, match="schema_version"):
            Artifact.from_dict(raw)

    def test_non_scalar_figure_rejected(self):
        raw = _artifact().to_dict()
        benches = raw["benches"]
        assert isinstance(benches, list)
        benches[0]["figures"]["bad"] = [1, 2]
        with pytest.raises(PerfError, match="scalar"):
            Artifact.from_dict(raw)

    def test_duplicate_bench_names_rejected(self):
        raw = _artifact().to_dict()
        benches = raw["benches"]
        assert isinstance(benches, list)
        benches.append(benches[0])
        with pytest.raises(PerfError, match="duplicate"):
            Artifact.from_dict(raw)

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "BENCH_0001.json"
        path.write_text("{not json")
        with pytest.raises(PerfError, match="JSON"):
            load_artifact(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(PerfError, match="cannot read"):
            load_artifact(tmp_path / "BENCH_0404.json")


class TestArtifactPaths:
    def test_next_path_counts_up(self, tmp_path):
        assert next_artifact_path(tmp_path).name == "BENCH_0001.json"
        (tmp_path / "BENCH_0001.json").write_text("{}")
        (tmp_path / "BENCH_0007.json").write_text("{}")
        (tmp_path / "BENCH_12.json").write_text("{}")  # wrong width: ignored
        assert artifact_paths(tmp_path) == [
            (1, tmp_path / "BENCH_0001.json"),
            (7, tmp_path / "BENCH_0007.json"),
        ]
        assert next_artifact_path(tmp_path).name == "BENCH_0008.json"

    def test_artifact_json_has_expected_top_level_keys(self, tmp_path):
        path = tmp_path / "BENCH_0001.json"
        dump_artifact(_artifact(), path)
        raw = json.loads(path.read_text())
        assert set(raw) == {
            "schema_version", "payload_scale", "repeats", "quick",
            "info", "benches", "budgets",
        }
