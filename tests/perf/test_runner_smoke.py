"""Runner smoke tests against the real bench modules, plus the CLI.

These execute actual ``benchmarks/bench_*.py`` entry points (the
fastest ones) at a small payload scale, so they double as a check that
the registry wiring and the deterministic-repeat guarantee hold on the
real suite, not just on fixtures.
"""

from __future__ import annotations

import json

import pytest

from repro.core.errors import PerfError
from repro.perf.__main__ import main
from repro.perf.profile import collect_hotspots, measure_touch_budgets
from repro.perf.runner import load_registry, run_suite
from repro.perf.schema import load_artifact


SMOKE_ONLY = ["fig6_xid", "fig7_implicit"]
SMOKE_SCALE = 0.25


@pytest.fixture(scope="module")
def registry():
    return load_registry()


class TestRegistry:
    def test_every_bench_module_registers_an_entry(self, registry):
        # One entry per benchmarks/bench_*.py file, named after it.
        assert len(registry) >= 20
        assert "claim_touches" in registry
        assert all(entry.module == f"bench_{name}"
                   for name, entry in registry.items())

    def test_unknown_only_pattern_is_an_error(self):
        with pytest.raises(PerfError, match="matches no bench"):
            run_suite(only=["no_such_bench"], repeats=1)


class TestRunSuite:
    def test_smoke_run_writes_valid_artifact(self, tmp_path):
        exit_code = main([
            "run", "--quick",
            "--only", SMOKE_ONLY[0], "--only", SMOKE_ONLY[1],
            "--out", str(tmp_path / "BENCH_0001.json"),
        ])
        assert exit_code == 0
        artifact = load_artifact(tmp_path / "BENCH_0001.json")
        assert artifact.quick
        assert len(artifact.benches) >= 2
        assert {"fig6_xid_encoding", "fig7_implicit_id"} <= set(artifact.bench_names)
        for record in artifact.benches:
            assert len(record.wall.samples) == artifact.repeats
            assert record.figures  # every bench returns at least one figure
        # The direct touch budgets are present even in filtered runs.
        names = {budget.name for budget in artifact.budgets}
        assert "touch.immediate_per_byte" in names
        assert all(budget.passed for budget in artifact.budgets)

    def test_two_runs_agree_exactly_on_deterministic_sections(self):
        first = run_suite(payload_scale=SMOKE_SCALE, repeats=1, only=SMOKE_ONLY)
        second = run_suite(payload_scale=SMOKE_SCALE, repeats=1, only=SMOKE_ONLY)
        for one, two in zip(first.benches, second.benches):
            assert one.figures == two.figures
            assert one.metrics == two.metrics
        assert [b.to_dict() for b in first.budgets] == [
            b.to_dict() for b in second.budgets
        ]


class TestBudgets:
    def test_direct_touch_budgets_hold(self):
        budgets = {budget.name: budget for budget in measure_touch_budgets()}
        assert budgets["touch.immediate_per_byte"].value == 1.0
        assert budgets["touch.immediate_per_byte"].passed
        assert budgets["touch.reassemble_per_byte"].value <= 2.0
        assert budgets["touch.reassemble_per_byte"].passed
        # In-order and shuffled arrival moved identical byte counts.
        invariant = budgets["touch.order_invariant_bytes"]
        assert invariant.op == "=="
        assert invariant.passed

    def test_touch_budgets_are_deterministic(self):
        first = [budget.to_dict() for budget in measure_touch_budgets()]
        second = [budget.to_dict() for budget in measure_touch_budgets()]
        assert first == second


class TestProfileAndCli:
    def test_hotspots_cover_the_bench_entry(self, registry):
        entry = registry["fig6_xid_encoding"]
        hotspots = collect_hotspots(entry.fn, SMOKE_SCALE, top_n=8)
        assert 0 < len(hotspots) <= 8
        cumulatives = [spot.cumulative_s for spot in hotspots]
        assert cumulatives == sorted(cumulatives, reverse=True)
        assert any("bench_fig6_xid_encoding" in spot.function for spot in hotspots)

    def test_collect_hotspots_disabled_with_zero_top(self, registry):
        entry = registry["fig6_xid_encoding"]
        assert collect_hotspots(entry.fn, SMOKE_SCALE, top_n=0) == ()

    def test_cli_compare_identical_and_perturbed(self, tmp_path, capsys):
        out = tmp_path / "BENCH_0001.json"
        assert main(["run", "--quick", "--only", SMOKE_ONLY[0],
                     "--out", str(out)]) == 0
        assert main(["compare", str(out), str(out)]) == 0
        # Perturb one deterministic figure: the gate must fail.
        raw = json.loads(out.read_text())
        raw["benches"][0]["figures"]["schedules_stable"] -= 1
        bad = tmp_path / "BENCH_0002.json"
        bad.write_text(json.dumps(raw))
        assert main(["compare", str(out), str(bad)]) == 1
        capsys.readouterr()

    def test_cli_report_renders_trajectory(self, tmp_path, capsys):
        out = tmp_path / "BENCH_0001.json"
        assert main(["run", "--quick", "--only", SMOKE_ONLY[1],
                     "--out", str(out)]) == 0
        assert main(["report", "--root", str(tmp_path)]) == 0
        rendered = capsys.readouterr().out
        assert "BENCH_0001" in rendered
        assert "fig7_implicit_id" in rendered

    def test_cli_usage_errors_exit_2(self, tmp_path, capsys):
        missing = tmp_path / "BENCH_0404.json"
        assert main(["compare", str(missing), str(missing)]) == 2
        assert main(["profile", "no_such_bench"]) == 2
        capsys.readouterr()
