"""Comparator tests: noise-aware wall gates and the deterministic gate."""

from __future__ import annotations

import pytest

from repro.core.errors import PerfError
from repro.perf.compare import compare_artifacts, render_comparison
from repro.perf.schema import Artifact, BenchRecord, BudgetCheck, WallStats


def _record(name: str, samples: tuple[float, ...],
            figures: dict | None = None,
            metrics: dict | None = None) -> BenchRecord:
    return BenchRecord(
        name=name,
        module=f"bench_{name}",
        wall=WallStats(samples=samples),
        figures=figures if figures is not None else {"value": 1},
        metrics=metrics if metrics is not None else {"host.touch_bytes_total": 100},
    )


def _artifact(benches: tuple[BenchRecord, ...],
              budgets: tuple[BudgetCheck, ...] = (),
              payload_scale: float = 1.0,
              repeats: int = 3) -> Artifact:
    return Artifact(
        payload_scale=payload_scale,
        repeats=repeats,
        quick=False,
        benches=benches,
        budgets=budgets,
    )


BASE = _artifact((_record("alpha", (0.100, 0.102, 0.104)),))


class TestWallGate:
    def test_identical_artifacts_pass(self):
        result = compare_artifacts(BASE, BASE)
        assert result.ok
        assert result.findings == ()

    def test_large_slowdown_is_a_regression(self):
        slow = _artifact((_record("alpha", (0.200, 0.202, 0.204)),))
        result = compare_artifacts(BASE, slow)
        assert not result.ok
        assert [f.kind for f in result.failures] == ["wall-regression"]

    def test_slowdown_within_iqr_noise_passes(self):
        # Median moves 100ms -> 130ms but the noise band is wider still.
        noisy_base = _artifact((_record("alpha", (0.060, 0.100, 0.160)),))
        wobble = _artifact((_record("alpha", (0.090, 0.130, 0.170)),))
        result = compare_artifacts(noisy_base, wobble)
        assert result.ok

    def test_small_ratio_regression_passes_even_with_tight_iqr(self):
        # +5% exceeds the (zero-width) IQR threshold but not the ratio gate.
        tight_base = _artifact((_record("alpha", (0.100, 0.100, 0.100)),))
        slightly = _artifact((_record("alpha", (0.105, 0.105, 0.105)),))
        result = compare_artifacts(tight_base, slightly)
        assert result.ok

    def test_improvement_reported_but_not_failing(self):
        fast = _artifact((_record("alpha", (0.050, 0.052, 0.054)),))
        result = compare_artifacts(BASE, fast)
        assert result.ok
        assert [f.kind for f in result.findings] == ["wall-improvement"]

    def test_no_wall_mode_ignores_any_slowdown(self):
        slow = _artifact((_record("alpha", (0.900, 0.900, 0.900)),))
        assert compare_artifacts(BASE, slow, check_wall=False).ok


class TestDeterministicGate:
    def test_figure_drift_fails(self):
        drifted = _artifact((_record("alpha", (0.100, 0.102, 0.104),
                                     figures={"value": 2}),))
        result = compare_artifacts(BASE, drifted)
        assert not result.ok
        assert [f.kind for f in result.failures] == ["figure-drift"]
        assert "value" in result.failures[0].detail

    def test_metric_drift_fails_even_when_wall_unchecked(self):
        drifted = _artifact((_record("alpha", (0.100, 0.102, 0.104),
                                     metrics={"host.touch_bytes_total": 101}),))
        result = compare_artifacts(BASE, drifted, check_wall=False)
        assert not result.ok
        assert [f.kind for f in result.failures] == ["metric-drift"]

    def test_added_and_removed_counters_are_drift(self):
        drifted = _artifact((_record(
            "alpha", (0.100, 0.102, 0.104),
            metrics={"host.touch_bytes_total": 100, "host.deliveries": 4},
        ),))
        result = compare_artifacts(BASE, drifted)
        assert [f.kind for f in result.failures] == ["metric-drift"]
        assert "added" in result.failures[0].detail

    def test_bench_set_changes_fail(self):
        grown = _artifact((
            _record("alpha", (0.100, 0.102, 0.104)),
            _record("beta", (0.010, 0.010, 0.010)),
        ))
        result = compare_artifacts(BASE, grown)
        assert [f.kind for f in result.failures] == ["bench-added"]
        result = compare_artifacts(grown, BASE)
        assert [f.kind for f in result.failures] == ["bench-removed"]

    def test_failed_budget_fails(self):
        budget = BudgetCheck.evaluate(
            "touch.immediate_per_byte", "touch once", 1.5, "==", 1.0
        )
        broken = _artifact(BASE.benches, budgets=(budget,))
        baseline = _artifact(
            BASE.benches,
            budgets=(BudgetCheck.evaluate(
                "touch.immediate_per_byte", "touch once", 1.0, "==", 1.0
            ),),
        )
        result = compare_artifacts(baseline, broken)
        kinds = sorted(f.kind for f in result.failures)
        assert kinds == ["budget-drift", "budget-failed"]


class TestComparability:
    def test_payload_scale_mismatch_raises(self):
        other = _artifact(BASE.benches, payload_scale=0.25)
        with pytest.raises(PerfError, match="payload_scale"):
            compare_artifacts(BASE, other)

    def test_repeats_mismatch_raises(self):
        other = _artifact(BASE.benches, repeats=9)
        with pytest.raises(PerfError, match="repeats"):
            compare_artifacts(BASE, other)


class TestRendering:
    def test_render_mentions_verdict_and_counts(self):
        text = render_comparison(compare_artifacts(BASE, BASE))
        assert "artifacts agree" in text
        assert "0 failure(s)" in text

    def test_render_marks_failures(self):
        drifted = _artifact((_record("alpha", (0.100, 0.102, 0.104),
                                     figures={"value": 2}),))
        text = render_comparison(compare_artifacts(BASE, drifted))
        assert "[FAIL]" in text
        assert "figure-drift" in text
