"""Unit tests for XTEA and the two cipher modes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.modes import (
    CbcDisorderedDecryptor,
    CbcMode,
    PositionKeyedMode,
    split_blocks,
)
from repro.crypto.xtea import BLOCK_BYTES, KEY_BYTES, Xtea

KEY = bytes(range(16))


class TestXtea:
    def test_known_vector(self):
        # Standard XTEA vector: key 000102...0f, plaintext 4142434445464748.
        cipher = Xtea(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        assert cipher.encrypt_block(bytes.fromhex("4142434445464748")) == bytes.fromhex(
            "497df3d072612cb5"
        )

    def test_zero_vector(self):
        cipher = Xtea(b"\x00" * 16)
        assert cipher.encrypt_block(b"\x00" * 8) == bytes.fromhex("dee9d4d8f7131ed9")

    @given(st.binary(min_size=8, max_size=8), st.binary(min_size=16, max_size=16))
    @settings(max_examples=50)
    def test_decrypt_inverts_encrypt(self, block, key):
        cipher = Xtea(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            Xtea(b"short")

    def test_bad_block_length(self):
        with pytest.raises(ValueError):
            Xtea(KEY).encrypt_block(b"toolongblock")

    def test_different_keys_differ(self):
        a = Xtea(KEY).encrypt_block(b"AAAAAAAA")
        b = Xtea(bytes(range(1, 17))).encrypt_block(b"AAAAAAAA")
        assert a != b


class TestSplitBlocks:
    def test_split(self):
        assert split_blocks(b"a" * 16) == [b"a" * 8, b"a" * 8]

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            split_blocks(b"a" * 12)


class TestCbc:
    def test_roundtrip(self):
        mode = CbcMode(Xtea(KEY))
        plaintext = bytes(range(64))
        assert mode.decrypt(mode.encrypt(plaintext)) == plaintext

    def test_chaining_propagates(self):
        """Identical plaintext blocks encrypt differently under CBC."""
        mode = CbcMode(Xtea(KEY))
        ciphertext = mode.encrypt(b"\x11" * 24)
        blocks = split_blocks(ciphertext)
        assert len(set(blocks)) == 3

    def test_disordered_decryption_stalls(self):
        """Blocks arriving out of order cannot all decrypt on arrival."""
        mode = CbcMode(Xtea(KEY))
        plaintext = bytes(range(80))
        blocks = split_blocks(mode.encrypt(plaintext))
        order = list(enumerate(blocks))
        random.Random(6).shuffle(order)
        decryptor = CbcDisorderedDecryptor(Xtea(KEY))
        for index, block in order:
            decryptor.add_block(index, block)
        assert decryptor.stalled_arrivals > 0
        assert decryptor.plaintext(len(blocks)) == plaintext

    def test_in_order_decryption_never_stalls(self):
        mode = CbcMode(Xtea(KEY))
        plaintext = bytes(range(80))
        blocks = split_blocks(mode.encrypt(plaintext))
        decryptor = CbcDisorderedDecryptor(Xtea(KEY))
        for index, block in enumerate(blocks):
            decryptor.add_block(index, block)
        assert decryptor.stalled_arrivals == 0
        assert decryptor.plaintext(len(blocks)) == plaintext


class TestPositionKeyed:
    def test_roundtrip(self):
        mode = PositionKeyedMode(Xtea(KEY), nonce=7)
        plaintext = bytes(range(72))
        assert mode.decrypt_at(0, mode.encrypt_at(0, plaintext)) == plaintext

    def test_any_fragment_decrypts_in_isolation(self):
        """The chunk-friendly property: position + bytes is enough."""
        mode = PositionKeyedMode(Xtea(KEY), nonce=7)
        plaintext = bytes(range(96))
        ciphertext = mode.encrypt_at(0, plaintext)
        pieces = [(0, 24), (24, 56), (56, 96)]
        random.Random(1).shuffle(pieces)
        out = bytearray(96)
        for start, end in pieces:
            out[start:end] = mode.decrypt_at(start // BLOCK_BYTES, ciphertext[start:end])
        assert bytes(out) == plaintext

    def test_nonce_separates_streams(self):
        a = PositionKeyedMode(Xtea(KEY), nonce=1).encrypt_at(0, b"\x00" * 16)
        b = PositionKeyedMode(Xtea(KEY), nonce=2).encrypt_at(0, b"\x00" * 16)
        assert a != b

    def test_position_matters(self):
        mode = PositionKeyedMode(Xtea(KEY))
        a = mode.encrypt_at(0, b"\x00" * 8)
        b = mode.encrypt_at(1, b"\x00" * 8)
        assert a != b
