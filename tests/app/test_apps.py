"""Unit tests for the bulk-transfer and video applications."""

import hashlib
import random

from repro.core.packet import pack_chunks
from repro.app.bulk import BulkTransferApp
from repro.app.video import VideoPlayoutApp
from repro.transport.connection import ConnectionConfig
from repro.transport.receiver import ChunkTransportReceiver
from repro.transport.sender import ChunkTransportSender

from tests.conftest import make_payload


def _bulk_setup(object_bytes=1024, tpdu_units=32, mtu=256):
    sender = ChunkTransportSender(ConnectionConfig(connection_id=1, tpdu_units=tpdu_units))
    payload = make_payload(object_bytes // 4, seed=42)
    chunks = [sender.establishment_chunk()] + sender.close(payload)
    packets = pack_chunks(chunks, mtu)
    app = BulkTransferApp(
        receiver=ChunkTransportReceiver(), expected_bytes=len(payload)
    )
    return app, packets, payload


class TestBulkTransfer:
    def test_in_order_transfer(self):
        app, packets, payload = _bulk_setup()
        for packet in packets:
            app.on_packet(packet.encode())
        assert app.is_complete()
        assert app.data() == payload
        assert app.sha256() == hashlib.sha256(payload).hexdigest()

    def test_disordered_transfer_identical_result(self):
        app, packets, payload = _bulk_setup()
        random.Random(3).shuffle(packets)
        for packet in packets:
            app.on_packet(packet.encode())
        assert app.is_complete()
        assert app.data() == payload

    def test_progress_monotonic(self):
        app, packets, _ = _bulk_setup()
        random.Random(5).shuffle(packets)
        last = 0.0
        for packet in packets:
            app.on_packet(packet.encode())
            assert app.progress() >= last
            last = app.progress()
        assert last == 1.0

    def test_verified_tpdus_recorded(self):
        app, packets, _ = _bulk_setup()
        for packet in packets:
            app.on_packet(packet.encode())
        assert len(app.verified_tpdu_ids) == app.receiver.verified_tpdus()
        assert app.verified_tpdu_ids

    def test_incomplete_without_all_packets(self):
        app, packets, _ = _bulk_setup()
        dropped = next(
            i for i, p in enumerate(packets) if any(c.is_data for c in p.chunks)
        )
        for index, packet in enumerate(packets):
            if index != dropped:
                app.on_packet(packet.encode())
        assert not app.is_complete()
        assert app.progress() < 1.0


def _video_setup(frames=6, frame_units=30, tpdu_units=45, mtu=256):
    sender = ChunkTransportSender(ConnectionConfig(connection_id=2, tpdu_units=tpdu_units))
    frame_data = {}
    chunks = [sender.establishment_chunk()]
    for frame_id in range(frames):
        data = make_payload(frame_units, seed=frame_id)
        frame_data[frame_id] = data
        if frame_id == frames - 1:
            chunks += sender.close(data, frame_id=frame_id)
        else:
            chunks += sender.send_frame(data, frame_id=frame_id)
    packets = pack_chunks(chunks, mtu)
    app = VideoPlayoutApp(
        receiver=ChunkTransportReceiver(), frame_interval=0.01, start_delay=1.0
    )
    return app, packets, frame_data


class TestVideoPlayout:
    def test_all_frames_play_in_order(self):
        app, packets, frame_data = _video_setup()
        for index, packet in enumerate(packets):
            app.on_packet(index * 0.001, packet.encode())
        assert app.frames_played == len(frame_data)
        assert [r.frame_id for r in app.records] == sorted(frame_data)

    def test_frame_pixels_correct_under_disorder(self):
        app, packets, frame_data = _video_setup()
        random.Random(9).shuffle(packets)
        for index, packet in enumerate(packets):
            app.on_packet(index * 0.001, packet.encode())
        assert app.frames_played == len(frame_data)
        for frame_id, data in frame_data.items():
            assert app.frame_bytes(frame_id) == data

    def test_playout_order_is_frame_order_despite_disorder(self):
        app, packets, _ = _video_setup()
        random.Random(9).shuffle(packets)
        for index, packet in enumerate(packets):
            app.on_packet(index * 0.001, packet.encode())
        assert [r.frame_id for r in app.records] == sorted(
            r.frame_id for r in app.records
        )

    def test_on_time_accounting(self):
        app, packets, _ = _video_setup()
        for index, packet in enumerate(packets):
            app.on_packet(index * 0.001, packet.encode())
        assert app.frames_late == 0  # generous start delay

    def test_late_frames_detected(self):
        app, packets, _ = _video_setup()
        app.start_delay = 0.0  # impossible deadline for all but frame 0
        for index, packet in enumerate(packets):
            app.on_packet(0.5 + index * 0.001, packet.encode())
        assert app.frames_late > 0

    def test_head_of_line_frame_blocks_playout(self):
        """Frames are presented in order: a missing early frame holds
        later completed frames in the queue."""
        app, packets, frame_data = _video_setup(mtu=200)
        # Drop every packet carrying frame 0 data.
        from repro.core.packet import Packet

        kept = []
        for packet in packets:
            if any(c.is_data and c.x.ident == 0 for c in packet.chunks):
                continue
            kept.append(packet)
        for index, packet in enumerate(kept):
            app.on_packet(index * 0.001, packet.encode())
        assert app.frames_played == 0
        assert app.receiver.frames.completed  # later frames are ready
