"""ConcurrentWorkload: staggered bulk/video mixes over one endpoint pair."""

from __future__ import annotations

from repro.app.concurrent import (
    ConcurrentWorkload,
    deterministic_payload,
    staggered_specs,
)
from repro.netsim.events import EventLoop
from repro.transport.endpoint import ChunkEndpoint


def wire(loop: EventLoop, a: ChunkEndpoint, b: ChunkEndpoint, delay: float = 0.001):
    a.transmit = lambda frame: loop.schedule(delay, lambda: b.receive_packet(frame))
    b.transmit = lambda frame: loop.schedule(delay, lambda: a.receive_packet(frame))


def endpoint_pair(loop: EventLoop) -> tuple[ChunkEndpoint, ChunkEndpoint]:
    sender = ChunkEndpoint(loop, mtu=1500)
    receiver = ChunkEndpoint(loop, mtu=1500)
    wire(loop, sender, receiver)
    return sender, receiver


def test_deterministic_payload_depends_only_on_cid_and_length():
    assert deterministic_payload(5, 1000) == deterministic_payload(5, 1000)
    assert deterministic_payload(5, 100) == deterministic_payload(5, 1000)[:100]
    assert deterministic_payload(5, 256) != deterministic_payload(6, 256)


def test_staggered_specs_mix_and_schedule():
    specs = staggered_specs(8, total_bytes=4096, stagger=0.01, video_every=4)
    assert len(specs) == 8
    assert [s.kind for s in specs] == ["bulk"] * 3 + ["video"] + ["bulk"] * 3 + ["video"]
    assert [s.connection_id for s in specs] == list(range(1, 9))
    assert specs[3].frame_interval == 0.01
    assert specs[0].start_time == 0.0
    assert specs[7].start_time == 7 * 0.01
    # video paces small frames; bulk pushes bigger ones
    assert specs[3].frame_bytes < specs[0].frame_bytes


def test_workload_delivers_every_conversation_byte_exact():
    loop = EventLoop()
    sender, receiver = endpoint_pair(loop)
    work = ConcurrentWorkload(loop, sender, receiver)
    work.launch(staggered_specs(6, total_bytes=4096, stagger=0.002))
    outcomes = work.run()
    assert len(outcomes) == 6
    assert all(o.launched and o.complete and o.sender_finished for o in outcomes)
    assert all(o.bytes_received == 4096 for o in outcomes)
    assert all(abs(o.touches_per_byte - 1.0) < 1e-9 for o in outcomes)
    summary = work.summary()
    assert summary["launched"] == 6
    assert summary["complete"] == 6
    assert summary["bytes_received"] == 6 * 4096


def test_video_conversations_complete_frames():
    loop = EventLoop()
    sender, receiver = endpoint_pair(loop)
    work = ConcurrentWorkload(loop, sender, receiver)
    work.launch(staggered_specs(4, total_bytes=8192, stagger=0.002, video_every=2))
    outcomes = work.run()
    video = [o for o in outcomes if o.spec.kind == "video"]
    assert video and all(o.complete for o in video)
    # 8192 bytes in 2048-byte paced frames = 4 external PDUs each.
    assert all(o.frames_completed == 4 for o in video)


def test_capacity_refusal_is_reported_not_raised():
    loop = EventLoop()
    sender, receiver = endpoint_pair(loop)
    sender.max_connections = 2
    work = ConcurrentWorkload(loop, sender, receiver)
    work.launch(staggered_specs(4, total_bytes=1024, stagger=0.001))
    outcomes = work.run()
    refused = [o for o in outcomes if o.refused]
    completed = [o for o in outcomes if o.complete]
    assert len(refused) == 2
    assert len(completed) == 2
    assert work.refused == 2
    assert work.launched == 2


def test_conversations_share_packets_on_the_wire():
    loop = EventLoop()
    sender = ChunkEndpoint(loop, mtu=8192, flush_window=0.0005)
    receiver = ChunkEndpoint(loop, mtu=8192)
    wire(loop, sender, receiver)
    work = ConcurrentWorkload(loop, sender, receiver)
    # Simultaneous starts so egress chunks from different conversations
    # coalesce into mixed packets.
    work.launch(staggered_specs(4, total_bytes=2048, stagger=0.0))
    outcomes = work.run()
    assert all(o.complete for o in outcomes)
    assert sender.mixed_packets > 0
