"""True-positive / near-miss tests for the protolint v3 passes.

budget-leak, seam-purity, async-discipline and wire-drift each get the
TP-plus-nearest-legal-idiom treatment, and the two acceptance scenarios
from ISSUE 6 are pinned explicitly: a budget ``acquire()`` leaked only
on an exception path is caught, and injecting ``time.time()`` into
``repro.transport.endpoint`` fails seam-purity.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.core import Finding, ModuleUnit, run_passes
from repro.analysis.passes import (
    AsyncDisciplinePass,
    BudgetLeakPass,
    SeamPurityPass,
    WireDriftPass,
)

FIXTURES = Path(__file__).parent / "fixtures" / "src" / "repro"
REPO_SRC = Path(__file__).parents[2] / "src" / "repro"


def project_findings(pass_obj, *paths: Path) -> list[Finding]:
    units = [ModuleUnit.from_path(p) for p in paths]
    return run_passes(units, [pass_obj])


def symbols(findings: list[Finding]) -> set[str]:
    return {f.symbol for f in findings}


def real_units() -> list[ModuleUnit]:
    return [ModuleUnit.from_path(p) for p in sorted(REPO_SRC.rglob("*.py"))]


class TestBudgetLeak:
    def test_fixture_true_positives(self):
        findings = project_findings(
            BudgetLeakPass(), FIXTURES / "host" / "bad_budget_leak.py"
        )
        assert symbols(findings) == {
            "leak:repro.host.bad_budget_leak.leak_on_exception:lease",
            "discard:repro.host.bad_budget_leak.discard_token",
            "double-release:repro.host.bad_budget_leak.double_release:lease",
        }

    def test_exception_only_leak_is_caught(self):
        # The acceptance scenario: the only leaking path is the
        # exception edge out of risky(); the normal path releases.
        src = (FIXTURES / "host" / "bad_budget_leak.py").read_text()
        assert "risky(payload)\n    lease.release()" in src
        findings = project_findings(
            BudgetLeakPass(), FIXTURES / "host" / "bad_budget_leak.py"
        )
        leak = [f for f in findings if f.symbol.startswith("leak:")]
        assert len(leak) == 1
        assert "exception" in leak[0].message

    def test_near_misses_stay_silent(self):
        findings = project_findings(
            BudgetLeakPass(), FIXTURES / "host" / "bad_budget_leak.py"
        )
        for finding in findings:
            assert "ok_finally" not in finding.symbol
            assert "ok_with" not in finding.symbol

    def test_ownership_transfers_stay_silent(self, tmp_path):
        path = tmp_path / "repro" / "host" / "handoff.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "__all__ = []\n"
            "def stores(self, budget):\n"
            "    self._lease = budget.acquire('k', 8)\n"
            "def returns(budget):\n"
            "    lease = budget.acquire('k', 8)\n"
            "    return lease\n"
            "def hands_off(budget, sink):\n"
            "    lease = budget.acquire('k', 8)\n"
            "    sink(lease)\n"
        )
        assert project_findings(BudgetLeakPass(), path) == []

    def test_rebind_while_held_is_flagged(self, tmp_path):
        path = tmp_path / "repro" / "host" / "rebind.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "__all__ = []\n"
            "def f(budget):\n"
            "    lease = budget.acquire('a', 8)\n"
            "    lease = budget.acquire('b', 8)\n"
            "    lease.release()\n"
        )
        findings = project_findings(BudgetLeakPass(), path)
        assert any(f.symbol.startswith("rebind:") for f in findings)

    def test_real_tree_is_clean(self):
        assert run_passes(real_units(), [BudgetLeakPass()]) == []


class TestSeamPurity:
    def test_fixture_true_positives(self):
        findings = project_findings(
            SeamPurityPass(), FIXTURES / "transport" / "bad_seam.py"
        )
        assert symbols(findings) == {
            "ambient:repro.transport.bad_seam.stamp_arrival->time.time",
            "ambient:repro.transport.bad_seam._ambient_clock_helper->time.monotonic",
        }

    def test_perf_counter_near_miss_stays_silent(self):
        findings = project_findings(
            SeamPurityPass(), FIXTURES / "transport" / "bad_seam.py"
        )
        assert not any("perf_counter" in f.symbol for f in findings)

    def test_interprocedural_reach_names_the_helper(self):
        findings = project_findings(
            SeamPurityPass(), FIXTURES / "transport" / "bad_seam.py"
        )
        helper = [f for f in findings if "_ambient_clock_helper" in f.symbol]
        assert helper  # caught through the call graph, not just textually

    def test_adapter_module_is_exempt(self, tmp_path):
        root = tmp_path / "repro"
        (root / "transport").mkdir(parents=True)
        (root / "netsim").mkdir(parents=True)
        user = root / "transport" / "user.py"
        user.write_text(
            "from repro.netsim.rng import draw\n"
            "__all__ = []\n"
            "def entry():\n"
            "    return draw()\n"
        )
        adapter = root / "netsim" / "rng.py"
        adapter.write_text(
            "import random\n"
            "__all__ = []\n"
            "def draw():\n"
            "    return random.random()\n"
        )
        assert project_findings(SeamPurityPass(), user, adapter) == []

    def test_injecting_time_time_into_endpoint_fails(self):
        # ISSUE 6 acceptance: the real tree is clean, but the same tree
        # with a wall-clock call spliced into the transport endpoint is
        # not — proving the pass watches the real seam, not a toy.
        units = real_units()
        endpoint = next(u for u in units if u.module == "repro.transport.endpoint")
        source = endpoint.source.replace(
            "from __future__ import annotations",
            "from __future__ import annotations\nimport time",
            1,
        )
        marker = "connection._touched_bytes = placed"
        assert marker in source
        source = source.replace(
            marker, marker + "\n        _stamp = time.time()", 1
        )
        tainted = ModuleUnit(
            path=endpoint.path,
            module=endpoint.module,
            source=source,
            tree=ast.parse(source),
        )
        swapped = [tainted if u.module == endpoint.module else u for u in units]
        findings = run_passes(swapped, [SeamPurityPass()])
        assert any(
            f.symbol.endswith("->time.time") and "endpoint" in f.path
            for f in findings
        ), findings

    def test_real_tree_is_clean(self):
        assert run_passes(real_units(), [SeamPurityPass()]) == []


class TestAsyncDiscipline:
    def test_fixture_true_positives(self):
        findings = project_findings(
            AsyncDisciplinePass(), FIXTURES / "app" / "bad_async.py"
        )
        assert symbols(findings) == {
            "blocking:repro.app.bad_async.drain_blocking->time.sleep",
            "unawaited:repro.app.bad_async.fire_and_forget->repro.app.bad_async.pump_frames",
        }

    def test_awaited_and_task_wrapped_near_misses_stay_silent(self):
        findings = project_findings(
            AsyncDisciplinePass(), FIXTURES / "app" / "bad_async.py"
        )
        assert not any("ok_awaited" in f.symbol for f in findings)
        assert not any("ok_task_wrapped" in f.symbol for f in findings)

    def test_no_async_roots_no_findings(self, tmp_path):
        path = tmp_path / "repro" / "app" / "sync_only.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "import time\n"
            "__all__ = []\n"
            "def f():\n"
            "    time.sleep(1)\n"
        )
        assert project_findings(AsyncDisciplinePass(), path) == []

    def test_real_tree_is_clean(self):
        assert run_passes(real_units(), [AsyncDisciplinePass()]) == []


class TestWireDrift:
    def test_fixture_true_positives(self):
        findings = project_findings(
            WireDriftPass(), FIXTURES / "core" / "bad_wire_drift.py"
        )
        assert symbols(findings) == {
            "format-drift:_DRIFTED_HEADER",
            "unknown-table:_PHANTOM",
        }

    def test_matching_marker_near_miss_stays_silent(self):
        findings = project_findings(
            WireDriftPass(), FIXTURES / "core" / "bad_wire_drift.py"
        )
        assert not any("_SIGNALING" in f.symbol for f in findings)

    def test_codec_docstring_drift_is_caught(self):
        codec = REPO_SRC / "core" / "codec.py"
        source = codec.read_text().replace("20      T.ID    4", "22      T.ID    4", 1)
        unit = ModuleUnit(
            path=codec, module="repro.core.codec", source=source, tree=ast.parse(source)
        )
        findings = list(WireDriftPass().check(unit))
        assert any(f.symbol == "doc-drift:T.ID" for f in findings)

    def test_deleted_marker_is_caught(self):
        codec = REPO_SRC / "core" / "codec.py"
        source = codec.read_text().replace("  # wire-table: chunk-header", "", 1)
        unit = ModuleUnit(
            path=codec, module="repro.core.codec", source=source, tree=ast.parse(source)
        )
        findings = list(WireDriftPass().check(unit))
        assert any(f.symbol == "unmarked:_HEADER" for f in findings)

    def test_real_tree_is_clean(self):
        assert run_passes(real_units(), [WireDriftPass()]) == []
