"""Positive and negative tests for each protolint pass.

Positives parse the deliberately-broken fixture modules under
``fixtures/src/repro`` and assert each pass reports its target defect;
negatives run the same pass on the clean control module (and, for the
tree-wide properties, on the real wire-format core) and assert silence.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.core import Finding, ModuleUnit, module_name_for_path, run_passes
from repro.analysis.passes import (
    CodecSymmetryPass,
    DeterminismPass,
    ExceptionDisciplinePass,
    ExportDriftPass,
    WireWidthPass,
    all_passes,
)

FIXTURES = Path(__file__).parent / "fixtures" / "src" / "repro"
REPO_SRC = Path(__file__).parents[2] / "src" / "repro"


def unit(path: Path) -> ModuleUnit:
    return ModuleUnit.from_path(path)


def findings_for(pass_obj, path: Path) -> list[Finding]:
    return list(pass_obj.check(unit(path)))


def symbols(findings: list[Finding]) -> set[str]:
    return {f.symbol for f in findings}


CLEAN = FIXTURES / "netsim" / "clean_module.py"


class TestModuleNaming:
    def test_anchors_at_repro(self):
        assert module_name_for_path(FIXTURES / "netsim" / "bad_random.py") == (
            "repro.netsim.bad_random"
        )
        assert module_name_for_path(Path("src/repro/core/codec.py")) == "repro.core.codec"
        assert module_name_for_path(Path("src/repro/core/__init__.py")) == "repro.core"

    def test_foreign_path_falls_back_to_stem(self):
        assert module_name_for_path(Path("/tmp/other/tool.py")) == "tool"


class TestWireWidth:
    def test_catches_width_mismatch_against_documented_constant(self):
        found = symbols(findings_for(WireWidthPass(), FIXTURES / "core" / "bad_wire.py"))
        assert "_HEADER:size-mismatch" in found

    def test_catches_native_byte_order(self):
        found = symbols(findings_for(WireWidthPass(), FIXTURES / "core" / "bad_wire.py"))
        assert "fmt:HBB:endian" in found

    def test_catches_slice_width_mismatch(self):
        found = symbols(findings_for(WireWidthPass(), FIXTURES / "core" / "bad_wire.py"))
        assert "slice:'>HHI':6" in found

    def test_clean_module_passes(self):
        assert findings_for(WireWidthPass(), CLEAN) == []

    def test_real_codec_passes(self):
        assert findings_for(WireWidthPass(), REPO_SRC / "core" / "codec.py") == []

    def test_real_codec_requires_size_guard(self, tmp_path):
        source = (REPO_SRC / "core" / "codec.py").read_text()
        stripped = "\n".join(
            line
            for line in source.splitlines()
            if not line.startswith("assert _HEADER.size")
        )
        fake = tmp_path / "repro" / "core" / "codec.py"
        fake.parent.mkdir(parents=True)
        fake.write_text(stripped)
        found = symbols(findings_for(WireWidthPass(), fake))
        assert "_HEADER:unguarded" in found


class TestCodecSymmetry:
    def test_catches_both_directions(self):
        found = symbols(
            findings_for(CodecSymmetryPass(), FIXTURES / "core" / "bad_codec.py")
        )
        assert found == {"encode_record", "decode_trailer"}

    def test_clean_module_passes(self):
        assert findings_for(CodecSymmetryPass(), CLEAN) == []

    def test_real_codec_passes(self):
        assert findings_for(CodecSymmetryPass(), REPO_SRC / "core" / "codec.py") == []


class TestDeterminism:
    def test_catches_random_time_and_urandom(self):
        found = symbols(
            findings_for(DeterminismPass(), FIXTURES / "netsim" / "bad_random.py")
        )
        assert "import:random" in found
        assert "use:random.random" in found
        assert "use:random.Random" in found
        assert "use:time.time" in found
        assert "use:os.urandom" in found

    def test_out_of_scope_module_is_ignored(self):
        # Same source, but under repro.core — the pass only polices the
        # simulator/transport/host packages.
        src_unit = unit(FIXTURES / "netsim" / "bad_random.py")
        src_unit.module = "repro.core.bad_random"
        assert list(DeterminismPass().check(src_unit)) == []

    def test_rng_module_is_exempt(self):
        assert findings_for(DeterminismPass(), REPO_SRC / "netsim" / "rng.py") == []

    def test_clean_module_passes(self):
        assert findings_for(DeterminismPass(), CLEAN) == []

    def test_real_link_module_passes(self):
        assert findings_for(DeterminismPass(), REPO_SRC / "netsim" / "link.py") == []


class TestExceptionDiscipline:
    def test_catches_all_four_defects(self):
        found = symbols(
            findings_for(ExceptionDisciplinePass(), FIXTURES / "core" / "bad_excepts.py")
        )
        assert "class:LocalProtocolError" in found
        assert "raise:RuntimeError" in found
        assert "raise:LocalProtocolError" in found
        assert "bare-except" in found
        assert "broad-except" in found

    def test_canonical_raises_allowed(self):
        assert findings_for(ExceptionDisciplinePass(), CLEAN) == []

    def test_errors_module_may_define_exceptions(self):
        assert (
            findings_for(ExceptionDisciplinePass(), REPO_SRC / "core" / "errors.py") == []
        )


class TestExportDrift:
    def test_catches_phantom_and_unexported(self):
        found = symbols(
            findings_for(ExportDriftPass(), FIXTURES / "core" / "bad_exports.py")
        )
        assert found == {"phantom:ghost_function", "unexported:stowaway_function"}

    def test_missing_all_is_reported(self, tmp_path):
        mod = tmp_path / "repro" / "core" / "noall.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("def public_thing():\n    return 1\n")
        found = symbols(findings_for(ExportDriftPass(), mod))
        assert "__all__:missing" in found

    def test_entry_point_scripts_owe_no_all(self, tmp_path):
        # Top-level scripts (benchmarks/, examples/) have no importable
        # surface; only the phantom/literal rules apply to them.
        script = tmp_path / "bench_thing.py"
        script.write_text("def main():\n    return 1\n")
        assert findings_for(ExportDriftPass(), script) == []
        phantom = tmp_path / "bench_phantom.py"
        phantom.write_text('__all__ = ["missing_name"]\n')
        found = symbols(findings_for(ExportDriftPass(), phantom))
        assert "phantom:missing_name" in found

    def test_clean_module_passes(self):
        assert findings_for(ExportDriftPass(), CLEAN) == []

    def test_reexport_init_passes(self):
        # __init__ modules bind exports via imports; none are phantoms.
        assert findings_for(ExportDriftPass(), REPO_SRC / "core" / "__init__.py") == []


class TestSuppressionAndFingerprints:
    def test_inline_ignore_silences_finding(self, tmp_path):
        mod = tmp_path / "suppressed.py"
        mod.write_text(
            '__all__ = ["ghost"]  # protolint: ignore[export-drift]\n'
        )
        assert run_passes([unit(mod)], [ExportDriftPass()]) == []

    def test_ignore_is_pass_specific(self, tmp_path):
        mod = tmp_path / "suppressed.py"
        mod.write_text('__all__ = ["ghost"]  # protolint: ignore[wire-width]\n')
        assert len(run_passes([unit(mod)], [ExportDriftPass()])) == 1

    def test_fingerprint_survives_line_shift(self, tmp_path):
        first = tmp_path / "a.py"
        first.write_text('__all__ = ["ghost"]\n')
        second = tmp_path / "b.py"
        second.write_text('\n\n# shifted\n__all__ = ["ghost"]\n')
        [f1] = ExportDriftPass().check(unit(first))
        [f2] = ExportDriftPass().check(unit(second))
        relocated = Finding(
            pass_id=f2.pass_id,
            path=f1.path,
            line=f2.line,
            message=f2.message,
            symbol=f2.symbol,
        )
        assert f1.line != f2.line
        assert relocated.fingerprint == f1.fingerprint


class TestWholeTree:
    @pytest.mark.parametrize("pass_obj", all_passes(), ids=lambda p: p.id)
    def test_real_tree_is_clean(self, pass_obj):
        units = [
            ModuleUnit.from_path(path) for path in sorted(REPO_SRC.rglob("*.py"))
        ]
        assert run_passes(units, [pass_obj]) == []
