"""End-to-end tests for ``python -m repro.analysis``.

The acceptance contract of ISSUE 1: exit 0 on the real tree with the
shipped (empty) baseline, non-zero on the violation fixtures, valid
JSON under ``--format json``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.baseline import load_baseline, write_baseline
from repro.core.errors import AnalysisError

REPO_ROOT = Path(__file__).parents[2]
FIXTURES = Path(__file__).parent / "fixtures" / "src" / "repro"


def run_protolint(*args: str, cwd: Path = REPO_ROOT) -> subprocess.CompletedProcess[str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
        check=False,
    )


class TestRealTree:
    def test_strict_run_is_clean(self):
        result = run_protolint("--strict")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 error(s), 0 warning(s)" in result.stdout

    def test_json_output_is_valid_and_empty(self):
        result = run_protolint("--format", "json")
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["version"] == 1
        assert payload["findings"] == []
        assert payload["files"] > 40
        assert sorted(payload["passes"]) == [
            "codec-symmetry",
            "determinism",
            "exception-discipline",
            "export-drift",
            "hot-path-copy",
            "layering",
            "mutable-sharing",
            "rng-flow",
            "wire-width",
        ]


class TestFixtures:
    def test_fixtures_fail_with_nonzero_exit(self):
        result = run_protolint(str(FIXTURES))
        assert result.returncode == 1
        assert "error" in result.stdout

    def test_fixture_findings_cover_every_pass(self):
        result = run_protolint("--format", "json", str(FIXTURES))
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        reported = {finding["pass"] for finding in payload["findings"]}
        assert reported == {
            "wire-width",
            "codec-symmetry",
            "determinism",
            "exception-discipline",
            "export-drift",
            "layering",
            "rng-flow",
            "hot-path-copy",
            "mutable-sharing",
        }

    def test_select_limits_passes(self):
        result = run_protolint("--format", "json", "--select", "export-drift", str(FIXTURES))
        payload = json.loads(result.stdout)
        assert {finding["pass"] for finding in payload["findings"]} == {"export-drift"}

    def test_disable_removes_pass(self):
        result = run_protolint(
            "--format", "json", "--disable", "export-drift", str(FIXTURES)
        )
        payload = json.loads(result.stdout)
        assert "export-drift" not in {f["pass"] for f in payload["findings"]}

    def test_unknown_pass_id_is_usage_error(self):
        result = run_protolint("--select", "no-such-pass")
        assert result.returncode == 2

    def test_baseline_accepts_known_findings(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        write = run_protolint(str(FIXTURES), "--baseline", str(baseline), "--write-baseline")
        assert write.returncode == 0, write.stdout + write.stderr
        rerun = run_protolint(str(FIXTURES), "--baseline", str(baseline))
        assert rerun.returncode == 0, rerun.stdout + rerun.stderr
        assert "baselined" in rerun.stdout


class TestBaselineFile:
    def test_shipped_baseline_is_empty(self):
        payload = json.loads((REPO_ROOT / "protolint.baseline.json").read_text())
        assert payload == {"version": 1, "findings": []}

    def test_unjustified_entry_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {"version": 1, "findings": [{"fingerprint": "abc123", "justification": ""}]}
            )
        )
        with pytest.raises(AnalysisError, match="justification"):
            load_baseline(path)

    def test_write_then_load_roundtrips(self, tmp_path):
        from repro.analysis.core import Finding

        finding = Finding(pass_id="wire-width", path="x.py", line=3, message="m", symbol="s")
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding])
        assert load_baseline(path) == {finding.fingerprint}


class TestListPasses:
    def test_lists_all_nine(self):
        result = run_protolint("--list-passes")
        assert result.returncode == 0
        for pass_id in (
            "wire-width",
            "codec-symmetry",
            "determinism",
            "exception-discipline",
            "export-drift",
            "layering",
            "rng-flow",
            "hot-path-copy",
            "mutable-sharing",
        ):
            assert pass_id in result.stdout


class TestGithubFormat:
    def test_real_tree_emits_no_annotations(self):
        result = run_protolint("--strict", "--format", "github")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "::error" not in result.stdout
        assert "protolint: 0 finding(s)" in result.stdout

    def test_fixtures_emit_annotations_and_exit_nonzero(self):
        result = run_protolint("--format", "github", str(FIXTURES))
        assert result.returncode == 1
        lines = [ln for ln in result.stdout.splitlines() if ln.startswith("::")]
        assert lines, result.stdout
        # Every annotation carries the file/line/title triple GitHub
        # needs to anchor it on the PR diff.
        for line in lines:
            assert line.startswith(("::error file=", "::warning file="))
            assert ",line=" in line
            assert "title=protolint[" in line

    def test_newlines_in_messages_are_escaped(self):
        from repro.analysis.cli import _render_github
        from repro.analysis.core import Finding

        finding = Finding(
            pass_id="wire-width",
            path="x.py",
            line=3,
            message="a 100% broken\nmulti-line message",
            symbol="s",
        )
        rendered = _render_github([finding])
        assert "a 100%25 broken%0Amulti-line message" in rendered
        assert "\nmulti-line" not in rendered


class TestCheckBaseline:
    def test_fresh_baseline_exits_zero(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        write = run_protolint(str(FIXTURES), "--baseline", str(baseline), "--write-baseline")
        assert write.returncode == 0, write.stdout + write.stderr
        check = run_protolint(str(FIXTURES), "--baseline", str(baseline), "--check-baseline")
        assert check.returncode == 0, check.stdout + check.stderr
        assert "baseline ok" in check.stdout

    def test_stale_baseline_exits_nonzero(self, tmp_path):
        # Baseline captured over the fixtures, then checked against the
        # clean real tree: every entry is stale.
        baseline = tmp_path / "baseline.json"
        write = run_protolint(str(FIXTURES), "--baseline", str(baseline), "--write-baseline")
        assert write.returncode == 0, write.stdout + write.stderr
        check = run_protolint("--baseline", str(baseline), "--check-baseline")
        assert check.returncode == 1
        assert "stale baseline entry" in check.stdout

    def test_shipped_empty_baseline_is_trivially_fresh(self):
        check = run_protolint("--check-baseline")
        assert check.returncode == 0, check.stdout + check.stderr
        assert "baseline ok" in check.stdout
