"""End-to-end tests for ``python -m repro.analysis``.

The acceptance contract of ISSUE 1: exit 0 on the real tree with the
shipped (empty) baseline, non-zero on the violation fixtures, valid
JSON under ``--format json``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.baseline import load_baseline, write_baseline
from repro.core.errors import AnalysisError

REPO_ROOT = Path(__file__).parents[2]
FIXTURES = Path(__file__).parent / "fixtures" / "src" / "repro"

ALL_PASS_IDS = [
    "async-discipline",
    "budget-leak",
    "codec-symmetry",
    "determinism",
    "exception-discipline",
    "export-drift",
    "hot-path-copy",
    "layering",
    "mutable-sharing",
    "rng-flow",
    "seam-purity",
    "shard-ownership",
    "state-drift",
    "wire-drift",
    "wire-width",
]


def run_protolint(*args: str, cwd: Path = REPO_ROOT) -> subprocess.CompletedProcess[str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
        check=False,
    )


class TestRealTree:
    def test_strict_run_is_clean(self):
        result = run_protolint("--strict")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 error(s), 0 warning(s)" in result.stdout

    def test_json_output_is_valid_and_empty(self):
        result = run_protolint("--format", "json")
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["version"] == 1
        assert payload["findings"] == []
        assert payload["files"] > 40
        assert sorted(payload["passes"]) == ALL_PASS_IDS

    def test_two_runs_produce_byte_identical_json(self):
        # Regression for deterministic output ordering: findings are
        # sorted, pass lists are sorted, and nothing (hash seeds, dict
        # order, filesystem order) may leak into the report.
        first = run_protolint("--format", "json", "src/repro")
        second = run_protolint("--format", "json", "src/repro")
        assert first.returncode == second.returncode == 0
        assert first.stdout == second.stdout

    def test_fixture_runs_are_byte_identical_too(self):
        # Same property when findings are actually present.
        first = run_protolint("--format", "json", str(FIXTURES))
        second = run_protolint("--format", "json", str(FIXTURES))
        assert first.returncode == second.returncode == 1
        assert first.stdout == second.stdout


class TestFixtures:
    def test_fixtures_fail_with_nonzero_exit(self):
        result = run_protolint(str(FIXTURES))
        assert result.returncode == 1
        assert "error" in result.stdout

    def test_fixture_findings_cover_every_pass(self):
        result = run_protolint("--format", "json", str(FIXTURES))
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        reported = {finding["pass"] for finding in payload["findings"]}
        assert reported == set(ALL_PASS_IDS)

    def test_select_limits_passes(self):
        result = run_protolint("--format", "json", "--select", "export-drift", str(FIXTURES))
        payload = json.loads(result.stdout)
        assert {finding["pass"] for finding in payload["findings"]} == {"export-drift"}

    def test_disable_removes_pass(self):
        result = run_protolint(
            "--format", "json", "--disable", "export-drift", str(FIXTURES)
        )
        payload = json.loads(result.stdout)
        assert "export-drift" not in {f["pass"] for f in payload["findings"]}

    def test_unknown_pass_id_is_usage_error(self):
        result = run_protolint("--select", "no-such-pass")
        assert result.returncode == 2

    def test_baseline_accepts_known_findings(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        write = run_protolint(str(FIXTURES), "--baseline", str(baseline), "--write-baseline")
        assert write.returncode == 0, write.stdout + write.stderr
        rerun = run_protolint(str(FIXTURES), "--baseline", str(baseline))
        assert rerun.returncode == 0, rerun.stdout + rerun.stderr
        assert "baselined" in rerun.stdout


class TestBaselineFile:
    def test_shipped_baseline_is_empty(self):
        payload = json.loads((REPO_ROOT / "protolint.baseline.json").read_text())
        assert payload == {"version": 1, "findings": []}

    def test_unjustified_entry_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {"version": 1, "findings": [{"fingerprint": "abc123", "justification": ""}]}
            )
        )
        with pytest.raises(AnalysisError, match="justification"):
            load_baseline(path)

    def test_write_then_load_roundtrips(self, tmp_path):
        from repro.analysis.core import Finding

        finding = Finding(pass_id="wire-width", path="x.py", line=3, message="m", symbol="s")
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding])
        assert load_baseline(path) == {finding.fingerprint}


class TestListPasses:
    def test_lists_all_fifteen(self):
        result = run_protolint("--list-passes")
        assert result.returncode == 0
        for pass_id in ALL_PASS_IDS:
            assert pass_id in result.stdout


class TestGithubFormat:
    def test_real_tree_emits_no_annotations(self):
        result = run_protolint("--strict", "--format", "github")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "::error" not in result.stdout
        assert "protolint: 0 finding(s)" in result.stdout

    def test_fixtures_emit_annotations_and_exit_nonzero(self):
        result = run_protolint("--format", "github", str(FIXTURES))
        assert result.returncode == 1
        lines = [ln for ln in result.stdout.splitlines() if ln.startswith("::")]
        assert lines, result.stdout
        # Every annotation carries the file/line/title triple GitHub
        # needs to anchor it on the PR diff.
        for line in lines:
            assert line.startswith(("::error file=", "::warning file="))
            assert ",line=" in line
            assert "title=protolint[" in line

    def test_newlines_in_messages_are_escaped(self):
        from repro.analysis.cli import _render_github
        from repro.analysis.core import Finding

        finding = Finding(
            pass_id="wire-width",
            path="x.py",
            line=3,
            message="a 100% broken\nmulti-line message",
            symbol="s",
        )
        rendered = _render_github([finding])
        assert "a 100%25 broken%0Amulti-line message" in rendered
        assert "\nmulti-line" not in rendered

    def test_related_location_is_appended_to_annotations(self):
        result = run_protolint("--format", "github", "--select", "state-drift", str(FIXTURES))
        assert result.returncode == 1
        assert "(see src/repro/core/state_table.py:" in result.stdout


class TestSarifFormat:
    def test_real_tree_emits_valid_empty_sarif(self):
        result = run_protolint("--format", "sarif", "src/repro")
        assert result.returncode == 0, result.stdout + result.stderr
        log = json.loads(result.stdout)
        assert log["version"] == "2.1.0"
        [run] = log["runs"]
        assert run["tool"]["driver"]["name"] == "protolint"
        assert run["results"] == []
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert rule_ids == ALL_PASS_IDS

    def test_fixture_findings_carry_locations_and_fingerprints(self):
        result = run_protolint("--format", "sarif", str(FIXTURES))
        assert result.returncode == 1
        log = json.loads(result.stdout)
        [run] = log["runs"]
        assert run["results"]
        for item in run["results"]:
            assert item["ruleId"] in ALL_PASS_IDS
            [loc] = item["locations"]
            physical = loc["physicalLocation"]
            assert physical["artifactLocation"]["uri"].endswith(".py")
            assert physical["region"]["startLine"] >= 1
            assert item["partialFingerprints"]["protolint/v1"]

    def test_sarif_output_is_deterministic(self):
        first = run_protolint("--format", "sarif", str(FIXTURES))
        second = run_protolint("--format", "sarif", str(FIXTURES))
        assert first.stdout == second.stdout

    def test_state_drift_findings_carry_related_locations(self):
        # The "implemented twice" drift links the declaring table row.
        result = run_protolint("--format", "sarif", "--select", "state-drift", str(FIXTURES))
        assert result.returncode == 1
        log = json.loads(result.stdout)
        [run] = log["runs"]
        related = [item for item in run["results"] if "relatedLocations" in item]
        assert related, run["results"]
        for item in related:
            [loc] = item["relatedLocations"]
            physical = loc["physicalLocation"]
            assert physical["artifactLocation"]["uri"].endswith("state_table.py")
            assert physical["region"]["startLine"] > 1
            assert loc["message"]["text"] == "declared here"


class TestJobs:
    def test_parallel_run_is_byte_identical(self):
        serial = run_protolint("--format", "json", str(FIXTURES))
        parallel = run_protolint("--format", "json", "--jobs", "4", str(FIXTURES))
        assert serial.returncode == parallel.returncode == 1
        assert serial.stdout == parallel.stdout

    def test_parallel_real_tree_is_byte_identical(self):
        serial = run_protolint("--format", "json", "src/repro")
        parallel = run_protolint("--format", "json", "--jobs", "4", "src/repro")
        assert serial.returncode == parallel.returncode == 0
        assert serial.stdout == parallel.stdout

    def test_jobs_must_be_positive(self):
        result = run_protolint("--jobs", "0")
        assert result.returncode == 2


class TestStateTableSubcommand:
    def test_check_passes_on_committed_docs(self):
        result = run_protolint("state-table", "--check")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "up to date" in result.stdout

    def test_print_emits_generated_block(self):
        result = run_protolint("state-table")
        assert result.returncode == 0
        assert "<!-- state-table:begin -->" in result.stdout
        assert "stateDiagram-v2" in result.stdout


class TestConfigFile:
    def test_repo_config_covers_benchmarks_and_examples(self):
        config = json.loads((REPO_ROOT / "protolint.config.json").read_text())
        assert "src/repro" in config["paths"]
        assert "benchmarks" in config["paths"]
        assert "examples" in config["paths"]
        assert any(p.startswith("tests") for p in config["exclude"])

    def test_no_args_run_uses_config_and_is_clean(self):
        result = run_protolint("--strict", "--format", "json")
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        # src/repro alone is ~60 files; benchmarks+examples push it up.
        src_only = json.loads(
            run_protolint("--format", "json", "src/repro").stdout
        )
        assert payload["files"] > src_only["files"]

    def test_explicit_paths_ignore_exclusions(self):
        # The fixture tree sits under the excluded tests/ prefix but is
        # analyzed when named explicitly.
        result = run_protolint("--format", "json", str(FIXTURES))
        payload = json.loads(result.stdout)
        assert payload["files"] > 0

    def test_unknown_config_key_is_usage_error(self, tmp_path):
        bad = tmp_path / "protolint.config.json"
        bad.write_text(json.dumps({"path": ["src"]}))
        result = run_protolint("--config", str(bad))
        assert result.returncode == 2
        assert "unknown config key" in result.stderr


class TestCheckBaseline:
    def test_fresh_baseline_exits_zero(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        write = run_protolint(str(FIXTURES), "--baseline", str(baseline), "--write-baseline")
        assert write.returncode == 0, write.stdout + write.stderr
        check = run_protolint(str(FIXTURES), "--baseline", str(baseline), "--check-baseline")
        assert check.returncode == 0, check.stdout + check.stderr
        assert "baseline ok" in check.stdout

    def test_stale_baseline_exits_nonzero(self, tmp_path):
        # Baseline captured over the fixtures, then checked against the
        # clean real tree: every entry is stale.
        baseline = tmp_path / "baseline.json"
        write = run_protolint(str(FIXTURES), "--baseline", str(baseline), "--write-baseline")
        assert write.returncode == 0, write.stdout + write.stderr
        check = run_protolint("--baseline", str(baseline), "--check-baseline")
        assert check.returncode == 1
        assert "stale baseline entry" in check.stdout

    def test_shipped_empty_baseline_is_trivially_fresh(self):
        check = run_protolint("--check-baseline")
        assert check.returncode == 0, check.stdout + check.stderr
        assert "baseline ok" in check.stdout

    def test_entry_naming_deleted_pass_exits_nonzero(self, tmp_path):
        # The entry's fingerprint still fires (not stale), but its pass
        # was renamed away — the entry is orphaned and must be rejected.
        baseline = tmp_path / "baseline.json"
        write = run_protolint(str(FIXTURES), "--baseline", str(baseline), "--write-baseline")
        assert write.returncode == 0, write.stdout + write.stderr
        payload = json.loads(baseline.read_text())
        payload["findings"][0]["pass"] = "retired-pass"
        baseline.write_text(json.dumps(payload))
        check = run_protolint(str(FIXTURES), "--baseline", str(baseline), "--check-baseline")
        assert check.returncode == 1
        assert "unknown pass 'retired-pass'" in check.stdout
        assert "stale baseline entry" not in check.stdout
