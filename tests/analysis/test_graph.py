"""Tests for the whole-program import/call graph (repro.analysis.graph).

Synthetic mini-trees exercise alias resolution, call resolution and
reachability in isolation; the real-tree tests pin the structural
invariants the interprocedural passes rely on — in particular that the
project has no orphan modules (everything is reachable from some
importer, so the graph the passes traverse actually covers the tree).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.cli import collect_units
from repro.analysis.core import ModuleUnit
from repro.analysis.graph import ProjectGraph, package_of

REPO_SRC = Path(__file__).parents[2] / "src" / "repro"


def build(tmp_path: Path, files: dict[str, str]) -> ProjectGraph:
    units = []
    for rel, source in files.items():
        path = tmp_path / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        units.append(ModuleUnit.from_path(path))
    return ProjectGraph(units)


MINI_TREE = {
    "core/util.py": (
        '__all__ = ["helper"]\n'
        "def helper():\n"
        "    return 1\n"
    ),
    "host/user.py": (
        "from repro.core.util import helper as h\n"
        '__all__ = ["use"]\n'
        "def use():\n"
        "    return h()\n"
        "def lonely():\n"
        "    return 2\n"
    ),
    "transport/box.py": (
        '__all__ = ["Box"]\n'
        "class Box:\n"
        "    def outer(self):\n"
        "        return self.inner()\n"
        "    def inner(self):\n"
        "        return 0\n"
    ),
}


class TestPackageOf:
    def test_repro_modules(self):
        assert package_of("repro.netsim.link") == "netsim"
        assert package_of("repro.core") == "core"
        assert package_of("repro") == ""

    def test_foreign_module(self):
        assert package_of("os.path") == "os"


class TestImportGraph:
    def test_explicit_edge_with_line(self, tmp_path):
        graph = build(tmp_path, MINI_TREE)
        explicit = [e for e in graph.import_edges if not e.implicit]
        assert any(
            e.importer == "repro.host.user"
            and e.target == "repro.core.util"
            and e.line == 1
            for e in explicit
        )

    def test_implicit_parent_package_edges(self, tmp_path):
        graph = build(tmp_path, MINI_TREE)
        implicit = {
            (e.importer, e.target) for e in graph.import_edges if e.implicit
        }
        # `from repro.core.util import ...` implicitly imports the
        # parents repro and repro.core too.
        assert ("repro.host.user", "repro.core") in implicit
        assert ("repro.host.user", "repro") in implicit

    def test_imports_of_and_importers_of(self, tmp_path):
        graph = build(tmp_path, MINI_TREE)
        assert "repro.core.util" in graph.imports_of("repro.host.user")
        assert graph.importers_of("repro.core.util") == {"repro.host.user"}


class TestResolution:
    def test_resolve_name_through_alias(self, tmp_path):
        graph = build(tmp_path, MINI_TREE)
        assert graph.resolve_name("repro.host.user", "h") == "repro.core.util.helper"

    def test_local_def_wins_over_alias(self, tmp_path):
        graph = build(tmp_path, MINI_TREE)
        assert graph.resolve_name("repro.host.user", "use") == "repro.host.user.use"

    def test_resolve_call_pins_aliased_target(self, tmp_path):
        graph = build(tmp_path, MINI_TREE)
        info = graph.functions["repro.host.user.use"]
        [call] = list(graph.calls_in(info))
        candidates, exact = graph.resolve_call(info, call)
        assert candidates == {"repro.core.util.helper"}
        assert exact is True

    def test_resolve_call_self_method(self, tmp_path):
        graph = build(tmp_path, MINI_TREE)
        info = graph.functions["repro.transport.box.Box.outer"]
        [call] = list(graph.calls_in(info))
        candidates, exact = graph.resolve_call(info, call)
        assert candidates == {"repro.transport.box.Box.inner"}
        assert exact is True


class TestReachability:
    def test_reaches_across_modules(self, tmp_path):
        graph = build(tmp_path, MINI_TREE)
        reached = graph.reachable(["repro.host.user.use"])
        assert reached == {"repro.host.user.use", "repro.core.util.helper"}

    def test_module_filter_restricts_traversal(self, tmp_path):
        graph = build(tmp_path, MINI_TREE)
        reached = graph.reachable(
            ["repro.host.user.use"], module_filter=frozenset({"repro.host.user"})
        )
        assert reached == {"repro.host.user.use"}

    def test_skip_drops_function(self, tmp_path):
        graph = build(tmp_path, MINI_TREE)
        reached = graph.reachable(
            ["repro.host.user.use"], skip=frozenset({"repro.core.util.helper"})
        )
        assert reached == {"repro.host.user.use"}


class TestSyntheticOrphans:
    def test_unimported_module_is_an_orphan(self, tmp_path):
        graph = build(tmp_path, MINI_TREE)
        orphans = graph.orphan_modules()
        # Nothing imports host.user or transport.box in the mini tree.
        assert "repro.host.user" in orphans
        assert "repro.core.util" not in orphans


@pytest.fixture(scope="module")
def real_graph() -> ProjectGraph:
    return ProjectGraph(collect_units([REPO_SRC]))


class TestRealTree:
    def test_no_orphan_modules(self, real_graph):
        # Every non-structural module must be imported by some other
        # analyzed module; an orphan is dead code the passes would
        # silently skip over.
        assert real_graph.orphan_modules() == []

    def test_covers_the_whole_tree(self, real_graph):
        assert len(real_graph.units) > 80
        assert len(real_graph.functions) > 400
        assert len(real_graph.import_edges) > 500

    def test_resolves_a_known_alias(self, real_graph):
        # transport/receiver.py does `from repro.netsim.events import
        # EventLoop` (or equivalent); spot-check one stable alias.
        assert (
            real_graph.resolve_name("repro.analysis.cli", "all_passes")
            == "repro.analysis.passes.all_passes"
        )


class TestRelativeImports:
    """`from . import x` / `from .. import y` resolution (ISSUE 6)."""

    TREE = {
        "netsim/__init__.py": (
            "from . import events\n"
            "from .link import Link\n"
            "__all__ = []\n"
        ),
        "netsim/events.py": (
            '__all__ = ["Event"]\n'
            "class Event:\n"
            "    pass\n"
        ),
        "netsim/link.py": (
            "from .events import Event\n"
            "from ..core.util import helper\n"
            '__all__ = ["Link"]\n'
            "class Link:\n"
            "    pass\n"
        ),
        "core/util.py": (
            '__all__ = ["helper"]\n'
            "def helper():\n"
            "    return 1\n"
        ),
    }

    def test_package_init_from_dot_import_resolves_to_own_package(self, tmp_path):
        graph = build(tmp_path, self.TREE)
        # `from . import events` inside repro/netsim/__init__.py names
        # repro.netsim (the package itself), binding repro.netsim.events.
        assert "repro.netsim.events" in graph.imports_of("repro.netsim")
        assert graph.resolve_name("repro.netsim", "events") == "repro.netsim.events"

    def test_package_init_relative_symbol_import(self, tmp_path):
        graph = build(tmp_path, self.TREE)
        assert graph.resolve_name("repro.netsim", "Link") == "repro.netsim.link.Link"

    def test_plain_module_single_dot(self, tmp_path):
        graph = build(tmp_path, self.TREE)
        assert graph.resolve_name("repro.netsim.link", "Event") == (
            "repro.netsim.events.Event"
        )

    def test_plain_module_double_dot(self, tmp_path):
        graph = build(tmp_path, self.TREE)
        assert graph.resolve_name("repro.netsim.link", "helper") == (
            "repro.core.util.helper"
        )
        assert "repro.core.util" in graph.imports_of("repro.netsim.link")

    def test_overreaching_level_drops_edge_without_crash(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "solo.py": "from ....nowhere import thing\n__all__ = []\n",
            },
        )
        # The bogus edge is dropped, not invented; the unit still loads.
        assert "repro.solo" in graph.units
        assert all(
            e.importer != "repro.solo" or "nowhere" not in e.target
            for e in graph.import_edges
        )


class TestImportCycles:
    CYCLE = {
        "host/alpha.py": (
            "from repro.host.beta import b\n"
            '__all__ = ["a"]\n'
            "def a():\n"
            "    return b()\n"
        ),
        "host/beta.py": (
            "from repro.host.alpha import a\n"
            '__all__ = ["b"]\n'
            "def b():\n"
            "    return a()\n"
        ),
    }

    def test_cycle_keeps_both_edges(self, tmp_path):
        graph = build(tmp_path, self.CYCLE)
        assert "repro.host.beta" in graph.imports_of("repro.host.alpha")
        assert "repro.host.alpha" in graph.imports_of("repro.host.beta")

    def test_reachability_terminates_across_the_cycle(self, tmp_path):
        graph = build(tmp_path, self.CYCLE)
        reached = graph.reachable(["repro.host.alpha.a"])
        assert reached == {"repro.host.alpha.a", "repro.host.beta.b"}
