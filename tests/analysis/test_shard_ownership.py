"""True-positive / near-miss tests for the shard-ownership pass.

The fixture plants cross-domain mutations a per-connection object makes
into per-endpoint and global-pool state — directly, via a mutator call,
and laundered through module helpers — plus an unowned module-level
mutable and an unplaced class.  Narrower-domain and same-domain
mutations must stay clean, and the real tree must be clean (all its
cross-domain writes go through the declared seams).
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.core import Finding, ModuleUnit, run_passes
from repro.analysis.passes.shard_ownership import DOMAIN_RANK, ShardOwnershipPass

FIXTURES = Path(__file__).parent / "fixtures" / "src" / "repro"
REPO_SRC = Path(__file__).parents[2] / "src" / "repro"
FIXTURE = FIXTURES / "transport" / "bad_shard.py"
POOL_FIXTURE = FIXTURES / "transport" / "bad_shard_pool.py"


def findings_for(*paths: Path) -> list[Finding]:
    units = [ModuleUnit.from_path(p) for p in paths]
    return run_passes(units, [ShardOwnershipPass()])


def symbols(findings: list[Finding]) -> set[str]:
    return {f.symbol for f in findings}


class TestDomainLattice:
    def test_rank_orders_the_four_domains(self):
        assert DOMAIN_RANK["per-connection"] < DOMAIN_RANK["per-shard"]
        assert DOMAIN_RANK["per-shard"] < DOMAIN_RANK["per-endpoint"]
        assert DOMAIN_RANK["per-endpoint"] < DOMAIN_RANK["global-pool"]


class TestFixtureTruePositives:
    def test_expected_findings_fire(self):
        got = symbols(findings_for(FIXTURE))
        assert got == {
            "unowned-module-mutable:_LEAKY",
            "cross-domain-store:FixtureSession.hijack_store:43",
            "cross-domain-call:FixtureSession.hijack_call:46",
            "laundered-mutation:FixtureSession.launder:_reset_table",
            "laundered-mutation:FixtureSession.launder_forwarded:_forward_reset",
            "unplaced-class:FixtureStray",
        }

    def test_direct_store_names_both_domains(self):
        [finding] = [
            f for f in findings_for(FIXTURE) if "hijack_store" in f.symbol
        ]
        assert "(per-connection)" in finding.message
        assert "(global-pool)" in finding.message
        assert "outside every declared seam" in finding.message

    def test_laundering_is_traced_through_forwarding_helper(self):
        # _forward_reset never touches the table itself; it forwards to
        # _reset_table, which does.  The fixpoint must see through it.
        forwarded = [
            f for f in findings_for(FIXTURE) if "launder_forwarded" in f.symbol
        ]
        assert len(forwarded) == 1
        assert "_forward_reset" in forwarded[0].message


class TestPoolFixture:
    """A per-shard worker crossing into the composition and the pool.

    Shard-vs-shard mutation is same-rank, so the lattice models "shard
    A mutates shard B's table" as the worker reaching through the
    per-endpoint composition that holds every shard's state — which is
    the only way the mutation can be written anyway.
    """

    def test_expected_findings_fire(self):
        got = symbols(findings_for(POOL_FIXTURE))
        assert got == {
            "cross-domain-store:FixtureShardWorker.hijack_store:60",
            "cross-domain-call:FixtureShardWorker.hijack_call:63",
            "cross-domain-store:FixtureShardWorker.hijack_pool_store:66",
            "laundered-mutation:FixtureShardWorker.launder_pool:_drain_ledger",
        }

    def test_store_names_shard_and_endpoint_domains(self):
        [finding] = [
            f for f in findings_for(POOL_FIXTURE) if "hijack_store" in f.symbol
        ]
        assert "(per-shard)" in finding.message
        assert "(per-endpoint)" in finding.message

    def test_lend_seam_is_sanctioned(self):
        # The pool's lend/reclaim seam is the declared crossing: a
        # per-shard budget borrowing blocks must stay clean even though
        # `lend` is a tracked mutator on global-pool state.
        for finding in findings_for(POOL_FIXTURE):
            assert "borrow_is_fine" not in finding.symbol

    def test_own_and_narrower_mutations_stay_clean(self):
        for finding in findings_for(POOL_FIXTURE):
            assert "own_table_is_fine" not in finding.symbol
            assert "repack_is_fine" not in finding.symbol


class TestNearMisses:
    def test_clean_idioms_stay_silent(self):
        for finding in findings_for(FIXTURE):
            assert "own_state_is_fine" not in finding.symbol
            assert "narrower_is_fine" not in finding.symbol
        # The owner-commented module mutable is accepted.
        assert "unowned-module-mutable:_POOL" not in symbols(findings_for(FIXTURE))


class TestRealTree:
    def test_real_tree_is_clean(self):
        units = [ModuleUnit.from_path(p) for p in sorted(REPO_SRC.rglob("*.py"))]
        assert run_passes(units, [ShardOwnershipPass()]) == []

    def test_seams_are_the_only_declared_crossings(self):
        # The declared seams are exactly the shared-accounting surface:
        # the placement budget, the global pool's lend/reclaim, the
        # egress queue, the event loop.
        from repro.analysis.passes.shard_ownership import SEAM_METHODS

        owners = {cls for cls, _ in SEAM_METHODS}
        assert owners == {
            "SharedPlacementBudget",
            "GlobalBudgetPool",
            "ChunkEndpoint",
            "EventLoop",
        }
