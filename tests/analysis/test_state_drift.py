"""True-positive / near-miss tests for the state-drift pass.

The fixture plants the ISSUE 9 acceptance drift — an undeclared
resurrection of a tombstoned C.ID — plus a transition implemented at a
second undeclared site, a marker naming a phantom transition, and a
declared-looking mutation in dead code.  The real tree must be clean,
and findings must link back to the declaring table row.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.core import Finding, ModuleUnit, run_passes
from repro.analysis.passes.state_drift import StateDriftPass
from repro.core.state_table import (
    CLOSED,
    ESTABLISHED,
    STATES,
    StateTable,
    Transition,
)

FIXTURES = Path(__file__).parent / "fixtures" / "src" / "repro"
REPO_SRC = Path(__file__).parents[2] / "src" / "repro"
FIXTURE = FIXTURES / "transport" / "bad_state_drift.py"


def findings_for(*paths: Path, pass_obj: StateDriftPass | None = None) -> list[Finding]:
    units = [ModuleUnit.from_path(p) for p in paths]
    return run_passes(units, [pass_obj or StateDriftPass()])


def symbols(findings: list[Finding]) -> set[str]:
    return {f.symbol for f in findings}


class TestFixtureTruePositives:
    def test_expected_findings_fire(self):
        got = symbols(findings_for(FIXTURE))
        assert got == {
            "undeclared-mutation:FixtureEndpoint.resurrect:26",
            "undeclared-site:establish:FixtureEndpoint.establish_again",
            "unknown-transition:warp-speed-close",
            "undeclared-site:close:FixtureEndpoint.dead_close",
            "dead-site:FixtureEndpoint.dead_close:42",
        }

    def test_undeclared_resurrection_is_caught(self):
        # ISSUE 9 acceptance, static half: the EVICTED->ESTABLISHED
        # revival with no marker is an undeclared mutation.
        [finding] = [
            f for f in findings_for(FIXTURE) if "resurrect" in f.symbol
        ]
        assert "no `# state-table:` marker" in finding.message
        assert finding.severity == "error"

    def test_second_site_links_the_table_row(self):
        # "Transition implemented twice": the finding carries both the
        # code site (path/line) and the declaring table row.
        [finding] = [
            f for f in findings_for(FIXTURE) if "establish_again" in f.symbol
        ]
        assert finding.related_path.endswith("src/repro/core/state_table.py")
        assert finding.related_line > 1
        declared = Path(finding.related_path).read_text(encoding="utf-8").splitlines()
        assert '"establish"' in declared[finding.related_line - 1]
        assert f"(see {finding.related_path}:{finding.related_line})" in finding.render()

    def test_dead_code_site_is_flagged_via_cfg(self):
        dead = [f for f in findings_for(FIXTURE) if f.symbol.startswith("dead-site:")]
        assert len(dead) == 1
        assert "unreachable state mutation" in dead[0].message


class TestNearMisses:
    def test_non_lifecycle_store_and_read_stay_clean(self):
        for finding in findings_for(FIXTURE):
            assert "relabel_is_fine" not in finding.symbol
            assert "read_is_fine" not in finding.symbol


class TestDeclaredCoverage:
    def test_unimplemented_transition_fires_for_markerless_site(self, tmp_path):
        table = StateTable(
            states=STATES,
            initial=CLOSED,
            transitions=(
                Transition(
                    "t-open",
                    CLOSED,
                    "local-open",
                    ESTABLISHED,
                    sites=("repro.transport.tiny.Endpoint.open",),
                ),
                Transition(
                    "t-sweep",
                    ESTABLISHED,
                    "sweep",
                    CLOSED,
                    sites=("repro.transport.tiny.Endpoint.open",),
                ),
            ),
        )
        path = tmp_path / "repro" / "transport" / "tiny.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "__all__ = []\n\n\n"
            "class Endpoint:\n"
            "    def open(self, connection):\n"
            "        connection.state = 'ESTABLISHED'  # state-table: t-open\n",
            encoding="utf-8",
        )
        got = symbols(findings_for(path, pass_obj=StateDriftPass(table)))
        assert got == {"unimplemented:t-sweep:Endpoint.open"}

    def test_missing_site_fires_when_function_does_not_exist(self, tmp_path):
        table = StateTable(
            states=STATES,
            initial=CLOSED,
            transitions=(
                Transition(
                    "t-open",
                    CLOSED,
                    "local-open",
                    ESTABLISHED,
                    sites=("repro.transport.tiny.Endpoint.vanished",),
                ),
            ),
        )
        path = tmp_path / "repro" / "transport" / "tiny.py"
        path.parent.mkdir(parents=True)
        path.write_text("__all__ = []\n", encoding="utf-8")
        got = symbols(findings_for(path, pass_obj=StateDriftPass(table)))
        assert got == {"missing-site:t-open:Endpoint.vanished"}

    def test_marker_outside_any_function_is_unanchored(self, tmp_path):
        path = tmp_path / "repro" / "transport" / "tiny.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "__all__ = []\n# state-table: establish\n", encoding="utf-8"
        )
        got = symbols(findings_for(path))
        assert got == {"marker-unanchored:establish"}


class TestRealTree:
    def test_real_tree_is_clean(self):
        units = [ModuleUnit.from_path(p) for p in sorted(REPO_SRC.rglob("*.py"))]
        assert run_passes(units, [StateDriftPass()]) == []

    def test_every_declared_site_is_marked_in_source(self):
        # Belt and braces over the pass: each declared site's module
        # actually contains a marker naming the transition.
        from repro.core.state_table import STATE_TABLE

        for transition in STATE_TABLE.transitions:
            for site in transition.sites:
                module = site.rsplit(".", 2)[0]
                rel = Path(*module.split(".")[1:]).with_suffix(".py")
                source = (REPO_SRC / rel).read_text(encoding="utf-8")
                assert transition.transition_id in source, site
