"""Fixture: budget-leak true positives and near misses."""

__all__ = ["leak_on_exception", "discard_token", "double_release", "ok_finally", "ok_with"]


def leak_on_exception(budget, payload):
    # TP: risky() can raise after the acquire; on that edge the lease
    # never reaches release() and the reservation is lost.
    lease = budget.acquire("conn-7", len(payload))
    risky(payload)
    lease.release()


def discard_token(budget):
    budget.acquire("conn-8", 64)  # TP: token dropped on the floor


def double_release(budget):
    lease = budget.acquire("conn-9", 32)
    lease.release()
    lease.release()  # TP: ValueError at runtime


def ok_finally(budget, payload):
    # Near miss: the finally edge covers the exceptional path too.
    lease = budget.acquire("conn-10", len(payload))
    try:
        risky(payload)
    finally:
        lease.release()


def ok_with(budget, payload):
    # Near miss: the context manager owns the release.
    with budget.acquire("conn-11", len(payload)):
        risky(payload)


def risky(payload):
    if not payload:
        raise ValueError("empty")
