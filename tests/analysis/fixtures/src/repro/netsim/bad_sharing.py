"""Fixture: scheduled callbacks mutating module-level shared state."""

__all__ = ["schedule_leak", "schedule_count", "schedule_ok"]

SHARED_LOG: list = []
EVENTS = 0


def schedule_leak(loop, frame):
    # TP: the lambda closes over and mutates a module-level list.
    loop.schedule(0.1, lambda: SHARED_LOG.append(frame))


def schedule_count(loop):
    def bump():
        global EVENTS
        EVENTS += 1  # TP: rebinding a module global from a callback

    loop.schedule(0.2, bump)


def schedule_ok(loop, sink):
    state = {"n": 0}

    def tick():
        state["n"] += 1  # near-miss: per-call closure state, not shared
        sink.frames.append(state["n"])  # near-miss: the caller's own object

    loop.schedule(0.3, tick)
