"""determinism fixture: nondeterminism inside a netsim-scoped module."""

import os
import random
import time

__all__ = ["jittered_delay", "random_token"]


def jittered_delay(base):
    return base + random.random() * time.time()


def random_token():
    return os.urandom(8) + str(random.Random().randint(0, 9)).encode()
