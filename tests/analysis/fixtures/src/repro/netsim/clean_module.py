"""Negative control: a netsim-scoped module every pass accepts.

Wire struct matches its documented width, encode/decode pair up,
randomness routes through repro.netsim.rng, raises use the canonical
vocabulary, and the export list is exact.
"""

import struct

from repro.core.errors import CodecError
from repro.core.types import WORD_BYTES
from repro.netsim.rng import substream

__all__ = ["encode_word", "decode_word", "jitter"]

_WORD = struct.Struct(">I")
assert _WORD.size == WORD_BYTES


def encode_word(value: int) -> bytes:
    return _WORD.pack(value & 0xFFFFFFFF)


def decode_word(data: bytes) -> int:
    if len(data) != WORD_BYTES:
        raise CodecError(f"need exactly {WORD_BYTES} bytes, got {len(data)}")
    return _WORD.unpack(data[:4])[0]


def jitter(seed: int, base: float) -> float:
    return base * (1.0 + substream(seed, "jitter").random())
