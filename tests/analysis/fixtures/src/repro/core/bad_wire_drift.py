"""Fixture: wire-drift true positives and near misses."""

import struct

__all__ = ["parse_header", "parse_signaling"]

# TP: marked as the chunk header but three fields short of the table.
_DRIFTED_HEADER = struct.Struct(">BBH")  # wire-table: chunk-header

# TP: marker names a table that does not exist.
_PHANTOM = struct.Struct(">I")  # wire-table: no-such-table

# Near miss: marker and format agree with the generated table.
_SIGNALING = struct.Struct(">IHHHBB")  # wire-table: signaling-payload


def parse_header(data):
    return _DRIFTED_HEADER.unpack_from(data)


def parse_signaling(data):
    return _SIGNALING.unpack_from(data)
