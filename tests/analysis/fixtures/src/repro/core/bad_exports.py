"""export-drift fixture: phantom exports and unexported public defs."""

__all__ = ["real_function", "ghost_function"]


def real_function():
    return 1


def stowaway_function():
    """Public but missing from __all__."""
    return 2
