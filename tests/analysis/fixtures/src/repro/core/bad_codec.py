"""codec-symmetry fixture: encoders and decoders without twins."""

__all__ = ["encode_record", "decode_trailer"]


def encode_record(record):
    """Has no decode_record anywhere in the module."""
    return bytes(record)


def decode_trailer(data):
    """Has no encode_trailer anywhere in the module."""
    return list(data)
