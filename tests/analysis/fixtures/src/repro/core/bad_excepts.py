"""exception-discipline fixture: ad-hoc errors and blanket catches."""

__all__ = ["LocalProtocolError", "risky", "swallow", "swallow_everything"]


class LocalProtocolError(Exception):
    """Defined outside repro.core.errors."""


def risky(flag):
    if flag:
        raise RuntimeError("ad-hoc exception type")
    raise LocalProtocolError("also ad-hoc")


def swallow(thunk):
    try:
        return thunk()
    except Exception:
        return None


def swallow_everything(thunk):
    try:
        return thunk()
    except:  # noqa: E722
        return None
