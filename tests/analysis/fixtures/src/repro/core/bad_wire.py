"""wire-width fixture: struct formats that disagree with the wire docs."""

import struct

from repro.core.types import HEADER_BYTES, PACKET_HEADER_BYTES

__all__ = ["decode_header", "encode_header", "read_trailer"]

# 38 bytes, but checked against the 44-byte documented header width.
_HEADER = struct.Struct(">BBHIIQIQIH")
assert _HEADER.size == HEADER_BYTES

# Native byte order in a wire format.
_ENVELOPE = struct.Struct("HBB")
assert _ENVELOPE.size == PACKET_HEADER_BYTES


def encode_header(values):
    return _HEADER.pack(*values)


def decode_header(data):
    return _HEADER.unpack(data[:HEADER_BYTES])


def read_trailer(blob):
    # ">HHI" is 8 bytes; the slice only provides 6.
    return struct.unpack(">HHI", blob[-6:])
