"""Fixture: a core module peeking upward across the architecture DAG."""

from repro.core.chunk import Chunk  # near-miss: same package, allowed
from repro.obs import counter  # near-miss: meta layer, importable anywhere
from repro.transport.receiver import ChunkTransportReceiver  # TP: upward import

__all__ = ["peek"]

_COUNTER = counter("core", "fixture.peeks", "fixture counter")


def peek(chunk: Chunk) -> ChunkTransportReceiver:
    _COUNTER.inc()
    receiver = ChunkTransportReceiver()
    receiver.receive_chunk(chunk)
    return receiver
