"""Fixture: cross-domain mutations the shard-ownership pass must flag.

True positives: a per-connection session storing into global-pool
state, a mutator call on per-endpoint state, the same mutation
laundered through a module helper (directly and via a forwarding
helper), a module-level mutable with no declared owner, and a class
with no owner placement.

Near-misses that must stay clean: a per-endpoint class mutating
*narrower* per-connection state, same-domain mutation, and a
module-level mutable that declares its owner.
"""

_POOL: dict = {}  # owner: global-pool
_LEAKY: list = []


def _reset_table(table):
    table.registry.clear()


def _forward_reset(table, tag):
    _reset_table(table)


class FixtureBudget:  # owner: global-pool
    def __init__(self) -> None:
        self.tokens = 4


class FixtureTable:  # owner: per-endpoint
    def __init__(self) -> None:
        self.registry: dict = {}


class FixtureSession:  # owner: per-connection
    def __init__(self, table: "FixtureTable", budget: "FixtureBudget") -> None:
        self.table = table
        self.budget = budget
        self.placed = 0

    def hijack_store(self) -> None:
        self.budget.tokens = 0

    def hijack_call(self, key: int) -> None:
        self.table.clear()

    def launder(self) -> None:
        _reset_table(self.table)

    def launder_forwarded(self) -> None:
        _forward_reset(self.table, "retry")

    def own_state_is_fine(self) -> None:
        self.placed += 1


class FixtureEndpointView:  # owner: per-endpoint
    def __init__(self, session: "FixtureSession") -> None:
        self.session = session

    def narrower_is_fine(self) -> None:
        self.session.placed = 0


class FixtureStray:
    def __init__(self) -> None:
        self.cache: dict = {}
