"""Fixture: lifecycle mutations that drift from the declared table.

True positives: an undeclared EVICTED→ESTABLISHED resurrection (a
state mutation with no marker), a transition implemented at a second,
undeclared site, a marker naming a transition the table never
declared, and a declared-looking mutation sitting in dead code.

Near-misses that must stay clean: a store to a non-lifecycle
attribute, and a helper that only reads connection state.
"""


class FixtureConnection:  # owner: per-connection
    state = "EVICTED-idle"

    def __init__(self) -> None:
        self.label = ""


class FixtureEndpoint:  # owner: per-endpoint
    def __init__(self) -> None:
        self.table = None

    def resurrect(self, connection):
        # TP: undeclared EVICTED -> ESTABLISHED resurrection, no marker.
        connection.state = "ESTABLISHED"

    def establish_again(self, connection):
        # TP: `establish` is already implemented at its declared sites;
        # this second site is not one of them.
        self.table.add(connection)  # state-table: establish

    def phantom_transition(self, connection):
        # TP: the marker names a transition the table never declared.
        connection.state = "CLOSED"  # state-table: warp-speed-close

    def dead_close(self, connection):
        # TP: the marked mutation is unreachable (dead transition site).
        if connection is None:
            return None
        return connection
        self.table.mark_closed(connection, 0.0)  # state-table: close

    def relabel_is_fine(self, connection):
        # Near miss: not a lifecycle attribute.
        connection.label = "bulk"

    def read_is_fine(self, connection):
        # Near miss: reading state never drifts.
        return connection.state
