"""Fixture: seam-purity true positives and near misses."""

import time

__all__ = ["stamp_arrival", "helper_reaches_clock", "_ambient_clock_helper", "ok_measures_cost"]


def stamp_arrival(chunk):
    # TP: wall clock directly inside a transport entry point.
    return (chunk, time.time())


def helper_reaches_clock(chunk):
    # TP (interprocedural): the entry point is clean but a helper it
    # calls touches the ambient clock.
    return _ambient_clock_helper(chunk)


def _ambient_clock_helper(chunk):
    deadline = time.monotonic() + 1.0  # flagged: reachable from transport
    return (chunk, deadline)


def ok_measures_cost(chunk):
    # Near miss: perf_counter is measurement, not protocol behaviour.
    start = time.perf_counter()
    work = len(repr(chunk))
    return work, time.perf_counter() - start
