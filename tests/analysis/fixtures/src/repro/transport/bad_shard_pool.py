"""Fixture: a worker shard reaching outside its per-shard domain.

The domain lattice cannot rank one shard against another (both are
``per-shard``), so "shard A mutates shard B's table" is modelled the
way it must actually happen in code: the worker reaches *through the
per-endpoint composition* that holds every shard's state.  True
positives: a per-shard worker storing into the composition's state, a
mutator call on the composition's shard registry, a direct store into
global-pool accounting, and a pool-ledger mutation laundered through a
module helper.  Near-misses that must stay clean: the worker mutating
its *own* table (same domain), borrowing through the declared
``GlobalBudgetPool.lend`` seam, and the composition mutating a
narrower per-shard worker.
"""


class GlobalBudgetPool:  # owner: global-pool
    def __init__(self) -> None:
        self.lent_total = 0
        self.ledger: dict = {}

    def lend(self, shard: int, nbytes: int) -> int:
        self.lent_total += nbytes
        return nbytes


def _drain_ledger(pool):
    pool.ledger.clear()


class FixtureShardTable:  # owner: per-shard
    def __init__(self) -> None:
        self.entries: dict = {}


class FixtureShardSet:  # owner: per-endpoint
    def __init__(self, tables: list) -> None:
        self.tables = tables
        self.generation = 0

    def repack_is_fine(self, worker: "FixtureShardWorker") -> None:
        worker.backlog = 0


class FixtureShardWorker:  # owner: per-shard
    def __init__(
        self,
        index: int,
        table: FixtureShardTable,
        view: FixtureShardSet,
        pool: GlobalBudgetPool,
    ) -> None:
        self.index = index
        self.table = table
        self.view = view
        self.pool = pool
        self.backlog = 0

    def hijack_store(self) -> None:
        self.view.generation = -1

    def hijack_call(self, sibling: int) -> None:
        self.view.pop(sibling)

    def hijack_pool_store(self) -> None:
        self.pool.lent_total = 0

    def launder_pool(self) -> None:
        _drain_ledger(self.pool)

    def own_table_is_fine(self) -> None:
        self.table.entries.clear()

    def borrow_is_fine(self, nbytes: int) -> int:
        return self.pool.lend(self.index, nbytes)
