"""Fixture: payload copies on the receive path (touch-once violations)."""

__all__ = ["FixtureReceiver"]


class FixtureReceiver:  # owner: per-connection
    def receive_chunk(self, chunk):
        header = memoryview(chunk.payload)[0:44]  # near-miss: zero-copy view
        head = chunk.payload[:44]  # TP: slicing payload copies it
        tail = bytes(chunk.payload)  # TP: bytes() copies payload
        return self._stitch(head, tail), header

    def _stitch(self, data, frame):
        return data + frame  # TP: concat copy in a helper the entry reaches

    def cold_accessor(self, chunk):
        # near-miss: identical slice, but not reachable from any receive
        # entry point, so it is outside the touch-once budget.
        return chunk.payload[:44]
