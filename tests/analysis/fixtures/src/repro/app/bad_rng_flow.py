"""Fixture: an unseeded Random laundered through helpers into netsim."""

import random

from repro.netsim.link import Link
from repro.netsim.rng import substream

__all__ = ["attach", "attach_seeded", "attach_direct_seed", "make_rng"]


def _fresh():
    return random.Random()  # unseeded origin (hop 1)


def make_rng():
    return _fresh()  # hop 2: still tainted on all return paths


def attach(loop, deliver):
    # TP: the unseeded stream reaches a netsim callable three hops from
    # its construction site.
    return Link(loop, deliver, rng=make_rng())


def attach_seeded(loop, deliver):
    # near-miss: a named substream is the blessed injection.
    return Link(loop, deliver, rng=substream(7, "fixture"))


def attach_direct_seed(loop, deliver):
    # near-miss: explicitly seeded instances are reproducible.
    return Link(loop, deliver, rng=random.Random(42))
