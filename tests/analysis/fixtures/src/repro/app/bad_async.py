"""Fixture: async-discipline true positives and near misses."""

import asyncio
import time

__all__ = [
    "pump_frames",
    "drain_blocking",
    "fire_and_forget",
    "ok_awaited",
    "ok_task_wrapped",
]


async def pump_frames(frames):
    out = []
    for frame in frames:
        out.append(drain_blocking(frame))
    return out


def drain_blocking(frame):
    time.sleep(0.01)  # TP: blocks the loop for every connection
    return frame


def fire_and_forget(frames):
    pump_frames(frames)  # TP: coroutine object created and dropped
    return len(frames)


async def ok_awaited(frames):
    return await pump_frames(frames)  # near miss: properly awaited


def ok_task_wrapped(loop, frames):
    # Near miss: handing the coroutine to a task runner is ownership
    # transfer, not a drop.
    return asyncio.ensure_future(pump_frames(frames), loop=loop)
