"""The lifecycle model checker: exhaustive exploration, fault injection,
counterexample traces, and the Perfetto round-trip.

ISSUE 9 acceptance, dynamic half: the declared FSM has zero violations
over the bounded interleaving space, while injecting the undeclared
resurrection of a tombstoned C.ID produces a counterexample trace that
renders through :mod:`repro.obs.perfetto`.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.modelcheck import (
    ConvState,
    GlobalState,
    ModelConfig,
    apply_step,
    check_invariants,
    counterexample_records,
    enabled,
    explore,
    initial_state,
    injected_resurrection,
    main,
    with_transition,
    write_counterexample,
)
from repro.core.state_table import STATE_TABLE
from repro.obs.perfetto import journeys_to_trace


class TestCleanExploration:
    def test_declared_fsm_has_no_violations(self):
        result = explore()
        assert result.ok, result.violations
        assert result.states_explored > 100
        assert result.edges > result.states_explored

    def test_every_declared_transition_is_covered(self):
        # Exhaustiveness: the default bounds reach all 18 transitions,
        # including the tombstone-overflow cascade (forget-*).
        result = explore()
        assert result.uncovered(STATE_TABLE) == []
        assert set(result.fired) == set(STATE_TABLE.by_id)

    def test_exploration_is_deterministic(self):
        first = explore()
        second = explore()
        assert first.states_explored == second.states_explored
        assert first.edges == second.edges
        assert first.fired == second.fired

    def test_larger_bounds_still_hold(self):
        config = ModelConfig(
            conversations=2, pool_tokens=2, placement_cap=2, tombstone_capacity=2
        )
        result = explore(config=config)
        assert result.ok, result.violations

    def test_bad_config_is_rejected(self):
        with pytest.raises(ValueError, match="conversations"):
            ModelConfig(conversations=0)
        with pytest.raises(ValueError, match="tombstone_capacity"):
            ModelConfig(tombstone_capacity=0)


class TestSemantics:
    def test_initial_state_is_all_closed(self):
        config = ModelConfig(conversations=3, pool_tokens=2)
        state = initial_state(config)
        assert state.tokens == 2
        assert all(conv == ConvState() for conv in state.convs)
        assert state.tombstones == ()

    def test_establish_acquires_the_token(self):
        config = ModelConfig()
        state = initial_state(config)
        establish = STATE_TABLE.by_id["establish"]
        successor, steps = apply_step(state, 0, establish, STATE_TABLE, config)
        assert successor.tokens == 0
        assert successor.convs[0].state == "ESTABLISHED"
        assert successor.convs[0].token is True
        assert [s.transition.transition_id for s in steps] == ["establish"]

    def test_admission_refusal_needs_exhausted_pool(self):
        config = ModelConfig()
        state = initial_state(config)
        ids = {t.transition_id for _, t in enabled(state, STATE_TABLE, config)}
        assert "establish" in ids and "refuse-admission" not in ids
        drained = GlobalState(convs=state.convs, tokens=0)
        ids = {t.transition_id for _, t in enabled(drained, STATE_TABLE, config)}
        assert "refuse-admission" in ids and "establish" not in ids

    def test_tombstone_overflow_cascades_a_forget(self):
        # Capacity 1: evicting conv 0 while conv 1 is tombstoned forces
        # the FIFO to forget conv 1 in the same step (BoundedSet.add).
        config = ModelConfig(tombstone_capacity=1)
        convs = (
            ConvState(state="ESTABLISHED", token=True),
            ConvState(state="TOMBSTONED", reason="refused"),
        )
        state = GlobalState(convs=convs, tokens=0, tombstones=(1,))
        evict = STATE_TABLE.by_id["evict-idle"]
        successor, steps = apply_step(state, 0, evict, STATE_TABLE, config)
        assert [s.transition.transition_id for s in steps] == [
            "evict-idle",
            "forget-refused",
        ]
        assert successor.convs[1] == ConvState()
        assert successor.tombstones == (0,)
        assert successor.tokens == 1  # released by the eviction

    def test_overflow_never_scheduled_as_free_event(self):
        config = ModelConfig()
        convs = (ConvState(state="TOMBSTONED", reason="refused"), ConvState())
        state = GlobalState(convs=convs, tokens=1, tombstones=(0,))
        for _, transition in enabled(state, STATE_TABLE, config):
            assert transition.event != "tombstone-overflow"


class TestInvariants:
    def test_resurrected_tombstone_is_a_violation(self):
        convs = (ConvState(state="ESTABLISHED", reason="refused"),)
        state = GlobalState(convs=convs, tokens=1, tombstones=(0,))
        names = {name for name, _ in check_invariants(state, ModelConfig(conversations=1))}
        assert "tombstone-monotonic" in names

    def test_acked_beyond_placed_is_a_violation(self):
        convs = (ConvState(state="ESTABLISHED", placed=1, acked=2, token=True),)
        state = GlobalState(convs=convs, tokens=0)
        names = {name for name, _ in check_invariants(state, ModelConfig(conversations=1))}
        assert "acked-unplaced" in names

    def test_token_leak_is_a_violation(self):
        convs = (ConvState(state="ESTABLISHED", token=True),)
        state = GlobalState(convs=convs, tokens=1)  # 1 free + 1 held > pool of 1
        names = {name for name, _ in check_invariants(state, ModelConfig(conversations=1))}
        assert "token-conserved" in names

    def test_wrong_reason_is_a_violation(self):
        convs = (
            ConvState(state="EVICTED-stalled", reason="idle"),
            ConvState(),
        )
        state = GlobalState(convs=convs, tokens=1, tombstones=(0,))
        names = {name for name, _ in check_invariants(state, ModelConfig())}
        assert "reason-exclusive" in names


class TestInjectedResurrection:
    def test_injection_produces_shortest_counterexample(self):
        table = with_transition(STATE_TABLE, injected_resurrection())
        result = explore(table)
        assert not result.ok
        violation = result.violations[0]
        assert violation.invariant == "tombstone-monotonic"
        assert "resurrected" in violation.message
        # BFS yields the minimal trace: establish (drains the pool),
        # refuse-admission (tombstones conv 1), bad-resurrect.
        assert [s.transition.transition_id for s in violation.trace] == [
            "establish",
            "refuse-admission",
            "bad-resurrect",
        ]

    def test_counterexample_roundtrips_through_perfetto(self, tmp_path):
        table = with_transition(STATE_TABLE, injected_resurrection())
        violation = explore(table).violations[0]
        path = write_counterexample(violation, tmp_path / "cex.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["kind"] == "flight-meta"
        assert lines[0]["trigger"] == "modelcheck"
        assert lines[0]["tag"] == "tombstone-monotonic"
        trace = journeys_to_trace(lines)
        events = trace["traceEvents"] if isinstance(trace, dict) else trace
        instants = [e for e in events if e.get("ph") == "i"]
        assert [e["name"] for e in instants] == [
            s.transition.transition_id for s in violation.trace
        ]
        # Each instant carries the declared edge, so the timeline reads
        # as the exact state walk.
        for instant, step in zip(instants, violation.trace):
            assert instant["args"]["from"] == step.transition.src
            assert instant["args"]["to"] == step.transition.dst
            assert instant["pid"] == step.conv

    def test_counterexample_dump_is_deterministic(self, tmp_path):
        table = with_transition(STATE_TABLE, injected_resurrection())
        violation = explore(table).violations[0]
        first = write_counterexample(violation, tmp_path / "a.jsonl").read_text()
        second = write_counterexample(violation, tmp_path / "b.jsonl").read_text()
        assert first == second
        for line in first.splitlines():
            assert json.loads(line) is not None

    def test_records_reference_the_table_rows(self):
        table = with_transition(STATE_TABLE, injected_resurrection())
        violation = explore(table).violations[0]
        records = counterexample_records(violation)
        provenance = [r for r in records if r["kind"] == "provenance"]
        assert provenance
        for record in provenance:
            assert record["level"] == "conn"
            fields = record["fields"]
            assert isinstance(fields["table_line"], int)


class TestMain:
    def test_clean_run_exits_zero(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "all invariants hold" in out
        assert "18/18 transitions covered" in out

    def test_injected_run_writes_counterexample_and_exits_one(self, tmp_path, capsys):
        rc = main(["--inject-resurrection", "--counterexample", str(tmp_path)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "VIOLATION [tombstone-monotonic]" in out
        dumps = sorted(tmp_path.glob("*.jsonl"))
        assert len(dumps) == 1
        assert "tombstone-monotonic" in dumps[0].name
