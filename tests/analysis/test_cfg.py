"""CFG builder + dataflow framework tests (repro.analysis.cfg/.dataflow).

The budget-leak pass is only as sound as the graph underneath it, so
these tests drive :func:`build_cfg` over the adversarial shapes from
ISSUE 6 — nested try/finally, while/else, bare ``raise`` re-raise,
exception-suppressing ``with``, generators — and assert path-level
properties (a line is/is not on some path to the exit) rather than
golden block dumps, so the builder's internal numbering can evolve.
"""

from __future__ import annotations

import ast

from repro.analysis.cfg import EXCEPTION, CFG, build_cfg
from repro.analysis.dataflow import GenKill, run_forward


def func_cfg(src: str) -> CFG:
    tree = ast.parse(src)
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


def stmt_lines(cfg: CFG, block_ids) -> set[int]:
    out = set()
    for block_id in block_ids:
        step = cfg.blocks[block_id].step
        if step is not None and step.kind == "stmt":
            out.add(step.line)
    return out


def all_paths(cfg: CFG, start: int | None = None) -> list[list[int]]:
    """Every cycle-free block path from *start* (default entry) to exit."""
    start = cfg.entry if start is None else start
    paths: list[list[int]] = []
    stack: list[tuple[int, list[int]]] = [(start, [start])]
    while stack:
        block_id, path = stack.pop()
        if block_id == cfg.exit:
            paths.append(path)
            continue
        for edge in cfg.succs(block_id):
            if edge.dst not in path:
                stack.append((edge.dst, path + [edge.dst]))
    return paths


def line_of(src: str, needle: str) -> int:
    for lineno, text in enumerate(src.splitlines(), start=1):
        if needle in text:
            return lineno
    raise AssertionError(f"{needle!r} not in source")


class TestNestedTryFinally:
    SRC = '''
def f():
    try:
        try:
            risky()
        finally:
            inner_cleanup()
    finally:
        outer_cleanup()
    done()
'''

    def test_return_path_runs_both_finallys(self):
        src = self.SRC.replace("risky()", "return result()")
        cfg = func_cfg(src)
        inner = line_of(src, "inner_cleanup")
        outer = line_of(src, "outer_cleanup")
        ret_paths = [
            p
            for p in all_paths(cfg)
            if line_of(src, "return result()") in stmt_lines(cfg, p)
        ]
        assert ret_paths
        for path in ret_paths:
            lines = stmt_lines(cfg, path)
            # The return can raise (its value is a call) — on that edge
            # the finallys run as exception finallys, still both present.
            assert inner in lines
            assert outer in lines
            # A returning path never reaches the statement after the try.
            assert line_of(src, "done()") not in lines

    def test_exception_path_runs_both_finallys(self):
        cfg = func_cfg(self.SRC)
        src = self.SRC
        inner = line_of(src, "inner_cleanup")
        outer = line_of(src, "outer_cleanup")
        # Find the risky() block and follow only its exception edge.
        risky_blocks = [
            b
            for b in cfg.blocks.values()
            if b.step is not None and b.step.line == line_of(src, "risky()")
        ]
        assert len(risky_blocks) == 1
        exc_edges = [
            e for e in cfg.succs(risky_blocks[0].id) if e.kind == EXCEPTION
        ]
        assert exc_edges
        for edge in exc_edges:
            for path in all_paths(cfg, edge.dst):
                lines = stmt_lines(cfg, path)
                assert inner in lines
                assert outer in lines
                assert line_of(src, "done()") not in lines

    def test_normal_path_reaches_done(self):
        cfg = func_cfg(self.SRC)
        lines = {line for p in all_paths(cfg) for line in stmt_lines(cfg, p)}
        assert line_of(self.SRC, "done()") in lines


class TestWhileElse:
    SRC = '''
def f(items):
    while cond():
        if found():
            break
        consume()
    else:
        exhausted()
    after()
'''

    def test_break_skips_the_else_clause(self):
        cfg = func_cfg(self.SRC)
        src = self.SRC
        break_block = next(
            b
            for b in cfg.blocks.values()
            if b.step is not None and isinstance(b.step.node, ast.Break)
        )
        for path in all_paths(cfg, break_block.id):
            assert line_of(src, "exhausted()") not in stmt_lines(cfg, path)

    def test_exhaustion_runs_else_then_after(self):
        cfg = func_cfg(self.SRC)
        src = self.SRC
        else_paths = [
            p
            for p in all_paths(cfg)
            if line_of(src, "exhausted()") in stmt_lines(cfg, p)
        ]
        assert else_paths
        # On every path that completes normally (exhausted() can itself
        # raise, leaving by the exception edge), else precedes after().
        completing = 0
        for path in else_paths:
            lines = [
                cfg.blocks[b].step.line
                for b in path
                if cfg.blocks[b].step is not None
                and cfg.blocks[b].step.kind == "stmt"
            ]
            if line_of(src, "after()") not in lines:
                continue
            completing += 1
            assert lines.index(line_of(src, "exhausted()")) < lines.index(
                line_of(src, "after()")
            )
        assert completing


class TestBareRaiseReRaise:
    SRC = '''
def f():
    try:
        risky()
    except ValueError:
        cleanup()
        raise
    done()
'''

    def test_bare_raise_propagates_to_exit(self):
        cfg = func_cfg(self.SRC)
        raise_block = next(
            b
            for b in cfg.blocks.values()
            if b.step is not None and isinstance(b.step.node, ast.Raise)
        )
        exc = [e for e in cfg.succs(raise_block.id) if e.kind == EXCEPTION]
        assert len(exc) == 1
        assert exc[0].dst == cfg.exit
        # and the re-raise path never reaches done()
        for path in all_paths(cfg, raise_block.id):
            assert line_of(self.SRC, "done()") not in stmt_lines(cfg, path)

    def test_handled_path_reaches_done(self):
        cfg = func_cfg(self.SRC)
        src = self.SRC
        cleanup_paths = [
            p
            for p in all_paths(cfg)
            if line_of(src, "cleanup()") in stmt_lines(cfg, p)
        ]
        assert cleanup_paths  # the handler is reachable


class TestCatchAllHandler:
    def test_catch_all_suppresses_uncaught_propagation(self):
        src = '''
def f():
    try:
        risky()
    except Exception:
        handled()
    done()
'''
        cfg = func_cfg(src)
        # Every path from entry either handles or completes; no path
        # leaves the try without passing a handler or the body's normal
        # completion, i.e. the exception edge out of risky() cannot
        # reach the exit while skipping both handled() and done().
        risky = line_of(src, "risky()")
        for path in all_paths(cfg):
            lines = stmt_lines(cfg, path)
            if risky in lines:
                assert line_of(src, "handled()") in lines or line_of(src, "done()") in lines

    def test_typed_handler_keeps_uncaught_propagation(self):
        src = '''
def f():
    try:
        risky()
    except ValueError:
        handled()
    done()
'''
        cfg = func_cfg(src)
        escaping = [
            p
            for p in all_paths(cfg)
            if line_of(src, "risky()") in stmt_lines(cfg, p)
            and line_of(src, "handled()") not in stmt_lines(cfg, p)
            and line_of(src, "done()") not in stmt_lines(cfg, p)
        ]
        assert escaping  # a non-ValueError exception can escape


class TestWithSuppression:
    SRC = '''
def f(cm):
    with cm:
        risky()
    after()
'''

    def test_exceptional_exit_both_propagates_and_falls_through(self):
        cfg = func_cfg(self.SRC)
        src = self.SRC
        risky_block = next(
            b
            for b in cfg.blocks.values()
            if b.step is not None
            and b.step.kind == "stmt"
            and b.step.line == line_of(src, "risky()")
        )
        exc_edges = [e for e in cfg.succs(risky_block.id) if e.kind == EXCEPTION]
        assert len(exc_edges) == 1
        exit_exc = cfg.blocks[exc_edges[0].dst]
        assert exit_exc.step is not None and exit_exc.step.kind == "with-exit"
        kinds = {e.kind for e in cfg.succs(exit_exc.id)}
        assert EXCEPTION in kinds  # the manager may re-raise
        # ... and may suppress: some continuation reaches after().
        suppressed = [
            p
            for p in all_paths(cfg, exit_exc.id)
            if line_of(src, "after()") in stmt_lines(cfg, p)
        ]
        assert suppressed


class TestGenerators:
    SRC = '''
def gen(items):
    for item in items:
        if item:
            yield item
    yield None
'''

    def test_yields_are_ordinary_steps(self):
        cfg = func_cfg(self.SRC)
        src = self.SRC
        lines = {line for p in all_paths(cfg) for line in stmt_lines(cfg, p)}
        assert line_of(src, "yield item") in lines
        assert line_of(src, "yield None") in lines

    def test_loop_back_edge_exists(self):
        cfg = func_cfg(self.SRC)
        assert any(e.kind == "back" for e in cfg.edges())


class TestDeterminism:
    def test_same_source_builds_identical_graphs(self):
        src = TestNestedTryFinally.SRC
        assert func_cfg(src).describe() == func_cfg(src).describe()


class TestDataflow:
    def test_join_over_branches(self):
        src = '''
def f(x):
    if x:
        a = 1
    else:
        b = 2
    c = 3
'''
        cfg = func_cfg(src)

        class ReachingLines(GenKill):
            def gen(self, step, state):
                return frozenset(
                    [step.line] if step.kind == "stmt" else []
                )

        in_states = run_forward(cfg, ReachingLines())
        at_exit = in_states[cfg.exit]
        assert line_of(src, "a = 1") in at_exit
        assert line_of(src, "b = 2") in at_exit
        assert line_of(src, "c = 3") in at_exit

    def test_exception_edge_carries_pre_raise_state(self):
        src = '''
def f():
    a = 1
    risky()
    b = 2
'''
        cfg = func_cfg(src)

        class ReachingLines(GenKill):
            def gen(self, step, state):
                return frozenset(
                    [step.line] if step.kind == "stmt" else []
                )

        in_states = run_forward(cfg, ReachingLines())
        # risky() can raise straight to exit, so at exit both the
        # "b never ran" and "b ran" states are joined: a is certain,
        # b merely possible — this is a may-analysis and both appear;
        # the real invariant is that `a = 1` (before the raise) always
        # arrives at exit even on the exception path alone.
        risky_block = next(
            b
            for b in cfg.blocks.values()
            if b.step is not None and b.step.line == line_of(src, "risky()")
        )
        assert line_of(src, "a = 1") in in_states[risky_block.id]
        assert line_of(src, "a = 1") in in_states[cfg.exit]
