"""True-positive / near-miss tests for the interprocedural passes.

Each fixture module pairs the defect the pass exists to catch with the
nearest legal idiom (the near-miss), so these tests pin both the recall
and the precision of every pass: the TP must fire, the near-miss must
stay silent.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.core import Finding, ModuleUnit, run_passes
from repro.analysis.graph import ProjectGraph
from repro.analysis.passes import (
    HotPathCopyPass,
    LayeringPass,
    MutableSharingPass,
    RngFlowPass,
)

FIXTURES = Path(__file__).parent / "fixtures" / "src" / "repro"
REPO_SRC = Path(__file__).parents[2] / "src" / "repro"


def project_findings(pass_obj, *paths: Path) -> list[Finding]:
    units = [ModuleUnit.from_path(p) for p in paths]
    return run_passes(units, [pass_obj])


def symbols(findings: list[Finding]) -> set[str]:
    return {f.symbol for f in findings}


class TestLayering:
    def test_upward_import_is_flagged(self):
        findings = project_findings(LayeringPass(), FIXTURES / "core" / "bad_layering.py")
        assert symbols(findings) == {
            "upward-import:repro.core.bad_layering->repro.transport.receiver"
        }

    def test_near_misses_stay_silent(self):
        # The fixture also imports repro.obs (meta layer) and
        # repro.core.chunk (same package); only the transport import may
        # fire, so exactly one finding proves both near-misses pass.
        findings = project_findings(LayeringPass(), FIXTURES / "core" / "bad_layering.py")
        assert len(findings) == 1
        assert findings[0].line == 5

    def test_unknown_package_is_flagged(self, tmp_path):
        path = tmp_path / "repro" / "sidecar" / "rogue.py"
        path.parent.mkdir(parents=True)
        path.write_text("from repro.core.chunk import Chunk\n__all__ = []\n")
        findings = project_findings(LayeringPass(), path)
        assert symbols(findings) == {"unknown-package:sidecar"}

    def test_real_tree_is_clean(self):
        units = [ModuleUnit.from_path(p) for p in sorted(REPO_SRC.rglob("*.py"))]
        assert run_passes(units, [LayeringPass()]) == []


class TestRngFlow:
    def test_laundered_unseeded_random_is_flagged(self):
        findings = project_findings(RngFlowPass(), FIXTURES / "app" / "bad_rng_flow.py")
        assert symbols(findings) == {
            "taint:repro.app.bad_rng_flow.attach->repro.netsim.link.Link"
        }
        [finding] = findings
        assert finding.line == 22

    def test_seeded_near_misses_stay_silent(self):
        # attach_seeded (substream) and attach_direct_seed (Random(42))
        # share the fixture; the single finding above proves both clean.
        findings = project_findings(RngFlowPass(), FIXTURES / "app" / "bad_rng_flow.py")
        assert len(findings) == 1

    def test_direct_unseeded_kwarg_without_resolvable_callee(self, tmp_path):
        path = tmp_path / "repro" / "app" / "direct.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "import random\n"
            "__all__ = ['go']\n"
            "def go(thing):\n"
            "    thing.attach(rng=random.Random())\n"
        )
        findings = project_findings(RngFlowPass(), path)
        assert symbols(findings) == {"taint-kwarg:repro.app.direct.go"}


class TestHotPathCopy:
    def test_all_three_copy_idioms_fire(self):
        findings = project_findings(
            HotPathCopyPass(), FIXTURES / "transport" / "bad_hot_copy.py"
        )
        assert symbols(findings) == {
            "copy-slice:repro.transport.bad_hot_copy.FixtureReceiver.receive_chunk:payload",
            "copy-ctor:repro.transport.bad_hot_copy.FixtureReceiver.receive_chunk:payload",
            "copy-concat:repro.transport.bad_hot_copy.FixtureReceiver._stitch:data",
        }

    def test_concat_is_found_interprocedurally(self):
        # _stitch is not an entry point; it is hot only because
        # receive_chunk calls it through the project call graph.
        findings = project_findings(
            HotPathCopyPass(), FIXTURES / "transport" / "bad_hot_copy.py"
        )
        assert any(f.symbol.startswith("copy-concat:") and f.line == 14 for f in findings)

    def test_memoryview_and_cold_code_stay_silent(self):
        # Line 8 slices a memoryview (zero-copy) and cold_accessor has
        # an identical payload slice outside the receive path; neither
        # may fire.
        findings = project_findings(
            HotPathCopyPass(), FIXTURES / "transport" / "bad_hot_copy.py"
        )
        assert len(findings) == 3
        assert not any(f.line == 8 for f in findings)
        assert not any("cold_accessor" in f.symbol for f in findings)

    def test_reassemble_budgeted_copy_is_suppressed_inline(self):
        # The raw pass sees the one reassembly concatenation the paper's
        # touch budget pays for; the inline ignore keeps the tree clean.
        unit = ModuleUnit.from_path(REPO_SRC / "core" / "reassemble.py")
        raw = list(HotPathCopyPass().check_project(ProjectGraph([unit])))
        assert [f.symbol for f in raw if f.symbol.startswith("copy-concat:")]
        assert run_passes([unit], [HotPathCopyPass()]) == []


class TestMutableSharing:
    def test_lambda_mutation_and_global_rebind_fire(self):
        findings = project_findings(
            MutableSharingPass(), FIXTURES / "netsim" / "bad_sharing.py"
        )
        assert symbols(findings) == {
            "shared-mutation:SHARED_LOG.append",
            "shared-rebind:EVENTS",
        }

    def test_per_call_closure_state_stays_silent(self):
        # schedule_ok mutates a per-call dict and the caller's own
        # object; two findings total proves it never fires.
        findings = project_findings(
            MutableSharingPass(), FIXTURES / "netsim" / "bad_sharing.py"
        )
        assert len(findings) == 2

    def test_subscript_store_on_module_state(self, tmp_path):
        path = tmp_path / "repro" / "netsim" / "store.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "__all__ = ['go']\n"
            "TABLE = {}\n"
            "def go(loop):\n"
            "    def cb():\n"
            "        TABLE['k'] = 1\n"
            "    loop.at(1.0, cb)\n"
        )
        findings = project_findings(MutableSharingPass(), path)
        assert symbols(findings) == {"shared-store:TABLE"}
