"""Tests for the simsan runtime sanitizer (repro.analysis.simsan).

The regression pair is the core contract: an injected
mutation-after-schedule bug is caught with the sanitizer installed and
— demonstrably — sails through undetected with the hook disabled, which
is exactly why the CI simsan lane exists.
"""

from __future__ import annotations

import functools
import random

import pytest

from repro.analysis import simsan
from repro.core.errors import SimSanError
from repro.netsim import events as events_mod
from repro.netsim.events import EventLoop


@pytest.fixture(autouse=True)
def restore_observer():
    """Keep whatever observer the session installed (e.g. the CI simsan
    lane's) intact across these tests."""
    previous = events_mod.get_schedule_observer()
    yield
    events_mod.set_schedule_observer(previous)


def mutate_after_schedule(loop: EventLoop) -> tuple[bytearray, list[bytes]]:
    """The injected bug: a payload buffer aliased into a scheduled
    callback, then mutated before the callback runs."""
    observed: list[bytes] = []
    buf = bytearray(b"self-describing chunk payload")
    loop.at(1.0, lambda: observed.append(bytes(buf)))
    buf[0] ^= 0xFF  # the mutation the callback never agreed to
    return buf, observed


class TestRegression:
    def test_sanitizer_catches_injected_mutation(self):
        loop = EventLoop()
        with simsan.session() as san:
            mutate_after_schedule(loop)
            with pytest.raises(SimSanError, match="mutation-after-schedule"):
                loop.run()
        [violation] = san.violations
        assert violation.seq == 0
        assert "buf" in violation.buffer_label
        assert violation.scheduled_digest != violation.dispatched_digest
        # The callsite points at the scheduling line in this file, not
        # at the event-loop internals.
        assert "test_simsan.py" in violation.callsite

    def test_bug_is_undetected_without_the_hook(self):
        # The same injected bug with the observer disabled: the run
        # completes silently and the callback observes corrupted bytes.
        events_mod.set_schedule_observer(None)
        loop = EventLoop()
        buf, observed = mutate_after_schedule(loop)
        loop.run()  # no error — the whole point of the sanitizer
        assert observed == [bytes(buf)]
        assert observed[0] != b"self-describing chunk payload"

    def test_clean_run_raises_nothing(self):
        loop = EventLoop()
        with simsan.session() as san:
            buf = bytearray(b"stable payload")
            seen: list[bytes] = []
            loop.at(1.0, lambda: seen.append(bytes(buf)))
            loop.run()
        assert san.violations == []
        assert san.buffers_tracked == 1
        assert seen == [b"stable payload"]


class TestFingerprinting:
    def test_immutable_bytes_are_not_tracked(self):
        loop = EventLoop()
        with simsan.session() as san:
            payload = b"immutable"
            loop.at(1.0, lambda: payload)
            loop.run()
        assert san.buffers_tracked == 0
        assert san.audit.entries == 1  # the audit still records it

    def test_partial_arguments_are_tracked(self):
        loop = EventLoop()
        sink: list[int] = []

        def deliver(data: bytearray) -> None:
            sink.append(len(data))

        buf = bytearray(b"partial-carried payload")
        with simsan.session():
            loop.at(1.0, functools.partial(deliver, buf))
            buf.extend(b"!!")
            with pytest.raises(SimSanError, match="args\\[0\\]"):
                loop.run()

    def test_report_mode_records_without_raising(self):
        loop = EventLoop()
        with simsan.session(simsan.SimSanitizer(raise_on_violation=False)) as san:
            mutate_after_schedule(loop)
            loop.run()
        [violation] = san.violations
        description = violation.describe()
        assert "mutated between schedule and dispatch" in description
        assert "scheduling backtrace" in description


class TestAuditLog:
    def run_scenario(self, seed: int) -> str:
        loop = EventLoop()
        rng = random.Random(seed)
        with simsan.session() as san:
            for _ in range(20):
                loop.at(loop.now + rng.random(), lambda: None)
            loop.run()
            return san.audit.digest()

    def test_identical_seeded_runs_agree(self):
        assert self.run_scenario(7) == self.run_scenario(7)

    def test_schedule_divergence_changes_the_digest(self):
        assert self.run_scenario(7) != self.run_scenario(8)

    def test_entry_count_matches_schedules(self):
        loop = EventLoop()
        with simsan.session() as san:
            for index in range(5):
                loop.at(float(index), lambda: None)
            loop.run()
        assert san.audit.entries == 5


class TestInstallation:
    def test_session_restores_previous_observer(self):
        previous = events_mod.get_schedule_observer()
        with simsan.session() as san:
            assert events_mod.get_schedule_observer() is san
        assert events_mod.get_schedule_observer() is previous

    def test_install_uninstall_roundtrip(self):
        events_mod.set_schedule_observer(None)
        san = simsan.install()
        assert simsan.current() is san
        simsan.uninstall()
        assert simsan.current() is None
        assert events_mod.get_schedule_observer() is None

    def test_enabled_by_env(self, monkeypatch):
        monkeypatch.setenv(simsan.ENV_VAR, "1")
        assert simsan.enabled_by_env()
        monkeypatch.setenv(simsan.ENV_VAR, "off")
        assert not simsan.enabled_by_env()
        monkeypatch.delenv(simsan.ENV_VAR)
        assert not simsan.enabled_by_env()
