"""Property suite: the declared lifecycle FSM conforms to the live endpoint.

:mod:`repro.analysis.modelcheck` explores the *declared* transition
relation; this suite closes the loop in the other direction — any
receiver-side event sequence the model accepts must drive a live
:class:`~repro.transport.endpoint.ChunkEndpoint` through the matching
observable lifecycle: same table membership, same closed state, same
tombstones, refusals exactly where the model refuses.

The driver replays one conversation against a real endpoint with tight
timeouts; virtual time advances one second per event so every ``sweep``
the model accepts is past both the idle timeout and the close linger.
Sequences are cut at the first event the model has no enabled
transition for (the model's alphabet is a subset of what the wire can
carry — conformance is claimed for accepted prefixes only).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.modelcheck import ModelConfig, apply_step, enabled, initial_state
from repro.core.packet import Packet
from repro.core.state_table import STATE_TABLE
from repro.netsim.events import EventLoop
from repro.transport.connection import ConnectionConfig
from repro.transport.endpoint import ChunkEndpoint, ConnectionState
from repro.transport.sender import ChunkTransportSender

from tests.conftest import make_chunk

CID = 9

#: Test alphabet -> model event.  Receiver side only: acks and local
#: opens exercise the sender half, which this driver does not model.
EVENT_NAMES = {
    "signal": "signaling-chunk",
    "data": "data-chunk",
    "cst": "cst-chunk",
    "sweep": "sweep",
}

#: One conversation, one pool token, a cap no 8-event run can reach,
#: and a FIFO a single conversation can never overflow.
MODEL = ModelConfig(
    conversations=1, pool_tokens=1, placement_cap=32, tombstone_capacity=4
)

#: Model lifecycle state -> the observable class a live endpoint shows.
OBSERVABLE = {
    "CLOSED": "absent",
    "ESTABLISHING": "open",
    "ESTABLISHED": "open",
    "CLOSING": "closing",
    "EVICTED-idle": "evicted",
    "EVICTED-stalled": "evicted",
    "TOMBSTONED": "evicted",
}


def observe(endpoint: ChunkEndpoint) -> str:
    connection = endpoint.connection(CID)
    if connection is not None:
        return "closing" if connection.state is ConnectionState.CLOSED else "open"
    if CID in endpoint.table.evicted_ids:
        return "evicted"
    return "absent"


def model_step(state, event):
    """The unique enabled transition for *event*, or None (rejected)."""
    candidates = [
        (idx, t)
        for idx, t in enabled(state, STATE_TABLE, MODEL)
        if t.event == event
    ]
    if not candidates:
        return None
    # Guards partition (pool-has-token vs pool-exhausted), so a single
    # conversation never sees two enabled transitions for one event.
    assert len(candidates) == 1, candidates
    return candidates[0]


def wire_chunks(sender: ChunkTransportSender, name: str, transition_id: str):
    """The chunks one test event puts on the wire."""
    if name == "signal":
        return [sender.establishment_chunk()]
    if transition_id in ("data", "close"):
        return sender.send_frame(b"\xa5" * 8, end_of_connection=(name == "cst"))
    # Refused by both model and endpoint: the content is arbitrary, and
    # the sender's builder may already be closed by an earlier C.ST.
    return [make_chunk(units=4, c_id=CID)]


events = st.lists(st.sampled_from(sorted(EVENT_NAMES)), min_size=1, max_size=8)


@settings(max_examples=200, deadline=None)
@given(events)
def test_model_accepted_sequences_drive_the_live_endpoint(sequence):
    endpoint = ChunkEndpoint(EventLoop(), idle_timeout=0.5, close_linger=0.5)
    sender = ChunkTransportSender(ConnectionConfig(connection_id=CID, tpdu_units=16))
    state = initial_state(MODEL)
    now = 0.0

    for name in sequence:
        step = model_step(state, EVENT_NAMES[name])
        if step is None:
            break  # conformance holds for the accepted prefix
        idx, transition = step
        state, _ = apply_step(state, idx, transition, STATE_TABLE, MODEL)
        now += 1.0

        if name == "sweep":
            endpoint.sweep(now=now)
            refused = 0
        else:
            chunks = wire_chunks(sender, name, transition.transition_id)
            refused = endpoint.receive_packet(Packet(chunks=chunks).encode()).refused_chunks

        # The model refuses exactly where the endpoint refuses.
        model_refused = transition.transition_id.startswith("refuse-")
        assert (refused > 0) == model_refused, (name, transition.transition_id)

        # And the observable lifecycle class matches the model state.
        assert observe(endpoint) == OBSERVABLE[state.convs[0].state], (
            name,
            transition.transition_id,
            state.convs[0],
        )


@settings(max_examples=50, deadline=None)
@given(events)
def test_refusal_counters_split_like_the_model(sequence):
    # refuse-unknown bumps refused_unknown; refuse-evicted-* /
    # refuse-tombstoned bump refused_evicted.  Replay and compare the
    # per-kind refusal tallies (in refused chunks, so count per chunk).
    endpoint = ChunkEndpoint(EventLoop(), idle_timeout=0.5, close_linger=0.5)
    sender = ChunkTransportSender(ConnectionConfig(connection_id=CID, tpdu_units=16))
    state = initial_state(MODEL)
    now = 0.0
    expect_unknown = 0
    expect_evicted = 0

    for name in sequence:
        step = model_step(state, EVENT_NAMES[name])
        if step is None:
            break
        idx, transition = step
        state, _ = apply_step(state, idx, transition, STATE_TABLE, MODEL)
        now += 1.0
        if name == "sweep":
            endpoint.sweep(now=now)
            continue
        chunks = wire_chunks(sender, name, transition.transition_id)
        endpoint.receive_packet(Packet(chunks=chunks).encode())
        if transition.transition_id == "refuse-unknown":
            expect_unknown += len(chunks)
        elif transition.transition_id.startswith("refuse-"):
            expect_evicted += len(chunks)

    assert endpoint.refused_unknown == expect_unknown
    assert endpoint.refused_evicted == expect_evicted
