"""Property suite: Appendix A header compression is exactly invertible.

"The chunk syntax transformations that we discuss in this section are
invertible, because they allow recovery of the original chunk syntax."
Every transform the library implements — varints, SIZE/C.ID elision,
implicit T.ID (Figure 7), SN regeneration, and packet-scope ED-header
elision — must round-trip builder-produced streams bit-exactly.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.builder import ChunkStreamBuilder
from repro.core.chunk import Chunk
from repro.core.compress import (
    CompressionProfile,
    HeaderCompressor,
    HeaderDecompressor,
    decode_varint,
    elide_ed_headers,
    encode_varint,
    implicit_tpdu_ids,
    restore_ed_headers,
)
from repro.core.types import ChunkType
from repro.wsc.invariant import encode_tpdu
from tests.conftest import make_payload


@given(st.integers(0, 2**63 - 1))
def test_varint_roundtrip(value):
    encoded = encode_varint(value)
    decoded, consumed = decode_varint(encoded, 0)
    assert decoded == value
    assert consumed == len(encoded)


@given(st.lists(st.integers(0, 2**32), min_size=1, max_size=8))
def test_varint_stream_roundtrip(values):
    blob = b"".join(encode_varint(v) for v in values)
    offset = 0
    decoded = []
    while offset < len(blob):
        value, offset = decode_varint(blob, offset)
        decoded.append(value)
    assert decoded == values


@st.composite
def stream_and_profile(draw) -> tuple[list[Chunk], CompressionProfile]:
    connection_id = draw(st.integers(0, 1000))
    tpdu_units = draw(st.integers(2, 10))
    implicit = draw(st.booleans())
    builder = ChunkStreamBuilder(
        connection_id=connection_id,
        tpdu_units=tpdu_units,
        tpdu_ids=implicit_tpdu_ids(0, tpdu_units) if implicit else None,
    )
    chunks: list[Chunk] = []
    frame_units = draw(st.lists(st.integers(1, 8), min_size=1, max_size=5))
    for frame_id, units in enumerate(frame_units):
        chunks += builder.add_frame(
            make_payload(units, 1, seed=frame_id + 1), frame_id=frame_id
        )
    profile = CompressionProfile(
        size_by_type={ChunkType.DATA: 1} if draw(st.booleans()) else {},
        connection_id=connection_id if draw(st.booleans()) else None,
        implicit_t_id=implicit,
        regenerate_sns=draw(st.booleans()),
    )
    return chunks, profile


@given(stream_and_profile())
def test_header_compression_roundtrip(pair):
    """Compact encoding under any profile decodes to the original chunks."""
    chunks, profile = pair
    compressor = HeaderCompressor(profile)
    decompressor = HeaderDecompressor(profile)
    blob = b"".join(compressor.encode(chunk) for chunk in chunks)
    offset = 0
    decoded = []
    while offset < len(blob):
        chunk, offset = decompressor.decode(blob, offset)
        decoded.append(chunk)
    assert decoded == chunks


@given(stream_and_profile())
def test_compression_never_grows_past_plain_encoding(pair):
    """The compact form is at most the uncompressed wire size per chunk."""
    chunks, profile = pair
    compressor = HeaderCompressor(profile)
    for chunk in chunks:
        assert len(compressor.encode(chunk)) <= chunk.wire_bytes


@st.composite
def tpdu_streams_with_ed(draw) -> list[Chunk]:
    """A DATA stream with each completed TPDU's ED chunk in wire position."""
    tpdu_units = draw(st.integers(2, 8))
    builder = ChunkStreamBuilder(
        connection_id=draw(st.integers(0, 255)), tpdu_units=tpdu_units
    )
    data: list[Chunk] = []
    frame_units = draw(st.lists(st.integers(1, 8), min_size=1, max_size=4))
    for frame_id, units in enumerate(frame_units):
        last = frame_id == len(frame_units) - 1
        data += builder.add_frame(
            make_payload(units, 1, seed=frame_id + 1),
            frame_id=frame_id,
            end_of_connection=last,
        )
    # Interleave ED chunks exactly where the transport sender does:
    # directly after the DATA chunk that completes each TPDU.
    by_tpdu: dict[int, list[Chunk]] = {}
    wire: list[Chunk] = []
    for chunk in data:
        by_tpdu.setdefault(chunk.t.ident, []).append(chunk)
        wire.append(chunk)
        if chunk.t.st:
            _, ed = encode_tpdu(by_tpdu[chunk.t.ident])
            wire.append(ed)
    return wire


@given(tpdu_streams_with_ed())
def test_ed_header_elision_roundtrip(wire):
    elided = elide_ed_headers(wire)
    assert restore_ed_headers(elided) == wire
    # Every ED chunk in wire position is actually elided (they all
    # follow their TPDU's final DATA chunk by construction).
    n_ed = sum(1 for c in wire if c.type is ChunkType.ERROR_DETECTION)
    n_elided = sum(1 for item in elided if isinstance(item, bytes))
    assert n_elided == n_ed


@given(tpdu_streams_with_ed())
def test_ed_header_elision_saves_bytes(wire):
    elided = elide_ed_headers(wire)
    plain = sum(c.wire_bytes for c in wire)
    compact = sum(
        len(item) if isinstance(item, bytes) else item.wire_bytes for item in elided
    )
    assert compact <= plain
