"""Property suite: sharding never changes what gets delivered.

The sharded endpoint is a pure repartition of the unsharded one — the
label ``(C.ID, offset, length)`` decides the owning shard, and every
chunk is processed by exactly one worker.  So for *any* seeded
workload, the sharded endpoint (N ∈ {1, 2, 4, 8}) must deliver
byte-identical per-connection streams and identical per-connection
touch totals to the unsharded endpoint.  The wire differs (packet
framing, loss draws, retransmission schedules are all allowed to
change), but the delivered conversation cannot — that is the whole
equivalence claim of the refactor.

Also pinned here: :func:`~repro.transport.shard.shard_for` is total
over the 32-bit C.ID space and stable across runs (golden values), so
a persisted trace labelled with shard indices stays meaningful.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.app.concurrent import ConcurrentWorkload, staggered_specs
from repro.netsim.bottleneck import build_shared_bottleneck
from repro.netsim.events import EventLoop
from repro.netsim.shardloop import ShardedLoop
from repro.netsim.topology import HopSpec
from repro.transport.endpoint import ChunkEndpoint
from repro.transport.shard import ShardedEndpoint, shard_for

MTU = 600


def run_workload(
    shards: int | None,
    count: int,
    total_bytes: int,
    loss_rate: float,
    seed: int,
) -> dict[int, tuple[bytes, int]]:
    """Drive one endpoint pair to quiescence; returns per-connection
    ``(delivered stream, touched bytes)`` keyed by C.ID.

    ``shards=None`` builds the plain unsharded pair; an integer builds
    the sharded composition over a lockstep :class:`ShardedLoop`.
    """
    if shards is None:
        loop: EventLoop | ShardedLoop = EventLoop()
        netloop = loop
        sender: ChunkEndpoint | ShardedEndpoint = ChunkEndpoint(loop, mtu=MTU)
        receiver: ChunkEndpoint | ShardedEndpoint = ChunkEndpoint(loop, mtu=MTU)
    else:
        loop = ShardedLoop()
        netloop = loop.member(0)
        sender = ShardedEndpoint(loop, mtu=MTU, shards=shards)
        receiver = ShardedEndpoint(loop, mtu=MTU, shards=shards)
    topology = build_shared_bottleneck(
        netloop,
        pairs=[(receiver.receive_packet, sender.receive_packet)],
        bottleneck=HopSpec(mtu=MTU, rate_bps=100e6, delay=0.001, loss_rate=loss_rate),
        seed=seed,
    )
    sender.transmit = topology.ports[0].send
    receiver.transmit = topology.ports[0].send_reverse
    workload = ConcurrentWorkload(loop=loop, sender=sender, receiver=receiver)
    workload.launch(staggered_specs(count, total_bytes=total_bytes))
    workload.run()
    delivered: dict[int, tuple[bytes, int]] = {}
    for spec in workload.specs:
        connection = receiver.connection(spec.connection_id)
        if connection is None:
            delivered[spec.connection_id] = (b"", 0)
        else:
            delivered[spec.connection_id] = (
                connection.stream_bytes()[: spec.total_bytes],
                connection._touched_bytes,
            )
    return delivered


class TestShardedEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        shards=st.sampled_from([1, 2, 4, 8]),
        count=st.integers(min_value=2, max_value=5),
        # Whole 4-byte atomic units (the chunk builder refuses ragged
        # frames), in a range small enough to run two sims per example.
        total_bytes=st.sampled_from([256, 512, 768]),
        loss_rate=st.sampled_from([0.0, 0.02]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_sharded_delivers_identical_streams_and_touches(
        self, shards, count, total_bytes, loss_rate, seed
    ):
        base = run_workload(None, count, total_bytes, loss_rate, seed)
        sharded = run_workload(shards, count, total_bytes, loss_rate, seed)
        assert sharded == base
        # Sanity: the workload actually delivered something non-trivial.
        assert all(stream for stream, _ in base.values())


class TestShardFor:
    @given(
        c_id=st.integers(min_value=0, max_value=2**32 - 1),
        shards=st.integers(min_value=1, max_value=64),
    )
    def test_total_over_the_cid_space(self, c_id, shards):
        index = shard_for(c_id, shards)
        assert 0 <= index < shards
        # Deterministic: the same label always lands on the same shard.
        assert shard_for(c_id, shards) == index

    def test_single_shard_owns_everything(self):
        for c_id in (0, 1, 7, 2**31, 2**32 - 1):
            assert shard_for(c_id, 1) == 0

    def test_golden_values_are_stable_across_runs(self):
        # CRC-32 of the 4 wire bytes — pinned so persisted shard labels
        # (traces, flight dumps) stay meaningful across interpreter
        # versions and PYTHONHASHSEED values.
        assert [shard_for(cid, 8) for cid in range(12)] == [
            shard_for(cid, 8) for cid in range(12)
        ]
        assert [shard_for(cid, 4) for cid in (1, 2, 3, 1000, 65535)] == [
            2, 0, 2, 1, 3,
        ]
