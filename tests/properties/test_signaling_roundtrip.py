"""Property suite: connection establishment signaling round-trips.

Appendix A moves seldom-changing header facts (SIZE, compression
options) into the establishment message, so the signaling encoding is
load-bearing for every later chunk of the conversation: any
``ConnectionConfig`` must survive ``build_signaling_chunk`` →
``parse_signaling_chunk`` exactly, and the strict parser must accept
everything the builder can emit while refusing any perturbation of the
reserved fields.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import SignalingError
from repro.transport.connection import (
    ConnectionConfig,
    build_signaling_chunk,
    parse_signaling_chunk,
)

# The wire format carries C.ID as u32, unit words and TPDU units as u16
# (the builder clamps tpdu_units to 0xFFFF), plus two boolean flags.
configs = st.builds(
    ConnectionConfig,
    connection_id=st.integers(0, 0xFFFFFFFF),
    unit_words=st.integers(1, 0xFFFF),
    tpdu_units=st.integers(1, 0xFFFF),
    implicit_t_id=st.booleans(),
    regenerate_sns=st.booleans(),
)


@given(configs)
def test_config_roundtrips_through_signaling(config):
    assert parse_signaling_chunk(build_signaling_chunk(config)) == config


@given(configs)
def test_signaling_chunk_is_well_formed(config):
    chunk = build_signaling_chunk(config)
    # The C tuple labels the conversation the establishment belongs to,
    # and the payload is whole words (control LEN counts words).
    assert chunk.c.ident == config.connection_id
    assert len(chunk.payload) % 4 == 0
    assert chunk.length == len(chunk.payload) // 4


@given(configs, st.integers(0, 11), st.integers(1, 255))
def test_any_reserved_or_flag_perturbation_is_rejected_or_inert(config, offset, delta):
    """Flipping bytes of the fixed 12-byte header either changes the
    parsed config (value fields) or raises (reserved/unknown-flag
    fields) — it is never silently ignored."""
    chunk = build_signaling_chunk(config)
    payload = bytearray(chunk.payload)
    payload[offset] = (payload[offset] + delta) % 256
    mutated = chunk.__class__(
        type=chunk.type, size=chunk.size, length=chunk.length,
        c=chunk.c, t=chunk.t, x=chunk.x, payload=bytes(payload),
    )
    try:
        parsed = parse_signaling_chunk(mutated)
    except SignalingError:
        # Reserved bytes (10..11) always land here; flag bytes (8..9)
        # do when the perturbation sets an unknown bit.
        assert offset >= 8
    else:
        assert parsed != config


@given(configs)
def test_roundtrip_preserves_derived_parameters(config):
    parsed = parse_signaling_chunk(build_signaling_chunk(config))
    assert parsed.unit_bytes == config.unit_bytes
    assert parsed.tpdu_bytes == config.tpdu_bytes
    assert parsed.compression_profile() == config.compression_profile()


def test_builder_clamps_oversized_tpdu_units():
    config = ConnectionConfig(connection_id=1, tpdu_units=0x1_0000)
    parsed = parse_signaling_chunk(build_signaling_chunk(config))
    assert parsed.tpdu_units == 0xFFFF


def test_oversized_connection_id_cannot_be_encoded():
    with pytest.raises(struct.error):
        build_signaling_chunk(ConnectionConfig(connection_id=0x1_0000_0000))
