"""Property suite: the WSC-2 TPDU invariant under re-fragmentation.

Section 4's claim is that the error-detection code is computed on "an
invariant of the TPDU under chunk fragmentation": however the network
splits, coalesces, or reorders a TPDU's chunks, sender and receiver
accumulate exactly the same (P0, P1) pair.  The suite also pins the
algebraic property underneath — the accumulator is a homomorphism, so
any partition of the symbol stream into runs, accumulated in any order
across any number of accumulators and combined, equals the one-shot
in-order encoding.
"""

from __future__ import annotations

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.builder import ChunkStreamBuilder
from repro.core.chunk import Chunk
from repro.core.fragment import split_to_unit_limit
from repro.core.reassemble import coalesce
from repro.wsc.invariant import encode_tpdu
from repro.wsc.wsc2 import Wsc2Accumulator, wsc2_encode
from tests.conftest import make_payload


@st.composite
def complete_tpdus(draw) -> list[Chunk]:
    """The DATA chunks of exactly one complete TPDU (T.ST seen)."""
    total_units = draw(st.integers(1, 24))
    # Partition the TPDU's units into 1..4 external PDUs.
    cuts = sorted(draw(st.sets(st.integers(1, max(1, total_units - 1)), max_size=3)))
    bounds = [0, *cuts, total_units]
    builder = ChunkStreamBuilder(
        connection_id=draw(st.integers(0, 255)), tpdu_units=total_units
    )
    chunks: list[Chunk] = []
    for frame_id, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
        if hi == lo:
            continue
        chunks += builder.add_frame(
            make_payload(hi - lo, 1, seed=frame_id + 1), frame_id=frame_id
        )
    return [c for c in chunks if c.t.ident == 0]


@given(complete_tpdus(), st.integers(1, 5), st.integers(0, 2**32))
def test_encode_tpdu_invariant_under_fragmentation(tpdu, limit, shuffle_seed):
    """Sender parities computed over fragments == over the originals."""
    pieces = [p for chunk in tpdu for p in split_to_unit_limit(chunk, limit)]
    random.Random(shuffle_seed).shuffle(pieces)
    reference, _ = encode_tpdu(tpdu)
    fragmented, _ = encode_tpdu(pieces)
    assert fragmented == reference


@given(complete_tpdus(), st.integers(1, 5), st.integers(0, 2**32))
def test_encode_tpdu_invariant_under_coalescing(tpdu, limit, shuffle_seed):
    """Fragment, shuffle, then in-network reassemble (Appendix D): the
    receiver-side coalesced view still encodes identically."""
    pieces = [p for chunk in tpdu for p in split_to_unit_limit(chunk, limit)]
    random.Random(shuffle_seed).shuffle(pieces)
    merged = [c for c in coalesce(pieces) if not c.is_control]
    reference, _ = encode_tpdu(tpdu)
    recombined, _ = encode_tpdu(merged)
    assert recombined == reference


@st.composite
def symbol_partitions(draw):
    symbols = draw(
        st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=64)
    )
    n = len(symbols)
    cuts = sorted(draw(st.sets(st.integers(1, max(1, n - 1)), max_size=7)))
    bounds = [0, *(c for c in cuts if c < n), n]
    runs = [
        (lo, symbols[lo:hi]) for lo, hi in zip(bounds, bounds[1:]) if hi > lo
    ]
    return symbols, runs


@given(symbol_partitions(), st.integers(0, 2**32), st.integers(1, 4))
def test_accumulator_partition_shuffle_combine(partition, shuffle_seed, n_accs):
    """Any run partition, distributed over any number of accumulators in
    any order, combines to the one-shot in-order encoding."""
    symbols, runs = partition
    random.Random(shuffle_seed).shuffle(runs)
    accumulators = [Wsc2Accumulator() for _ in range(n_accs)]
    for index, (start, values) in enumerate(runs):
        accumulators[index % n_accs].add_run(start, values)
    combined = accumulators[0]
    for other in accumulators[1:]:
        combined.combine(other)
    assert combined.value() == wsc2_encode(symbols)


@given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=32),
       st.integers(0, 2**20))
def test_accumulator_position_shift(symbols, start):
    """Symbol-at-a-time accumulation at any base equals add_run there."""
    one_shot = Wsc2Accumulator()
    one_shot.add_run(start, symbols)
    stepwise = Wsc2Accumulator()
    for offset, value in enumerate(symbols):
        stepwise.add_symbol(start + offset, value)
    assert stepwise.value() == one_shot.value()
