"""Property suite: provenance journeys are complete, causal, and
losslessly exportable.

The paper's label is the join key for observability — so three
properties must hold for *any* seeded transfer and any record stream:

- **conservation**: every delivered byte was placed by exactly one
  ``placed`` record, and the placed labels tile the payload exactly
  (no byte placed twice, none skipped);
- **causality**: each chunk's journey is monotone in simulated time,
  and begins with its formation at the sender;
- **losslessness**: the Perfetto export round-trips — parsing the
  exported trace reconstructs each chunk's exact stage sequence.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.events import EventLoop
from repro.netsim.link import Link
from repro.netsim.rng import substream
from repro.obs.perfetto import chunk_timelines, journeys_to_trace, parse_trace
from repro.obs.provenance import (
    CHUNK_STAGES,
    JourneyTracker,
    bind_journey_clock,
    journey_session,
)
from repro.transport.connection import ConnectionConfig
from repro.transport.endpoint import ChunkEndpoint

from tests.conftest import deterministic_bytes


def _transfer(seed: int, loss: float, nbytes: int):
    loop = EventLoop()
    bind_journey_clock(lambda: loop.now)
    sender = ChunkEndpoint(loop, mtu=1500)
    receiver = ChunkEndpoint(loop, mtu=1500)
    forward = Link(
        loop,
        receiver.receive_packet,
        rate_bps=622e6,
        delay=0.0005,
        loss_rate=loss,
        rng=substream(seed, "journey-prop", "forward"),
    )
    reverse = Link(
        loop,
        sender.receive_packet,
        rate_bps=622e6,
        delay=0.0005,
        rng=substream(seed, "journey-prop", "reverse"),
    )
    sender.transmit = forward.send
    receiver.transmit = reverse.send
    connection = sender.open_connection(ConnectionConfig(connection_id=5))
    payload = deterministic_bytes(nbytes, seed)
    connection.send_frame(payload, end_of_connection=True)
    loop.run()
    return receiver, payload


transfers = st.tuples(
    st.integers(0, 2**16),          # seed
    st.sampled_from([0.0, 0.05, 0.2]),  # loss rate
    st.sampled_from([512, 4096, 16384]),  # object size
)


@given(transfers)
@settings(max_examples=15, deadline=None)
def test_delivered_bytes_placed_exactly_once(params):
    seed, loss, nbytes = params
    with journey_session() as tracker:
        receiver, payload = _transfer(seed, loss, nbytes)
        assert receiver.connection(5).stream_bytes() == payload
        journeys = tracker.journeys(c_id=5)
        assert journeys
        placed: list[tuple[int, int]] = []
        for journey in journeys:
            assert journey.stages.count("placed") == 1, (
                f"{journey.key}: placed {journey.stages.count('placed')} "
                f"times in {journey.stages}"
            )
            placed.append((journey.offset, journey.length))
        # The placed labels tile the payload: no gap, no double-place.
        cursor = 0
        for offset, length in sorted(placed):
            assert offset == cursor, f"gap or overlap at byte {cursor}"
            cursor += length
        assert cursor == len(payload)


@given(transfers)
@settings(max_examples=15, deadline=None)
def test_journeys_causally_ordered(params):
    seed, loss, nbytes = params
    with journey_session() as tracker:
        receiver, payload = _transfer(seed, loss, nbytes)
        assert receiver.connection(5).stream_bytes() == payload
        for journey in tracker.journeys(c_id=5):
            times = [record.t for record in journey.records]
            assert times == sorted(times), (
                f"{journey.key}: non-monotone journey {list(zip(journey.stages, times))}"
            )
            assert journey.stages[0] == "formed"
            assert all(math.isfinite(t) and t >= 0 for t in times)
            # Retransmission generations strictly increase: each sender
            # retry is a fresh generation.  (Receiver-side records carry
            # gen=0 — the generation is sender state, not on the wire.)
            retry_gens = [
                record.gen
                for record in journey.records
                if record.stage == "retransmit"
            ]
            assert retry_gens == sorted(set(retry_gens))
            assert all(gen > 0 for gen in retry_gens)


@given(transfers)
@settings(max_examples=10, deadline=None)
def test_transfer_trace_round_trips(params):
    seed, loss, nbytes = params
    with journey_session() as tracker:
        receiver, payload = _transfer(seed, loss, nbytes)
        assert receiver.connection(5).stream_bytes() == payload
        trace = journeys_to_trace(tracker.records)
        timelines = chunk_timelines(trace)
        assert set(timelines) == set(tracker.keys())
        for key, timeline in timelines.items():
            journey = tracker.journey(*key)
            assert [stage for _, stage, _ in timeline] == journey.stages
            assert [gen for _, _, gen in timeline] == [
                record.gen for record in journey.records
            ]


# ----------------------------------------------------------------------
# Synthetic record streams: the export is lossless for any stage
# vocabulary, not just sequences a real transfer happens to produce.
# ----------------------------------------------------------------------

@st.composite
def record_streams(draw):
    """A tracker fed a random but causally-plausible record stream."""
    tracker = JourneyTracker()
    n_chunks = draw(st.integers(1, 5))
    for index in range(n_chunks):
        c_id = draw(st.sampled_from([1, 2]))
        offset, length = index * 64, 64
        stages = draw(
            st.lists(st.sampled_from(CHUNK_STAGES), min_size=1, max_size=6)
        )
        deltas = draw(
            st.lists(
                st.floats(0.001, 1.0, allow_nan=False),
                min_size=len(stages),
                max_size=len(stages),
            )
        )
        t, gen = 0.0, 0
        for stage, delta in zip(stages, deltas):
            t += delta
            if stage == "retransmit":
                gen += 1
            tracker.emit(stage, c_id, offset, length, t=t, gen=gen)
    return tracker


@given(record_streams())
@settings(deadline=None)
def test_synthetic_stream_round_trips(tracker):
    trace = journeys_to_trace(tracker.records)
    parse_trace(trace)  # structurally valid
    timelines = chunk_timelines(trace)
    assert set(timelines) == set(tracker.keys())
    for key, timeline in timelines.items():
        journey = tracker.journey(*key)
        assert [stage for _, stage, _ in timeline] == journey.stages
        assert [gen for _, _, gen in timeline] == [
            record.gen for record in journey.records
        ]
        for (t_out, _, _), record in zip(timeline, journey.records):
            assert abs(t_out - record.t) < 1e-9
