"""Property suite: chunk *streams* survive arbitrary re-enveloping.

Stream-level counterpart of tests/core/test_fragment_properties.py: a
whole builder-produced chunk stream — several external PDUs, several
TPDUs, realistic label adjacency — is fragmented per-chunk, shuffled,
and reassembled; and the Figure 4 repacking strategies are checked to
be lossless, with method 3 (reassemble-then-repack) never needing more
packets than method 2 (header-preserving repack).
"""

from __future__ import annotations

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.builder import ChunkStreamBuilder
from repro.core.chunk import Chunk
from repro.core.fragment import split_to_unit_limit
from repro.core.packet import (
    pack_chunks,
    repack,
    repack_with_reassembly,
    unpack_all,
)
from repro.core.reassemble import coalesce
from repro.core.types import HEADER_BYTES, PACKET_HEADER_BYTES, WORD_BYTES
from tests.conftest import make_payload

# Smallest MTU that can carry a packet envelope, one chunk header, and
# one atomic unit (unit_words=1 throughout this suite).
MIN_MTU = PACKET_HEADER_BYTES + HEADER_BYTES + WORD_BYTES


@st.composite
def chunk_streams(draw) -> list[Chunk]:
    """A realistic stream: frames and TPDUs deliberately unaligned."""
    tpdu_units = draw(st.integers(2, 12))
    connection_id = draw(st.integers(0, 255))
    frame_units = draw(st.lists(st.integers(1, 10), min_size=1, max_size=5))
    builder = ChunkStreamBuilder(connection_id=connection_id, tpdu_units=tpdu_units)
    chunks: list[Chunk] = []
    for frame_id, units in enumerate(frame_units):
        chunks += builder.add_frame(
            make_payload(units, 1, seed=frame_id + 1), frame_id=frame_id
        )
    return chunks


def _stream_payload(chunks: list[Chunk]) -> bytes:
    """Connection payload in C.SN order (the application's view)."""
    ordered = sorted(chunks, key=lambda ch: ch.c.sn)
    return b"".join(ch.payload for ch in ordered)


@given(chunk_streams(), st.integers(1, 6), st.integers(0, 2**32))
def test_stream_survives_fragment_shuffle_reassemble(stream, limit, shuffle_seed):
    pieces = [p for chunk in stream for p in split_to_unit_limit(chunk, limit)]
    random.Random(shuffle_seed).shuffle(pieces)
    reassembled = coalesce(pieces)
    assert reassembled == coalesce(stream)
    assert _stream_payload(reassembled) == _stream_payload(stream)


@given(chunk_streams(), st.integers(MIN_MTU, 160), st.integers(MIN_MTU, 160))
def test_repack_with_reassembly_is_lossless(stream, mtu_in, mtu_out):
    packets = pack_chunks(stream, mtu_in)
    out = repack_with_reassembly(packets, mtu_out)
    assert coalesce(unpack_all(out)) == coalesce(stream)
    assert _stream_payload(unpack_all(out)) == _stream_payload(stream)
    for packet in out:
        assert packet.wire_bytes <= mtu_out


@given(chunk_streams(), st.integers(MIN_MTU, 160), st.integers(MIN_MTU, 160))
def test_plain_repack_is_lossless(stream, mtu_in, mtu_out):
    packets = pack_chunks(stream, mtu_in)
    out = repack(packets, mtu_out)
    assert coalesce(unpack_all(out)) == coalesce(stream)
    for packet in out:
        assert packet.wire_bytes <= mtu_out


@given(chunk_streams(), st.integers(MIN_MTU, 120), st.integers(MIN_MTU, 160))
def test_reassembly_repack_never_needs_more_packets(stream, mtu_in, mtu_out):
    """Figure 4: method 3 merges headers away, so it can only do better
    than method 2 on packet count."""
    packets = pack_chunks(stream, mtu_in)
    assert len(repack_with_reassembly(packets, mtu_out)) <= len(repack(packets, mtu_out))
