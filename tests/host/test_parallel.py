"""Unit tests for TYPE demultiplexing and the parallel split."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import FragmentationError, ReproError
from repro.core.fragment import split
from repro.core.types import ChunkType
from repro.host.parallel import ProcessingUnit, TypeDemux, parallel_split
from repro.wsc.invariant import EdPayload, build_ed_chunk

from tests.conftest import make_chunk
from tests.core.test_fragment_properties import chunks as chunk_strategy


def _unit(name="u"):
    return ProcessingUnit(name=name, handler=lambda c: c.type)


class TestTypeDemux:
    def test_routes_by_type(self):
        data_unit = _unit("data")
        ed_unit = _unit("ed")
        demux = TypeDemux()
        demux.register(ChunkType.DATA, data_unit)
        demux.register(ChunkType.ERROR_DETECTION, ed_unit)
        demux.dispatch(make_chunk(units=4))
        demux.dispatch(build_ed_chunk(1, 2, EdPayload(0, 0, 4)))
        assert data_unit.chunks_handled == 1
        assert ed_unit.chunks_handled == 1

    def test_one_context_retrieval_per_chunk(self):
        """Section 2: shared TYPE/IDs mean a single context retrieval
        per chunk, not per data unit."""
        demux = TypeDemux()
        demux.register(ChunkType.DATA, _unit())
        big = make_chunk(units=100)
        demux.dispatch(big)
        assert demux.context_retrievals == 1

    def test_unrouted_type_raises(self):
        demux = TypeDemux()
        with pytest.raises(ReproError):
            demux.dispatch(make_chunk())

    def test_default_unit_catches_unrouted(self):
        fallback = _unit("default")
        demux = TypeDemux(default=fallback)
        demux.dispatch(make_chunk())
        assert fallback.chunks_handled == 1

    def test_busy_time_accounting(self):
        unit = ProcessingUnit(
            name="x", handler=lambda c: None,
            cost_per_byte=1.0, cost_per_chunk=10.0,
        )
        demux = TypeDemux()
        demux.register(ChunkType.DATA, unit)
        demux.dispatch(make_chunk(units=4))  # 16 payload bytes
        assert unit.busy_time == pytest.approx(26.0)

    def test_parallel_speedup_with_balanced_units(self):
        demux = TypeDemux()
        demux.register(ChunkType.DATA, _unit("data"))
        demux.register(ChunkType.ERROR_DETECTION, _unit("ed"))
        for index in range(10):
            demux.dispatch(make_chunk(units=3, seed=index))
            demux.dispatch(build_ed_chunk(1, index, EdPayload(0, 0, 3)))
        assert demux.speedup() > 1.0
        assert demux.serial_time() == pytest.approx(
            demux.units[ChunkType.DATA].busy_time
            + demux.units[ChunkType.ERROR_DETECTION].busy_time
        )

    def test_results_collected_per_unit(self):
        unit = ProcessingUnit(name="sum", handler=lambda c: c.payload_bytes)
        demux = TypeDemux()
        demux.register(ChunkType.DATA, unit)
        demux.dispatch_all([make_chunk(units=2), make_chunk(units=5, c_sn=2, t_sn=2, x_sn=2)])
        assert unit.results == [8, 20]


class TestParallelSplit:
    def test_matches_sequential_split(self):
        chunk = make_chunk(units=9, c_st=True, t_st=True, x_st=True)
        assert parallel_split(chunk, 4) == split(chunk, 4)

    @given(chunk_strategy(max_units=32), st.data())
    @settings(max_examples=60)
    def test_matches_sequential_split_property(self, chunk, data):
        if chunk.length < 2:
            return
        cut = data.draw(st.integers(1, chunk.length - 1))
        assert parallel_split(chunk, cut) == split(chunk, cut)

    def test_control_chunk_rejected(self):
        with pytest.raises(FragmentationError):
            parallel_split(build_ed_chunk(1, 2, EdPayload(0, 0, 2)), 1)

    def test_bad_cut_rejected(self):
        with pytest.raises(FragmentationError):
            parallel_split(make_chunk(units=3), 3)
