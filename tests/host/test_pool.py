"""Global pool lending and the elastic per-shard budgets it backs."""

from __future__ import annotations

import pytest

from repro.host.budget import BudgetExceededError
from repro.host.pool import GlobalBudgetPool, ShardBudget

KiB = 1024


def make_pool(**overrides) -> GlobalBudgetPool:
    defaults = dict(pool_bytes=64 * KiB, block_bytes=8 * KiB, min_share_bytes=1 * KiB)
    defaults.update(overrides)
    return GlobalBudgetPool(**defaults)


class TestGlobalBudgetPool:
    def test_lend_rounds_up_to_whole_blocks(self):
        pool = make_pool()
        assert pool.lend(0, 1) == 8 * KiB
        assert pool.lend(1, 8 * KiB) == 8 * KiB
        assert pool.lend(2, 8 * KiB + 1) == 16 * KiB
        assert pool.lent_total == 32 * KiB
        assert pool.available == 32 * KiB
        assert pool.lends == 3

    def test_partial_grant_when_a_whole_block_no_longer_fits(self):
        pool = make_pool(pool_bytes=12 * KiB)
        assert pool.lend(0, 8 * KiB) == 8 * KiB
        # 4 KiB left: a block-rounded 8 KiB doesn't fit, but the raw
        # request does — grant exactly what remains.
        assert pool.lend(1, 3 * KiB) == 4 * KiB
        assert pool.available == 0

    def test_exhausted_pool_refuses_and_counts(self):
        pool = make_pool(pool_bytes=8 * KiB)
        assert pool.lend(0, 8 * KiB) == 8 * KiB
        assert pool.lend(1, 1) == 0
        assert pool.refusals == 1
        assert pool.lent_to(1) == 0

    def test_lend_validates_and_ignores_zero(self):
        pool = make_pool()
        with pytest.raises(ValueError):
            pool.lend(0, -1)
        assert pool.lend(0, 0) == 0
        assert pool.lends == 0

    def test_reclaim_clamps_to_the_shards_loan(self):
        pool = make_pool()
        pool.lend(0, 8 * KiB)
        assert pool.reclaim(0, 64 * KiB) == 8 * KiB
        assert pool.lent_total == 0
        assert pool.lent_to(0) == 0
        # A shard that borrowed nothing returns nothing.
        assert pool.reclaim(5, 8 * KiB) == 0
        with pytest.raises(ValueError):
            pool.reclaim(0, -1)

    def test_peak_lent_tracks_the_high_watermark(self):
        pool = make_pool()
        pool.lend(0, 16 * KiB)
        pool.lend(1, 16 * KiB)
        pool.reclaim(0, 16 * KiB)
        pool.lend(2, 8 * KiB)
        assert pool.peak_lent == 32 * KiB
        assert pool.lent_total == 24 * KiB

    def test_shard_budget_starts_empty_with_a_fixed_share(self):
        pool = make_pool()
        budget = pool.shard_budget(3, num_shards=4)
        assert budget.pool_bytes == 0
        assert budget.shard_index == 3
        assert budget.share_bytes == 16 * KiB
        assert budget.min_share_bytes == pool.min_share_bytes
        with pytest.raises(ValueError):
            pool.shard_budget(0, num_shards=0)


class TestShardBudget:
    def test_fair_share_is_based_on_the_endpoint_share(self):
        pool = make_pool()
        budget = pool.shard_budget(0, num_shards=4)
        # Before any borrowing the cap is the full 16 KiB share, not the
        # zero bytes of backing the shard currently holds.
        assert budget.fair_share() == 16 * KiB
        assert budget.register("a")
        assert budget.register("b")
        assert budget.fair_share() == 8 * KiB

    def test_reserve_borrows_blocks_lazily(self):
        pool = make_pool()
        budget = pool.shard_budget(0, num_shards=4)
        assert budget.reserve("a", 1 * KiB)
        assert budget.pool_bytes == 8 * KiB  # one block borrowed
        assert pool.lent_to(0) == 8 * KiB
        # The next reservations fit in the borrowed block: no new lend.
        assert budget.reserve("a", 4 * KiB)
        assert pool.lends == 1

    def test_fair_share_refusal_never_borrows(self):
        pool = make_pool()
        budget = pool.shard_budget(0, num_shards=4)
        # 20 KiB exceeds the 16 KiB shard share outright.
        assert not budget.reserve("a", 20 * KiB)
        assert budget.refusals == 1
        assert pool.lends == 0
        assert pool.lent_total == 0

    def test_release_returns_surplus_whole_blocks(self):
        pool = make_pool()
        budget = pool.shard_budget(0, num_shards=4)
        assert budget.reserve("a", 6 * KiB)
        assert budget.reserve("b", 6 * KiB)
        assert budget.pool_bytes == 16 * KiB
        budget.release("a")
        # 6 KiB still reserved -> keep one block, return one.
        assert budget.pool_bytes == 8 * KiB
        assert pool.lent_to(0) == 8 * KiB
        budget.release("b")
        assert budget.pool_bytes == 0
        assert pool.lent_total == 0  # fully reclaimed

    def test_partial_release_keeps_backing_for_live_bytes(self):
        pool = make_pool()
        budget = pool.shard_budget(0, num_shards=4)
        assert budget.reserve("a", 16 * KiB)
        assert budget.release_bytes("a", 7 * KiB) == 7 * KiB
        # 9 KiB live -> two blocks stay borrowed.
        assert budget.pool_bytes == 16 * KiB
        assert budget.release_bytes("a", 9 * KiB) == 9 * KiB
        assert budget.pool_bytes == 0

    def test_admission_checks_what_the_shard_could_borrow(self):
        pool = make_pool(pool_bytes=4 * KiB, block_bytes=1 * KiB)
        budget = pool.shard_budget(0, num_shards=1)
        for key in range(4):
            assert budget.register(key)
        # A fifth minimum share cannot be backed even by borrowing.
        assert not budget.register(4)
        assert budget.was_refused(4)

    def test_dry_pool_refuses_at_admission_before_the_lend_seam(self):
        pool = make_pool(pool_bytes=8 * KiB)
        greedy = pool.shard_budget(0, num_shards=1)
        assert greedy.reserve("a", 8 * KiB)
        other = ShardBudget(
            pool_bytes=0, min_share_bytes=1 * KiB,
            pool=pool, shard_index=1, share_bytes=8 * KiB,
        )
        # Nothing left to borrow: admission itself refuses, so the pool
        # is never asked for a block it cannot grant.
        assert not other.reserve("b", 1 * KiB)
        assert other.refusals == 1
        assert pool.refusals == 0 and pool.lends == 1

    def test_pool_exhaustion_surfaces_as_a_counted_refusal(self):
        pool = make_pool(pool_bytes=12 * KiB)
        greedy = pool.shard_budget(0, num_shards=1)
        assert greedy.reserve("a", 8 * KiB)
        other = ShardBudget(
            pool_bytes=0, min_share_bytes=1 * KiB,
            pool=pool, shard_index=1, share_bytes=12 * KiB,
        )
        # 4 KiB remain, so admission passes — but an 8 KiB reservation
        # cannot be backed and the lend seam refuses it.
        assert not other.reserve("b", 8 * KiB)
        assert other.refusals == 1
        assert pool.refusals == 1
        assert pool.lent_total == 8 * KiB

    def test_leases_compose_with_elastic_backing(self):
        pool = make_pool()
        budget = pool.shard_budget(0, num_shards=4)
        with budget.acquire("a", 6 * KiB) as lease:
            assert lease.held_bytes == 6 * KiB
            assert pool.lent_to(0) == 8 * KiB
            with pytest.raises(BudgetExceededError):
                lease.grow(32 * KiB)  # beyond the shard share
        # Context exit released the lease; the key stays registered but
        # every surplus block went home.
        assert budget.held("a") == 0
        assert pool.lent_total == 0

    def test_unpooled_shard_budget_degrades_to_the_plain_budget(self):
        budget = ShardBudget(pool_bytes=8 * KiB, min_share_bytes=1 * KiB)
        assert budget.fair_share() == 8 * KiB
        assert budget.reserve("a", 8 * KiB)
        assert not budget.reserve("a", 1)
        budget.release("a")
        assert budget.pool_bytes == 8 * KiB
