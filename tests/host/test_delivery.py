"""Unit tests for placement buffers and the frame store."""

import pytest

from repro.host.delivery import FrameStore, PlacementBuffer


class TestPlacementBuffer:
    def test_in_order_placement(self):
        buffer = PlacementBuffer(total_bytes=10)
        buffer.place(0, b"hello")
        buffer.place(5, b"world")
        assert buffer.is_complete()
        assert buffer.contents() == b"helloworld"

    def test_out_of_order_placement(self):
        buffer = PlacementBuffer(total_bytes=10)
        buffer.place(5, b"world")
        assert not buffer.is_complete()
        buffer.place(0, b"hello")
        assert buffer.is_complete()
        assert buffer.contents() == b"helloworld"

    def test_fresh_byte_accounting(self):
        buffer = PlacementBuffer()
        assert buffer.place(0, b"abcd") == 4
        assert buffer.place(2, b"cdef") == 2
        assert buffer.bytes_placed == 6
        assert buffer.duplicate_bytes == 2

    def test_duplicate_overwrite_is_idempotent(self):
        buffer = PlacementBuffer()
        buffer.place(0, b"abcd")
        buffer.place(0, b"abcd")
        assert buffer.contents() == b"abcd"
        assert buffer.duplicate_bytes == 4

    def test_write_beyond_region_rejected(self):
        buffer = PlacementBuffer(total_bytes=4)
        with pytest.raises(ValueError):
            buffer.place(2, b"abc")

    def test_holes_are_zero_filled(self):
        buffer = PlacementBuffer(total_bytes=6)
        buffer.place(4, b"zz")
        assert buffer.contents() == b"\x00\x00\x00\x00zz"

    def test_missing_ranges(self):
        buffer = PlacementBuffer(total_bytes=10)
        buffer.place(3, b"abc")
        assert buffer.missing() == [(0, 3), (6, 10)]

    def test_missing_without_total_uses_span(self):
        buffer = PlacementBuffer()
        buffer.place(4, b"ab")
        assert buffer.missing() == [(0, 4)]

    def test_has_range(self):
        buffer = PlacementBuffer()
        buffer.place(2, b"abcd")
        assert buffer.has_range(2, 6)
        assert not buffer.has_range(0, 4)

    def test_empty_place_is_noop(self):
        buffer = PlacementBuffer()
        assert buffer.place(0, b"") == 0


class TestFrameStore:
    def test_frame_completion_event(self):
        store = FrameStore()
        assert not store.place(1, 0, b"abcd")
        assert store.place(1, 4, b"efgh", last=True)
        assert store.completed == [1]

    def test_out_of_order_within_frame(self):
        store = FrameStore()
        assert not store.place(1, 4, b"efgh", last=True)
        assert store.place(1, 0, b"abcd")
        assert store.frame(1).contents() == b"abcdefgh"

    def test_interleaved_frames(self):
        store = FrameStore()
        store.place(1, 0, b"aa")
        store.place(2, 0, b"bb")
        store.place(2, 2, b"cc", last=True)
        store.place(1, 2, b"dd", last=True)
        assert store.completed == [2, 1]

    def test_completion_fires_once(self):
        store = FrameStore()
        store.place(1, 0, b"ab", last=True)
        assert not store.place(1, 0, b"ab", last=True)
        assert store.completed == [1]

    def test_pop_frame(self):
        store = FrameStore()
        store.place(9, 0, b"data", last=True)
        assert store.pop_frame(9) == b"data"
        assert store.frame(9) is None
        assert store.completed == []


class TestAllocationGuards:
    def test_limit_bytes_rejects_absurd_offset(self):
        import pytest as _pytest

        buffer = PlacementBuffer(limit_bytes=1024)
        with _pytest.raises(ValueError):
            buffer.place(2**40, b"data")
        assert buffer.bytes_placed == 0

    def test_limit_bytes_allows_in_bounds(self):
        buffer = PlacementBuffer(limit_bytes=1024)
        assert buffer.place(1000, b"data" * 6) == 24

    def test_frame_store_bounds_concurrent_frames(self):
        import pytest as _pytest

        store = FrameStore(max_frames=3)
        for frame_id in range(3):
            store.place(frame_id, 0, b"xx")
        with _pytest.raises(ValueError):
            store.place(99, 0, b"xx")

    def test_frame_store_existing_frame_still_writable_at_cap(self):
        store = FrameStore(max_frames=2)
        store.place(1, 0, b"aa")
        store.place(2, 0, b"bb")
        assert store.place(1, 2, b"cc", last=True)
