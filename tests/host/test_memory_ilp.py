"""Unit tests for the bus cost model and Integrated Layer Processing."""

import pytest

from repro.host.ilp import (
    byteswap_function,
    checksum_function,
    run_integrated,
    run_layered,
    xor_decrypt_function,
)
from repro.host.memory import BusModel, TouchLedger


class TestTouchLedger:
    def test_record_and_total(self):
        ledger = TouchLedger()
        ledger.record("nic-to-app", 100)
        ledger.record("nic-to-app", 50)
        ledger.record("buffer-to-app", 25)
        assert ledger.total_bytes_moved == 175
        assert ledger.touches == {"nic-to-app": 150, "buffer-to-app": 25}

    def test_touches_per_payload_byte(self):
        ledger = TouchLedger()
        ledger.record("a", 200)
        assert ledger.touches_per_payload_byte(100) == 2.0

    def test_zero_payload(self):
        assert TouchLedger().touches_per_payload_byte(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TouchLedger().record("x", -1)

    def test_merge(self):
        a = TouchLedger()
        a.record("x", 10)
        b = TouchLedger()
        b.record("x", 5)
        b.record("y", 7)
        a.merge(b)
        assert a.touches == {"x": 15, "y": 7}


class TestBusModel:
    def test_bus_time(self):
        ledger = TouchLedger()
        ledger.record("move", 1000)
        bus = BusModel(bus_bandwidth_bps=8000)
        assert bus.bus_time(ledger) == 1.0

    def test_effective_throughput_halves_with_double_touch(self):
        bus = BusModel(bus_bandwidth_bps=400e6)
        single = TouchLedger()
        single.record("once", 1000)
        double = TouchLedger()
        double.record("in", 1000)
        double.record("out", 1000)
        t1 = bus.effective_throughput_bps(single, 1000)
        t2 = bus.effective_throughput_bps(double, 1000)
        assert t1 == pytest.approx(2 * t2)
        assert t1 == pytest.approx(400e6)

    def test_empty_ledger_is_unbounded(self):
        assert BusModel().effective_throughput_bps(TouchLedger(), 0) == float("inf")


class TestIlp:
    WORDS = [(i * 2654435761) & 0xFFFFFFFF for i in range(256)]
    STACK = [checksum_function(), xor_decrypt_function(), byteswap_function()]

    def test_results_identical(self):
        layered = run_layered(self.WORDS, self.STACK)
        integrated = run_integrated(self.WORDS, self.STACK)
        assert layered.words == integrated.words
        assert layered.accumulators == integrated.accumulators

    def test_integrated_touches_floor(self):
        integrated = run_integrated(self.WORDS, self.STACK)
        assert integrated.touches_per_byte() == pytest.approx(2.0)

    def test_layered_touches_scale_with_depth(self):
        layered = run_layered(self.WORDS, self.STACK)
        # checksum: 1 read; decrypt: read+write; byteswap: read+write = 5.
        assert layered.touches_per_byte() == pytest.approx(5.0)

    def test_touch_gap_grows_with_more_layers(self):
        deep = self.STACK + [xor_decrypt_function(0x11111111)]
        layered = run_layered(self.WORDS, deep)
        integrated = run_integrated(self.WORDS, deep)
        assert layered.touches_per_byte() == pytest.approx(7.0)
        assert integrated.touches_per_byte() == pytest.approx(2.0)

    def test_transform_only_stack(self):
        stack = [xor_decrypt_function()]
        layered = run_layered(self.WORDS, stack)
        integrated = run_integrated(self.WORDS, stack)
        assert layered.words == integrated.words == [
            w ^ 0x5A5A5A5A for w in self.WORDS
        ]

    def test_accumulate_only_stack(self):
        stack = [checksum_function()]
        layered = run_layered(self.WORDS, stack)
        integrated = run_integrated(self.WORDS, stack)
        assert layered.words == list(self.WORDS)  # untouched
        assert layered.accumulators == integrated.accumulators
        assert layered.accumulators["checksum"] != 0

    def test_byteswap_involution(self):
        once = run_integrated(self.WORDS, [byteswap_function()])
        twice = run_integrated(once.words, [byteswap_function()])
        assert twice.words == list(self.WORDS)

    def test_empty_input(self):
        result = run_integrated([], self.STACK)
        assert result.words == []
        assert result.accumulators["checksum"] == 0


class TestTouchSpan:
    def test_span_buffers_then_commits_on_release(self):
        ledger = TouchLedger()
        span = ledger.acquire("nic-to-app")
        span.add(100)
        span.add(50)
        assert span.pending_bytes == 150
        assert ledger.total_bytes_moved == 0  # nothing committed yet
        assert span.release() == 150
        assert ledger.total_bytes_moved == 150

    def test_double_release_raises(self):
        span = TouchLedger().acquire("x")
        span.release()
        with pytest.raises(ValueError):
            span.release()

    def test_add_after_release_raises(self):
        span = TouchLedger().acquire("x")
        span.release()
        with pytest.raises(ValueError):
            span.add(1)

    def test_negative_add_raises(self):
        span = TouchLedger().acquire("x")
        with pytest.raises(ValueError):
            span.add(-1)

    def test_context_manager_commits(self):
        ledger = TouchLedger()
        with ledger.acquire("copy") as span:
            span.add(64)
        assert ledger.total_bytes_moved == 64
        assert span.released

    def test_empty_span_commits_nothing(self):
        ledger = TouchLedger()
        with ledger.acquire("copy"):
            pass
        assert ledger.total_bytes_moved == 0
