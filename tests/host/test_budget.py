"""SharedPlacementBudget: fair shares, refusal-not-blocking, reclamation."""

from __future__ import annotations

import pytest

from repro.host.budget import BudgetExceededError, SharedPlacementBudget
from repro.host.delivery import FrameStore, PlacementBuffer


def test_empty_pool_offers_everything():
    budget = SharedPlacementBudget(pool_bytes=1000, min_share_bytes=100)
    assert budget.registered == 0
    assert budget.fair_share() == 1000


def test_fair_share_divides_pool_with_floor():
    budget = SharedPlacementBudget(pool_bytes=1000, min_share_bytes=100)
    for key in range(4):
        assert budget.register(key)
    assert budget.fair_share() == 250
    for key in range(4, 9):
        assert budget.register(key)
    # 1000 // 9 = 111 > floor; add one more and the floor kicks in.
    assert budget.fair_share() == max(1000 // 9, 100)
    assert budget.register(9)
    assert budget.fair_share() == 100


def test_register_refuses_when_min_shares_exceed_pool():
    budget = SharedPlacementBudget(pool_bytes=300, min_share_bytes=100)
    assert budget.register("a")
    assert budget.register("b")
    assert budget.register("c")
    assert not budget.register("d")
    assert budget.refusals == 1
    assert budget.was_refused("d")
    # Registration is idempotent for admitted keys.
    assert budget.register("a")


def test_reserve_enforces_fair_share_and_pool():
    budget = SharedPlacementBudget(pool_bytes=1000, min_share_bytes=100)
    assert budget.register("a")
    assert budget.register("b")
    assert budget.reserve("a", 400)
    assert not budget.reserve("a", 200)  # 600 > fair share 500
    assert budget.reserve("b", 500)
    assert budget.reserved_total == 900
    assert budget.peak_reserved == 900
    assert budget.held("a") == 400
    assert budget.refusals == 1


def test_reserve_auto_registers():
    budget = SharedPlacementBudget(pool_bytes=1000, min_share_bytes=100)
    assert budget.reserve("fresh", 250)
    assert budget.registered == 1
    assert budget.held("fresh") == 250


def test_release_reclaims_and_reopens_shares():
    budget = SharedPlacementBudget(pool_bytes=1000, min_share_bytes=100)
    budget.reserve("a", 500)
    budget.reserve("b", 400)
    assert not budget.reserve("b", 200)  # pool nearly full
    assert budget.release("a") == 500
    assert budget.reserved_total == 400
    assert budget.reserve("b", 200)  # b's share grew after a left
    assert budget.release("missing") == 0


def test_negative_reservation_rejected():
    budget = SharedPlacementBudget()
    with pytest.raises(ValueError):
        budget.reserve("a", -1)


def test_placement_buffer_draws_from_budget():
    budget = SharedPlacementBudget(pool_bytes=1024, min_share_bytes=64)
    buffer = PlacementBuffer(limit_bytes=None, budget=budget, budget_key=7)
    assert buffer.place(0, b"x" * 512) == 512
    assert budget.held(7) == 512
    with pytest.raises(BudgetExceededError):
        buffer.place(512, b"y" * 1024)
    # Consistent rewrites of already-grown region need no new reservation.
    assert buffer.place(0, b"x" * 512) == 0
    assert budget.held(7) == 512


def test_budget_refusal_is_a_value_error_subclass():
    # Callers that treat placement failures as chunk rejection keep
    # working unchanged.
    assert issubclass(BudgetExceededError, ValueError)


def test_frame_store_buffers_share_the_budget_key():
    budget = SharedPlacementBudget(pool_bytes=4096, min_share_bytes=64)
    store = FrameStore(budget=budget, budget_key="conn")
    store.place(1, 0, b"a" * 1024)
    store.place(2, 0, b"b" * 1024)
    assert budget.held("conn") == 2048
    with pytest.raises(BudgetExceededError):
        store.place(3, 0, b"c" * 4096)


def test_two_buffers_one_connection_compete_under_one_key():
    # The endpoint reserves both the stream region and the frame store
    # under the connection's C.ID: releasing that key frees everything.
    budget = SharedPlacementBudget(pool_bytes=8192, min_share_bytes=64)
    stream = PlacementBuffer(limit_bytes=None, budget=budget, budget_key=5)
    frames = FrameStore(budget=budget, budget_key=5)
    stream.place(0, b"s" * 1000)
    frames.place(0, 0, b"f" * 1000)
    assert budget.held(5) == 2000
    assert budget.release(5) == 2000
    assert budget.reserved_total == 0


class TestBudgetLease:
    def test_acquire_registers_and_reserves(self):
        budget = SharedPlacementBudget(pool_bytes=1000, min_share_bytes=100)
        lease = budget.acquire("a", 200)
        assert lease.key == "a"
        assert lease.held_bytes == 200
        assert budget.held("a") == 200

    def test_grow_extends_the_reservation(self):
        budget = SharedPlacementBudget(pool_bytes=1000, min_share_bytes=100)
        lease = budget.acquire("a", 100)
        lease.grow(50)
        assert lease.held_bytes == 150
        assert budget.held("a") == 150

    def test_release_returns_bytes_to_the_pool(self):
        budget = SharedPlacementBudget(pool_bytes=1000, min_share_bytes=100)
        lease = budget.acquire("a", 300)
        freed = lease.release()
        assert freed == 300
        assert budget.held("a") == 0
        assert lease.released

    def test_double_release_raises(self):
        budget = SharedPlacementBudget(pool_bytes=1000, min_share_bytes=100)
        lease = budget.acquire("a", 100)
        lease.release()
        with pytest.raises(ValueError):
            lease.release()

    def test_grow_after_release_raises(self):
        budget = SharedPlacementBudget(pool_bytes=1000, min_share_bytes=100)
        lease = budget.acquire("a", 100)
        lease.release()
        with pytest.raises(ValueError):
            lease.grow(10)

    def test_refused_acquire_raises_and_counts(self):
        budget = SharedPlacementBudget(pool_bytes=300, min_share_bytes=100)
        budget.register("a")
        budget.register("b")
        budget.register("c")
        with pytest.raises(BudgetExceededError):
            budget.acquire("d", 10)
        assert budget.was_refused("d")

    def test_context_manager_releases_once(self):
        budget = SharedPlacementBudget(pool_bytes=1000, min_share_bytes=100)
        with budget.acquire("a", 100) as lease:
            assert budget.held("a") == 100
        assert budget.held("a") == 0
        assert lease.released

    def test_context_manager_respects_manual_release(self):
        budget = SharedPlacementBudget(pool_bytes=1000, min_share_bytes=100)
        with budget.acquire("a", 100) as lease:
            lease.release()
        assert lease.released  # __exit__ did not double-release

    def test_release_after_wholesale_evict_is_clamped(self):
        # sweep() releases a connection's whole key; a straggler lease
        # releasing afterwards must not double-subtract from the pool.
        budget = SharedPlacementBudget(pool_bytes=1000, min_share_bytes=100)
        lease = budget.acquire("a", 300)
        budget.release("a")  # wholesale eviction
        assert budget.reserved_total == 0
        lease.release()
        assert budget.reserved_total == 0

    def test_placement_buffer_grows_one_lease_in_place(self):
        budget = SharedPlacementBudget(pool_bytes=1000, min_share_bytes=100)
        buffer = PlacementBuffer(limit_bytes=None, budget=budget, budget_key="k")
        buffer.place(0, b"x" * 100)
        buffer.place(100, b"y" * 100)
        assert budget.held("k") == 200
