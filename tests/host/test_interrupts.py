"""Unit tests for the per-packet vs per-PDU interrupt models."""

import random

from repro.core.builder import ChunkStreamBuilder
from repro.core.fragment import split_to_unit_limit
from repro.core.packet import pack_chunks
from repro.host.interrupts import PerPacketNic, PerPduNic

from tests.conftest import make_payload


def _frames(tpdus=4, tpdu_units=64, mtu=296, shuffle_seed=None):
    builder = ChunkStreamBuilder(connection_id=1, tpdu_units=tpdu_units)
    chunks = []
    for index in range(tpdus):
        chunks += builder.add_frame(make_payload(tpdu_units, seed=index), frame_id=index)
    pieces = [p for c in chunks for p in split_to_unit_limit(c, 16)]
    frames = [p.encode() for p in pack_chunks(pieces, mtu)]
    if shuffle_seed is not None:
        random.Random(shuffle_seed).shuffle(frames)
    return frames, tpdus


class TestPerPacketNic:
    def test_one_interrupt_per_packet(self):
        frames, _ = _frames()
        nic = PerPacketNic()
        for frame in frames:
            assert nic.on_packet(frame) == 1
        assert nic.interrupts == len(frames)
        assert nic.cpu_seconds == len(frames) * nic.interrupt_cost


class TestPerPduNic:
    def test_one_interrupt_per_tpdu(self):
        frames, tpdus = _frames()
        nic = PerPduNic()
        for frame in frames:
            nic.on_packet(frame)
        assert nic.interrupts == tpdus
        assert sorted(nic.completed_tpdus) == list(range(tpdus))

    def test_disordered_arrivals_still_one_per_tpdu(self):
        frames, tpdus = _frames(shuffle_seed=3)
        nic = PerPduNic()
        for frame in frames:
            nic.on_packet(frame)
        assert nic.interrupts == tpdus

    def test_reduction_factor(self):
        """The Davie-interface payoff: interrupts scale with PDUs, not
        packets; more fragmentation widens the gap."""
        frames, tpdus = _frames(mtu=128)
        per_packet = PerPacketNic()
        per_pdu = PerPduNic()
        for frame in frames:
            per_packet.on_packet(frame)
            per_pdu.on_packet(frame)
        assert per_pdu.interrupts == tpdus
        assert per_packet.interrupts == len(frames)
        assert per_packet.interrupts / per_pdu.interrupts >= 4

    def test_garbage_frame_raises_error_interrupt(self):
        nic = PerPduNic()
        assert nic.on_packet(b"not a packet") == 1
        assert nic.error_interrupts == 1

    def test_incomplete_tpdu_raises_nothing(self):
        frames, _ = _frames(tpdus=1)
        nic = PerPduNic()
        for frame in frames[:-1]:
            nic.on_packet(frame)
        assert nic.interrupts == 0
        nic.on_packet(frames[-1])
        assert nic.interrupts == 1

    def test_duplicates_do_not_reinterrupt(self):
        frames, tpdus = _frames()
        nic = PerPduNic()
        for frame in frames + frames:
            nic.on_packet(frame)
        assert nic.interrupts == tpdus
