"""Unit tests for the three Section 3.3 receiver architectures."""

import random

import pytest

from repro.core.builder import ChunkStreamBuilder
from repro.core.fragment import split_to_unit_limit
from repro.host.receiver import (
    ImmediateReceiver,
    ReassembleReceiver,
    ReorderReceiver,
)

from tests.conftest import make_payload


def _timed_chunks(tpdu_units=8, frames=4, shuffle_seed=None, dt=0.01):
    """(time, chunk) arrivals for a multi-TPDU stream, single units."""
    builder = ChunkStreamBuilder(connection_id=1, tpdu_units=tpdu_units)
    chunks = []
    payload = b""
    for i in range(frames):
        data = make_payload(tpdu_units, seed=i)
        payload += data
        chunks += builder.add_frame(data, frame_id=i)
    pieces = [p for c in chunks for p in split_to_unit_limit(c, 2)]
    if shuffle_seed is not None:
        random.Random(shuffle_seed).shuffle(pieces)
    return [(i * dt, p) for i, p in enumerate(pieces)], payload


def _run(receiver, arrivals):
    last = 0.0
    for time, chunk in arrivals:
        receiver.on_chunk(time, chunk)
        last = time
    receiver.finish(last)
    return receiver


class TestImmediate:
    def test_one_touch_per_byte(self):
        arrivals, payload = _timed_chunks(shuffle_seed=3)
        receiver = _run(ImmediateReceiver(), arrivals)
        assert receiver.touches_per_byte() == pytest.approx(1.0)

    def test_zero_added_latency(self):
        arrivals, _ = _timed_chunks(shuffle_seed=3)
        receiver = _run(ImmediateReceiver(), arrivals)
        assert receiver.mean_added_latency() == 0.0
        assert receiver.max_added_latency() == 0.0

    def test_stream_correct_under_disorder(self):
        arrivals, payload = _timed_chunks(shuffle_seed=5)
        receiver = _run(ImmediateReceiver(), arrivals)
        assert receiver.app.contents() == payload

    def test_duplicates_not_retouched(self):
        arrivals, payload = _timed_chunks()
        arrivals = arrivals + arrivals[:4]
        receiver = _run(ImmediateReceiver(), arrivals)
        assert receiver.ledger.total_bytes_moved == len(payload)


class TestReorder:
    def test_in_order_stream_single_touch(self):
        arrivals, payload = _timed_chunks(shuffle_seed=None)
        receiver = _run(ReorderReceiver(), arrivals)
        assert receiver.touches_per_byte() == pytest.approx(1.0)
        assert receiver.app.contents() == payload

    def test_disordered_stream_extra_touches(self):
        arrivals, payload = _timed_chunks(shuffle_seed=5)
        receiver = _run(ReorderReceiver(), arrivals)
        assert receiver.touches_per_byte() > 1.0
        assert receiver.app.contents() == payload

    def test_added_latency_positive_under_disorder(self):
        arrivals, _ = _timed_chunks(shuffle_seed=5)
        receiver = _run(ReorderReceiver(), arrivals)
        assert receiver.mean_added_latency() > 0.0

    def test_delivery_is_in_order(self):
        arrivals, _ = _timed_chunks(shuffle_seed=5)
        receiver = _run(ReorderReceiver(), arrivals)
        offsets = [e.offset for e in receiver.events]
        assert offsets == sorted(offsets)

    def test_peak_buffer_under_disorder(self):
        arrivals, _ = _timed_chunks(shuffle_seed=5)
        receiver = _run(ReorderReceiver(), arrivals)
        assert receiver.peak_buffer_bytes > 0


class TestReassemble:
    def test_two_touches_per_byte(self):
        arrivals, _ = _timed_chunks(shuffle_seed=3)
        receiver = _run(ReassembleReceiver(), arrivals)
        assert receiver.touches_per_byte() == pytest.approx(2.0)

    def test_stream_correct(self):
        arrivals, payload = _timed_chunks(shuffle_seed=3)
        receiver = _run(ReassembleReceiver(), arrivals)
        assert receiver.app.contents() == payload

    def test_delivery_waits_for_tpdu_completion(self):
        arrivals, _ = _timed_chunks(shuffle_seed=None)
        receiver = _run(ReassembleReceiver(), arrivals)
        # Even in order, bytes early in a TPDU wait for the TPDU's end.
        assert receiver.mean_added_latency() > 0.0

    def test_delivery_granularity_is_tpdu(self):
        arrivals, _ = _timed_chunks(tpdu_units=8, shuffle_seed=None)
        receiver = _run(ReassembleReceiver(), arrivals)
        sizes = {e.nbytes for e in receiver.events}
        assert sizes == {8 * 4}


class TestComparative:
    """The Section 3.3 ordering: immediate <= reorder <= reassemble."""

    def test_touch_ordering_under_disorder(self):
        results = {}
        for name, cls in (
            ("immediate", ImmediateReceiver),
            ("reorder", ReorderReceiver),
            ("reassemble", ReassembleReceiver),
        ):
            arrivals, _ = _timed_chunks(frames=8, shuffle_seed=7)
            results[name] = _run(cls(), arrivals).touches_per_byte()
        assert results["immediate"] <= results["reorder"] <= results["reassemble"]
        assert results["immediate"] == pytest.approx(1.0)
        assert results["reassemble"] == pytest.approx(2.0)

    def test_latency_ordering_under_disorder(self):
        results = {}
        for name, cls in (
            ("immediate", ImmediateReceiver),
            ("reorder", ReorderReceiver),
            ("reassemble", ReassembleReceiver),
        ):
            arrivals, _ = _timed_chunks(frames=8, shuffle_seed=7)
            results[name] = _run(cls(), arrivals).mean_added_latency()
        assert results["immediate"] == 0.0
        assert results["reorder"] > 0.0
        assert results["reassemble"] > 0.0

    def test_all_strategies_agree_on_content(self):
        contents = set()
        for cls in (ImmediateReceiver, ReorderReceiver, ReassembleReceiver):
            arrivals, payload = _timed_chunks(frames=6, shuffle_seed=2)
            receiver = _run(cls(), arrivals)
            contents.add(receiver.app.contents())
        assert contents == {payload}
