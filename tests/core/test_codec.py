"""Unit tests for the fixed-field wire codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import codec
from repro.core.errors import CodecError
from repro.core.types import HEADER_BYTES, ChunkType
from repro.wsc.invariant import EdPayload, build_ed_chunk

from tests.conftest import make_chunk
from tests.core.test_fragment_properties import chunks


class TestChunkRoundTrip:
    def test_simple_roundtrip(self):
        chunk = make_chunk(units=5)
        data = codec.encode_chunk(chunk)
        decoded, offset = codec.decode_chunk(data)
        assert decoded == chunk
        assert offset == len(data)

    def test_header_is_44_bytes(self):
        chunk = make_chunk(units=1)
        assert len(codec.encode_chunk(chunk)) == HEADER_BYTES + 4

    def test_st_flag_bits_roundtrip(self):
        for c_st in (False, True):
            for t_st in (False, True):
                for x_st in (False, True):
                    chunk = make_chunk(units=2, c_st=c_st, t_st=t_st, x_st=x_st)
                    decoded, _ = codec.decode_chunk(codec.encode_chunk(chunk))
                    assert (decoded.c.st, decoded.t.st, decoded.x.st) == (
                        c_st, t_st, x_st,
                    )

    def test_control_chunk_roundtrip(self):
        ed = build_ed_chunk(3, 4, EdPayload(0xDEADBEEF, 0xCAFEF00D, 77))
        decoded, _ = codec.decode_chunk(codec.encode_chunk(ed))
        assert decoded == ed

    def test_large_sns_roundtrip(self):
        chunk = make_chunk(units=1, c_sn=2**40, t_sn=2**33, x_sn=2**50)
        decoded, _ = codec.decode_chunk(codec.encode_chunk(chunk))
        assert decoded == chunk

    @given(chunks(max_units=16))
    def test_roundtrip_property(self, chunk):
        decoded, offset = codec.decode_chunk(codec.encode_chunk(chunk))
        assert decoded == chunk


class TestDecodeErrors:
    def test_unknown_type_raises(self):
        data = bytearray(codec.encode_chunk(make_chunk(units=1)))
        data[0] = 0x7F
        with pytest.raises(CodecError):
            codec.decode_chunk(bytes(data))

    def test_truncated_payload_raises(self):
        data = codec.encode_chunk(make_chunk(units=4))
        with pytest.raises(CodecError):
            codec.decode_chunk(data[:-3])

    def test_zero_size_raises(self):
        data = bytearray(codec.encode_chunk(make_chunk(units=1)))
        data[2] = data[3] = 0  # SIZE field
        with pytest.raises(CodecError):
            codec.decode_chunk(bytes(data))

    def test_short_buffer_is_padding_not_error(self):
        chunk, offset = codec.decode_chunk(b"\x01" * 10)
        assert chunk is None
        assert offset == 10


class TestSentinel:
    def test_len_zero_is_sentinel(self):
        chunk, _ = codec.decode_chunk(codec.SENTINEL_HEADER)
        assert chunk is None

    def test_type_zero_is_sentinel(self):
        data = bytearray(codec.encode_chunk(make_chunk(units=1)))
        data[0] = 0
        chunk, _ = codec.decode_chunk(bytes(data))
        assert chunk is None

    def test_decode_chunks_stops_at_sentinel(self):
        first = make_chunk(units=2)
        blob = (
            codec.encode_chunk(first)
            + codec.SENTINEL_HEADER
            + codec.encode_chunk(make_chunk(units=3))
        )
        assert codec.decode_chunks(blob) == [first]


class TestEncodeChunks:
    def test_multi_chunk_roundtrip(self):
        items = [make_chunk(units=u, seed=u) for u in (1, 2, 3)]
        assert codec.decode_chunks(codec.encode_chunks(items)) == items

    def test_pad_to_inserts_sentinel(self):
        items = [make_chunk(units=1)]
        blob = codec.encode_chunks(items, pad_to=200)
        assert len(blob) == 200
        assert codec.decode_chunks(blob) == items

    def test_pad_to_small_slack_zero_fills(self):
        items = [make_chunk(units=1)]
        natural = len(codec.encode_chunks(items))
        blob = codec.encode_chunks(items, pad_to=natural + 10)
        assert len(blob) == natural + 10
        assert codec.decode_chunks(blob) == items

    def test_pad_to_exact_fit(self):
        items = [make_chunk(units=1)]
        natural = len(codec.encode_chunks(items))
        assert codec.encode_chunks(items, pad_to=natural) == codec.encode_chunks(items)

    def test_pad_to_too_small_raises(self):
        with pytest.raises(CodecError):
            codec.encode_chunks([make_chunk(units=10)], pad_to=20)


class TestPacketHeader:
    def test_roundtrip(self):
        blob = codec.encode_packet_header(flags=5)
        assert codec.decode_packet_header(blob) == 5

    def test_bad_magic(self):
        with pytest.raises(CodecError):
            codec.decode_packet_header(b"\x00\x00\x00\x00")

    def test_short_header(self):
        with pytest.raises(CodecError):
            codec.decode_packet_header(b"\xc4")
