"""Unit tests for Huffman coding and packet-scope header compression."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import ChunkStreamBuilder
from repro.core.codec import encode_chunk
from repro.core.compress import CompressionProfile
from repro.core.errors import CodecError
from repro.core.fragment import split_to_unit_limit
from repro.core.huffman import DEFAULT_HEADER_CODE, HuffmanCode
from repro.core.packet import pack_chunks
from repro.core.packetcomp import CompressedPacketCodec
from repro.core.types import ChunkType
from repro.wsc.invariant import encode_tpdu

from tests.conftest import make_payload


class TestHuffmanCode:
    def test_roundtrip_simple(self):
        code = HuffmanCode.from_sample(b"aaaabbbcc" * 10)
        packed, bits = code.encode(b"abcabc")
        assert code.decode(packed, bits) == b"abcabc"

    def test_roundtrip_all_bytes(self):
        code = HuffmanCode.from_sample(bytes(range(256)) * 2)
        data = bytes(range(256))
        packed, bits = code.encode(data)
        assert code.decode(packed, bits) == data

    def test_skewed_input_compresses(self):
        sample = b"\x00" * 900 + bytes(range(100))
        code = HuffmanCode.from_sample(sample)
        packed, bits = code.encode(sample)
        assert len(packed) < len(sample) / 2

    def test_frequent_symbols_get_short_codes(self):
        code = HuffmanCode.from_sample(b"\x00" * 1000 + b"\xff" * 10)
        assert code.lengths[0x00] < code.lengths[0xFF]

    def test_empty_encode(self):
        packed, bits = DEFAULT_HEADER_CODE.encode(b"")
        assert bits == 0
        assert DEFAULT_HEADER_CODE.decode(packed, 0) == b""

    def test_every_byte_encodable_with_default(self):
        data = bytes(range(256))
        packed, bits = DEFAULT_HEADER_CODE.encode(data)
        assert DEFAULT_HEADER_CODE.decode(packed, bits) == data

    def test_bad_frequency_table_length(self):
        with pytest.raises(ValueError):
            HuffmanCode.from_frequencies([1] * 100)

    def test_truncated_bitstream_raises(self):
        code = HuffmanCode.from_sample(b"abcdefgh" * 4)
        packed, bits = code.encode(b"abcdefgh")
        with pytest.raises(ValueError):
            code.decode(packed, bits - 3)

    @given(st.binary(min_size=1, max_size=300))
    @settings(max_examples=60)
    def test_roundtrip_property(self, data):
        packed, bits = DEFAULT_HEADER_CODE.encode(data)
        assert DEFAULT_HEADER_CODE.decode(packed, bits) == data

    def test_mean_bits_estimate(self):
        header_like = b"\x00" * 50 + bytes(range(1, 16)) * 4
        assert DEFAULT_HEADER_CODE.mean_bits_per_byte(header_like) < 8.0


def _traffic(fragment_limit=None):
    builder = ChunkStreamBuilder(connection_id=7, tpdu_units=24)
    chunks = []
    for index in range(4):
        frame = builder.add_frame(make_payload(12, seed=index), frame_id=index)
        chunks += frame
        if frame[-1].t.st:
            chunks.append(encode_tpdu(
                [c for c in chunks if c.is_data and c.t.ident == frame[-1].t.ident]
            )[1])
    if fragment_limit:
        out = []
        for chunk in chunks:
            if chunk.is_data:
                out.extend(split_to_unit_limit(chunk, fragment_limit))
            else:
                out.append(chunk)
        chunks = out
    return chunks


class TestCompressedPacketCodec:
    def test_roundtrip(self):
        chunks = _traffic()
        codec = CompressedPacketCodec()
        assert codec.decode(codec.encode(chunks)) == chunks

    def test_roundtrip_fragmented(self):
        chunks = _traffic(fragment_limit=3)
        codec = CompressedPacketCodec()
        assert codec.decode(codec.encode(chunks)) == chunks

    def test_roundtrip_with_profile(self):
        chunks = _traffic(fragment_limit=4)
        codec = CompressedPacketCodec(
            CompressionProfile(
                size_by_type={ChunkType.DATA: 1, ChunkType.ERROR_DETECTION: 1},
                connection_id=7,
            )
        )
        assert codec.decode(codec.encode(chunks)) == chunks

    def test_compresses_versus_fixed_headers(self):
        chunks = _traffic(fragment_limit=2)  # many headers
        codec = CompressedPacketCodec(CompressionProfile(connection_id=7))
        fixed = sum(len(encode_chunk(c)) for c in chunks)
        compact = len(codec.encode(chunks))
        payload = sum(c.payload_bytes for c in chunks)
        assert (compact - payload) < (fixed - payload) / 4

    def test_packets_decode_independently(self):
        """Unlike stream-scope SN regeneration, each packet carries its
        own context: decoding packet 2 without packet 1 works."""
        chunks = _traffic(fragment_limit=3)
        half = len(chunks) // 2
        codec = CompressedPacketCodec()
        first = codec.encode(chunks[:half])
        second = codec.encode(chunks[half:])
        fresh = CompressedPacketCodec()
        assert fresh.decode(second) == chunks[half:]
        assert fresh.decode(first) == chunks[:half]

    def test_truncated_raises(self):
        codec = CompressedPacketCodec()
        blob = codec.encode(_traffic())
        with pytest.raises(CodecError):
            codec.decode(blob[: len(blob) // 2])

    def test_garbage_raises(self):
        codec = CompressedPacketCodec()
        with pytest.raises(CodecError):
            codec.decode(b"\x05\xff\x00\x01\x02")

    @given(st.integers(0, 40), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, seed, limit):
        builder = ChunkStreamBuilder(connection_id=1, tpdu_units=10)
        chunks = []
        rng = random.Random(seed)
        for index in range(rng.randrange(1, 4)):
            chunks += builder.add_frame(
                make_payload(rng.randrange(1, 15), seed=seed + index),
                frame_id=index,
            )
        pieces = []
        for chunk in chunks:
            pieces.extend(split_to_unit_limit(chunk, limit))
        codec = CompressedPacketCodec()
        assert codec.decode(codec.encode(pieces)) == pieces

    def test_interoperates_with_packing(self):
        """Compress exactly what a normal packet would carry."""
        chunks = _traffic(fragment_limit=4)
        for packet in pack_chunks(chunks, 256):
            codec = CompressedPacketCodec()
            blob = codec.encode(packet.chunks)
            assert codec.decode(blob) == packet.chunks
            assert len(blob) < sum(c.wire_bytes for c in packet.chunks)
