"""Unit tests for packet envelopes and the Figure 4 repacking methods."""

import pytest

from repro.core.errors import PacketError
from repro.core.fragment import split_to_unit_limit
from repro.core.packet import (
    Packet,
    pack_chunks,
    repack,
    repack_one_per_packet,
    repack_with_reassembly,
    unpack_all,
)
from repro.core.types import PACKET_HEADER_BYTES

from tests.conftest import make_chunk


class TestPacket:
    def test_wire_bytes(self):
        chunk = make_chunk(units=2)
        packet = Packet(chunks=[chunk])
        assert packet.wire_bytes == PACKET_HEADER_BYTES + chunk.wire_bytes

    def test_fixed_size_wire_bytes(self):
        packet = Packet(chunks=[make_chunk(units=1)], fixed_size=512)
        assert packet.wire_bytes == 512

    def test_encode_decode_roundtrip(self):
        items = [make_chunk(units=u, seed=u) for u in (2, 1, 4)]
        packet = Packet(chunks=items)
        assert Packet.decode(packet.encode()).chunks == items

    def test_fixed_size_roundtrip_with_padding(self):
        packet = Packet(chunks=[make_chunk(units=1)], fixed_size=300)
        blob = packet.encode()
        assert len(blob) == 300
        assert Packet.decode(blob).chunks == packet.chunks

    def test_header_overhead_accounting(self):
        chunk = make_chunk(units=10)
        packet = Packet(chunks=[chunk])
        assert packet.payload_bytes == 40
        assert packet.header_overhead == packet.wire_bytes - 40


class TestPackChunks:
    def test_all_chunks_packed(self):
        items = [make_chunk(units=3, seed=i) for i in range(10)]
        packets = pack_chunks(items, mtu=1500)
        assert unpack_all(packets) == items

    def test_respects_mtu(self):
        items = [make_chunk(units=30, seed=i) for i in range(5)]
        for packet in pack_chunks(items, mtu=256):
            assert packet.wire_bytes <= 256

    def test_fragments_oversized_chunks(self):
        big = make_chunk(units=200)
        packets = pack_chunks([big], mtu=256)
        assert len(packets) > 1
        payload = b"".join(c.payload for p in packets for c in p.chunks)
        assert payload == big.payload

    def test_combines_small_chunks(self):
        items = [make_chunk(units=1, seed=i) for i in range(8)]
        packets = pack_chunks(items, mtu=1500)
        assert len(packets) == 1

    def test_tiny_mtu_raises(self):
        with pytest.raises(PacketError):
            pack_chunks([make_chunk(units=1)], mtu=40)

    def test_fixed_size_mode(self):
        packets = pack_chunks([make_chunk(units=1)], mtu=128, fixed_size=True)
        assert all(p.wire_bytes == 128 for p in packets)


class TestFigure4Methods:
    """Small packets entering a large-MTU network, three ways."""

    def _small_packets(self):
        chunk = make_chunk(units=24, t_st=True)
        pieces = split_to_unit_limit(chunk, 4)
        return chunk, [Packet(chunks=[p]) for p in pieces]

    def test_method1_one_chunk_per_packet(self):
        chunk, small = self._small_packets()
        large = repack_one_per_packet(small, mtu=4096)
        assert len(large) == len(small)
        assert all(len(p.chunks) == 1 for p in large)

    def test_method2_combines_without_touching_headers(self):
        chunk, small = self._small_packets()
        large = repack(small, mtu=4096)
        assert len(large) == 1
        assert unpack_all(large) == unpack_all(small)  # headers unchanged

    def test_method3_reassembles_first(self):
        chunk, small = self._small_packets()
        large = repack_with_reassembly(small, mtu=4096)
        assert len(large) == 1
        assert large[0].chunks == [chunk]  # merged back to one chunk

    def test_method3_has_least_overhead(self):
        _, small = self._small_packets()
        bytes_m1 = sum(p.wire_bytes for p in repack_one_per_packet(small, 4096))
        bytes_m2 = sum(p.wire_bytes for p in repack(small, 4096))
        bytes_m3 = sum(p.wire_bytes for p in repack_with_reassembly(small, 4096))
        assert bytes_m3 < bytes_m2 < bytes_m1

    def test_method1_oversized_chunk_raises(self):
        big = make_chunk(units=100)
        with pytest.raises(PacketError):
            repack_one_per_packet([Packet(chunks=[big])], mtu=128)

    def test_repack_toward_smaller_mtu_fragments(self):
        chunk = make_chunk(units=64)
        small = repack([Packet(chunks=[chunk])], mtu=128)
        assert len(small) > 1
        for packet in small:
            assert packet.wire_bytes <= 128
