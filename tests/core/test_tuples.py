"""Unit tests for framing tuples."""

import pytest

from repro.core.tuples import FramingTuple


class TestConstruction:
    def test_defaults(self):
        t = FramingTuple(5, 7)
        assert t.ident == 5
        assert t.sn == 7
        assert t.st is False

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            FramingTuple(-1, 0)

    def test_negative_sn_rejected(self):
        with pytest.raises(ValueError):
            FramingTuple(0, -3)

    def test_frozen(self):
        t = FramingTuple(1, 2)
        with pytest.raises(AttributeError):
            t.sn = 9  # type: ignore[misc]

    def test_equality_and_hash(self):
        assert FramingTuple(1, 2, True) == FramingTuple(1, 2, True)
        assert FramingTuple(1, 2, True) != FramingTuple(1, 2, False)
        assert len({FramingTuple(1, 2), FramingTuple(1, 2)}) == 1


class TestFragmentDerivation:
    def test_advanced_moves_sn_and_clears_st(self):
        t = FramingTuple(9, 100, st=True)
        adv = t.advanced(25)
        assert adv == FramingTuple(9, 125, st=False)

    def test_head_clears_st_only(self):
        t = FramingTuple(9, 100, st=True)
        assert t.head() == FramingTuple(9, 100, st=False)

    def test_tail_preserves_st(self):
        assert FramingTuple(9, 100, st=True).tail(10) == FramingTuple(9, 110, st=True)
        assert FramingTuple(9, 100, st=False).tail(10) == FramingTuple(9, 110, st=False)

    def test_head_of_clear_st_is_identity(self):
        t = FramingTuple(3, 4, st=False)
        assert t.head() == t


class TestAdjacency:
    def test_follows_true(self):
        a = FramingTuple(1, 10)
        b = FramingTuple(1, 17)
        assert b.follows(a, 7)

    def test_follows_wrong_gap(self):
        assert not FramingTuple(1, 18).follows(FramingTuple(1, 10), 7)

    def test_follows_wrong_id(self):
        assert not FramingTuple(2, 17).follows(FramingTuple(1, 10), 7)

    def test_follows_ignores_st(self):
        a = FramingTuple(1, 0, st=True)
        b = FramingTuple(1, 4, st=True)
        assert b.follows(a, 4)
