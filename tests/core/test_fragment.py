"""Unit tests for the Appendix C fragmentation algorithm."""

import pytest

from repro.core.errors import FragmentationError
from repro.core.fragment import fragment_for_mtu, split, split_to_unit_limit
from repro.core.types import HEADER_BYTES, PACKET_HEADER_BYTES, ChunkType
from repro.wsc.invariant import EdPayload, build_ed_chunk

from tests.conftest import make_chunk


class TestSplit:
    def test_payload_partition(self):
        chunk = make_chunk(units=10)
        a, b = split(chunk, 4)
        assert a.payload == chunk.payload[:16]
        assert b.payload == chunk.payload[16:]
        assert a.length == 4 and b.length == 6

    def test_type_size_ids_preserved(self):
        chunk = make_chunk(units=6, size=2, c_id=7, t_id=8, x_id=9)
        a, b = split(chunk, 2)
        for piece in (a, b):
            assert piece.type is chunk.type
            assert piece.size == chunk.size
            assert piece.c.ident == 7
            assert piece.t.ident == 8
            assert piece.x.ident == 9

    def test_sns_advance_by_new_len(self):
        chunk = make_chunk(units=6, c_sn=35, t_sn=0, x_sn=23)
        a, b = split(chunk, 4)
        assert (a.c.sn, a.t.sn, a.x.sn) == (35, 0, 23)
        assert (b.c.sn, b.t.sn, b.x.sn) == (39, 4, 27)

    def test_st_bits_only_on_tail(self):
        chunk = make_chunk(units=5, c_st=True, t_st=True, x_st=True)
        a, b = split(chunk, 2)
        assert not (a.c.st or a.t.st or a.x.st)
        assert b.c.st and b.t.st and b.x.st

    def test_st_clear_stays_clear(self):
        a, b = split(make_chunk(units=5), 2)
        assert not (b.c.st or b.t.st or b.x.st)

    def test_figure3_worked_example(self):
        """Figure 3: LEN=7 chunk at C.SN=36/T.SN=0/X.SN=24 splits into
        3 + 4 with the second at C.SN=40 (paper prints 40..42 region),
        T.SN=3, X.SN=27 and the T.ST bit only on the tail."""
        chunk = make_chunk(
            units=7, c_id=0xA, c_sn=36, t_id=0x51, t_sn=0, t_st=True,
            x_id=0xC, x_sn=24,
        )
        a, b = split(chunk, 3)
        assert (a.length, a.c.sn, a.t.sn, a.x.sn) == (3, 36, 0, 24)
        assert (b.length, b.c.sn, b.t.sn, b.x.sn) == (4, 39, 3, 27)
        assert not a.t.st and b.t.st

    def test_invalid_cut_points(self):
        chunk = make_chunk(units=4)
        for bad in (0, 4, 5, -1):
            with pytest.raises(FragmentationError):
                split(chunk, bad)

    def test_single_unit_is_atomic(self):
        with pytest.raises(FragmentationError):
            split(make_chunk(units=1), 1)

    def test_control_chunk_is_indivisible(self):
        ed = build_ed_chunk(1, 2, EdPayload(0, 0, 10))
        with pytest.raises(FragmentationError):
            split(ed, 1)


class TestSplitToUnitLimit:
    def test_exact_multiple(self):
        pieces = split_to_unit_limit(make_chunk(units=12), 4)
        assert [p.length for p in pieces] == [4, 4, 4]

    def test_remainder(self):
        pieces = split_to_unit_limit(make_chunk(units=10), 4)
        assert [p.length for p in pieces] == [4, 4, 2]

    def test_no_split_needed(self):
        chunk = make_chunk(units=3)
        assert split_to_unit_limit(chunk, 3) == [chunk]
        assert split_to_unit_limit(chunk, 10) == [chunk]

    def test_down_to_single_units(self):
        pieces = split_to_unit_limit(make_chunk(units=5), 1)
        assert [p.length for p in pieces] == [1] * 5

    def test_payload_reassembles_by_concatenation(self):
        chunk = make_chunk(units=9, size=2)
        pieces = split_to_unit_limit(chunk, 2)
        assert b"".join(p.payload for p in pieces) == chunk.payload

    def test_sns_are_contiguous(self):
        pieces = split_to_unit_limit(make_chunk(units=9, c_sn=100), 2)
        expected = 100
        for piece in pieces:
            assert piece.c.sn == expected
            expected += piece.length

    def test_bad_limit(self):
        with pytest.raises(FragmentationError):
            split_to_unit_limit(make_chunk(units=2), 0)

    def test_oversized_control_raises(self):
        ed = build_ed_chunk(1, 2, EdPayload(0, 0, 10))
        with pytest.raises(FragmentationError):
            split_to_unit_limit(ed, 1)

    def test_fitting_control_passes_through(self):
        ed = build_ed_chunk(1, 2, EdPayload(0, 0, 10))
        assert split_to_unit_limit(ed, 3) == [ed]


class TestFragmentForMtu:
    def test_fits_untouched(self):
        chunk = make_chunk(units=4)
        assert fragment_for_mtu(chunk, 1500, PACKET_HEADER_BYTES) == [chunk]

    def test_each_piece_fits_mtu(self):
        chunk = make_chunk(units=100)
        mtu = 128
        pieces = fragment_for_mtu(chunk, mtu, PACKET_HEADER_BYTES)
        assert len(pieces) > 1
        for piece in pieces:
            assert PACKET_HEADER_BYTES + piece.wire_bytes <= mtu

    def test_respects_atomic_units(self):
        chunk = make_chunk(units=50, size=4)  # 16-byte atomic units
        pieces = fragment_for_mtu(chunk, 100, PACKET_HEADER_BYTES)
        for piece in pieces:
            assert piece.payload_bytes % 16 == 0

    def test_mtu_below_one_unit_raises(self):
        chunk = make_chunk(units=4, size=8)  # 32-byte units
        with pytest.raises(FragmentationError):
            fragment_for_mtu(chunk, HEADER_BYTES + PACKET_HEADER_BYTES + 16, PACKET_HEADER_BYTES)

    def test_oversized_control_raises(self):
        ed = build_ed_chunk(1, 2, EdPayload(0, 0, 10))
        with pytest.raises(FragmentationError):
            fragment_for_mtu(ed, HEADER_BYTES + PACKET_HEADER_BYTES + 4, PACKET_HEADER_BYTES)

    def test_type_is_preserved(self):
        pieces = fragment_for_mtu(make_chunk(units=40), 120, PACKET_HEADER_BYTES)
        assert all(p.type is ChunkType.DATA for p in pieces)
