"""Unit tests for virtual reassembly (Section 3.3)."""

import random

import pytest

from repro.core.errors import VirtualReassemblyError
from repro.core.fragment import split_to_unit_limit
from repro.core.virtual import PduState, VirtualReassembler
from repro.wsc.invariant import EdPayload, build_ed_chunk

from tests.conftest import make_chunk


class TestPduState:
    def test_in_order_completion(self):
        state = PduState()
        state.record(0, 5, st=False)
        arrival = state.record(5, 5, st=True)
        assert arrival.completed
        assert state.complete
        assert state.total_units == 10

    def test_out_of_order_completion(self):
        state = PduState()
        state.record(5, 5, st=True)
        assert not state.complete
        arrival = state.record(0, 5, st=False)
        assert arrival.completed

    def test_duplicate_units_counted(self):
        state = PduState()
        state.record(0, 6, st=False)
        arrival = state.record(2, 6, st=False)
        assert arrival.new_units == 2
        assert arrival.duplicate_units == 4

    def test_fresh_ranges_around_existing(self):
        state = PduState()
        state.record(3, 4, st=False)  # covers [3, 7)
        arrival = state.record(0, 10, st=True)  # [0, 10)
        assert arrival.fresh_ranges == ((0, 3), (7, 10))

    def test_fresh_ranges_multiple_islands(self):
        state = PduState()
        state.record(1, 1, st=False)
        state.record(4, 1, st=False)
        arrival = state.record(0, 7, st=True)
        assert arrival.fresh_ranges == ((0, 1), (2, 4), (5, 7))

    def test_completed_flag_fires_once(self):
        state = PduState()
        first = state.record(0, 4, st=True)
        assert first.completed
        again = state.record(0, 4, st=True)
        assert not again.completed
        assert again.duplicate_units == 4

    def test_conflicting_st_positions_raise(self):
        state = PduState()
        state.record(0, 4, st=True)
        with pytest.raises(VirtualReassemblyError):
            state.record(4, 2, st=True)

    def test_data_beyond_st_raises(self):
        state = PduState()
        state.record(0, 4, st=True)
        with pytest.raises(VirtualReassemblyError):
            state.record(4, 1, st=False)

    def test_missing_ranges(self):
        state = PduState()
        state.record(6, 2, st=True)
        assert state.missing() == [(0, 6)]

    def test_missing_without_st_uses_horizon(self):
        state = PduState()
        state.record(4, 2, st=False)
        assert state.missing() == [(0, 4)]


class TestVirtualReassembler:
    def test_tracks_by_t_level(self):
        tracker = VirtualReassembler(level="t")
        chunk = make_chunk(units=4, t_id=9, t_st=True)
        arrival = tracker.record(chunk)
        assert arrival.completed
        assert tracker.is_complete(9)

    def test_tracks_by_x_level(self):
        tracker = VirtualReassembler(level="x")
        chunk = make_chunk(units=4, x_id=77, x_st=True)
        tracker.record(chunk)
        assert tracker.is_complete(77)

    def test_fragmented_tpdu_completes_in_any_order(self):
        tracker = VirtualReassembler(level="t")
        chunk = make_chunk(units=12, t_st=True)
        pieces = split_to_unit_limit(chunk, 3)
        random.Random(2).shuffle(pieces)
        completions = [tracker.record(p).completed for p in pieces]
        assert completions.count(True) == 1
        assert tracker.is_complete(chunk.t.ident)

    def test_in_flight_reporting(self):
        tracker = VirtualReassembler(level="t")
        done = make_chunk(units=2, t_id=1, t_st=True)
        partial = make_chunk(units=2, t_id=2, c_sn=2)
        tracker.record(done)
        tracker.record(partial)
        assert tracker.in_flight() == [2]
        assert tracker.completed_pdus() == {1}

    def test_control_chunk_rejected(self):
        tracker = VirtualReassembler(level="t")
        with pytest.raises(VirtualReassemblyError):
            tracker.record(build_ed_chunk(1, 2, EdPayload(0, 0, 1)))

    def test_evict(self):
        tracker = VirtualReassembler(level="t")
        tracker.record(make_chunk(units=2, t_id=5, t_st=True))
        tracker.evict(5)
        assert not tracker.is_complete(5)
        assert tracker.state(5) is None
