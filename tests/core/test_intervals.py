"""Unit and property tests for the interval set."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.intervals import IntervalSet


class TestAdd:
    def test_single_interval(self):
        s = IntervalSet()
        assert s.add(0, 5) == 5
        assert s.intervals() == [(0, 5)]

    def test_disjoint_intervals(self):
        s = IntervalSet()
        s.add(0, 3)
        s.add(10, 12)
        assert s.intervals() == [(0, 3), (10, 12)]
        assert s.covered() == 5

    def test_adjacent_intervals_merge(self):
        s = IntervalSet()
        s.add(0, 3)
        s.add(3, 6)
        assert s.intervals() == [(0, 6)]

    def test_overlap_counts_new_units_only(self):
        s = IntervalSet()
        s.add(0, 5)
        assert s.add(3, 8) == 3

    def test_exact_duplicate_adds_zero(self):
        s = IntervalSet()
        s.add(2, 7)
        assert s.add(2, 7) == 0

    def test_bridging_gap_merges_three(self):
        s = IntervalSet()
        s.add(0, 2)
        s.add(4, 6)
        assert s.add(2, 4) == 2
        assert s.intervals() == [(0, 6)]

    def test_superset_swallows(self):
        s = IntervalSet()
        s.add(2, 4)
        s.add(6, 8)
        assert s.add(0, 10) == 6
        assert s.intervals() == [(0, 10)]

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            IntervalSet().add(5, 5)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            IntervalSet().add(-1, 3)


class TestQueries:
    def test_contains(self):
        s = IntervalSet()
        s.add(5, 10)
        assert s.contains(5, 10)
        assert s.contains(6, 9)
        assert not s.contains(4, 6)
        assert not s.contains(9, 11)

    def test_membership_operator(self):
        s = IntervalSet()
        s.add(3, 5)
        assert 3 in s and 4 in s
        assert 5 not in s and 2 not in s

    def test_overlaps(self):
        s = IntervalSet()
        s.add(0, 5)
        s.add(10, 15)
        assert s.overlaps(3, 12) == 4  # 3,4 and 10,11
        assert s.overlaps(5, 10) == 0

    def test_is_complete(self):
        s = IntervalSet()
        s.add(0, 10)
        assert s.is_complete(10)
        assert not s.is_complete(11)

    def test_incomplete_with_gap(self):
        s = IntervalSet()
        s.add(0, 4)
        s.add(6, 10)
        assert not s.is_complete(10)

    def test_missing(self):
        s = IntervalSet()
        s.add(2, 4)
        s.add(6, 8)
        assert s.missing(10) == [(0, 2), (4, 6), (8, 10)]

    def test_missing_when_complete(self):
        s = IntervalSet()
        s.add(0, 7)
        assert s.missing(7) == []

    def test_missing_of_empty(self):
        assert IntervalSet().missing(3) == [(0, 3)]

    def test_span_end(self):
        s = IntervalSet()
        assert s.span_end == 0
        s.add(3, 9)
        assert s.span_end == 9

    def test_bool_and_len(self):
        s = IntervalSet()
        assert not s and len(s) == 0
        s.add(0, 1)
        s.add(5, 6)
        assert s and len(s) == 2


# ----------------------------------------------------------------------
# Property tests against a naive set-of-integers model.
# ----------------------------------------------------------------------

intervals_strategy = st.lists(
    st.tuples(st.integers(0, 200), st.integers(1, 30)).map(
        lambda t: (t[0], t[0] + t[1])
    ),
    min_size=1,
    max_size=25,
)


@given(intervals_strategy)
def test_add_matches_model(pairs):
    s = IntervalSet()
    model: set[int] = set()
    for start, end in pairs:
        fresh = set(range(start, end)) - model
        assert s.add(start, end) == len(fresh)
        model |= set(range(start, end))
    assert s.covered() == len(model)
    covered = [u for lo, hi in s.intervals() for u in range(lo, hi)]
    assert set(covered) == model
    # Internal representation must be sorted and disjoint.
    ivs = s.intervals()
    assert all(lo < hi for lo, hi in ivs)
    assert all(ivs[i][1] < ivs[i + 1][0] for i in range(len(ivs) - 1))


@given(intervals_strategy, st.integers(0, 220), st.integers(1, 40))
def test_queries_match_model(pairs, qstart, qlen):
    s = IntervalSet()
    model: set[int] = set()
    for start, end in pairs:
        s.add(start, end)
        model |= set(range(start, end))
    qend = qstart + qlen
    assert s.contains(qstart, qend) == set(range(qstart, qend)).issubset(model)
    assert s.overlaps(qstart, qend) == len(set(range(qstart, qend)) & model)


@given(intervals_strategy, st.integers(1, 240))
def test_missing_matches_model(pairs, total):
    s = IntervalSet()
    model: set[int] = set()
    for start, end in pairs:
        s.add(start, end)
        model |= set(range(start, end))
    gaps = {u for lo, hi in s.missing(total) for u in range(lo, hi)}
    assert gaps == set(range(total)) - model
    assert s.is_complete(total) == set(range(total)).issubset(model)
