"""Unit tests for stream framing (Figures 1 and 2)."""

import itertools

import pytest

from repro.core.builder import ChunkStreamBuilder, LabeledUnit, chunks_from_labels
from repro.core.errors import ChunkError
from repro.core.tuples import FramingTuple

from tests.conftest import make_payload


def _unit(data: bytes, c, t, x) -> LabeledUnit:
    return LabeledUnit(data=data, c=FramingTuple(*c), t=FramingTuple(*t), x=FramingTuple(*x))


class TestChunksFromLabels:
    def test_figure2_worked_example(self):
        """Regenerate the exact chunk of Figure 2: nine labelled data
        units (C.SN 35..43) yield three chunks, the middle one being
        TPDU Q complete: C.SN=36, T.SN=0, X.SN=24, LEN=7, T.ST set."""
        units = []
        t_ids = [0x50] + [0x51] * 7 + [0x52]          # P QQQQQQQ R
        t_sns = [6, 0, 1, 2, 3, 4, 5, 6, 0]
        t_sts = [True, False, False, False, False, False, False, True, False]
        for i in range(9):
            units.append(
                _unit(
                    bytes([i]) * 4,
                    c=(0xA, 35 + i, False),
                    t=(t_ids[i], t_sns[i], t_sts[i]),
                    x=(0xC, 23 + i, False),
                )
            )
        chunks = chunks_from_labels(units)
        assert len(chunks) == 3
        middle = chunks[1]
        assert middle.length == 7
        assert (middle.c.ident, middle.c.sn, middle.c.st) == (0xA, 36, False)
        assert (middle.t.ident, middle.t.sn, middle.t.st) == (0x51, 0, True)
        assert (middle.x.ident, middle.x.sn, middle.x.st) == (0xC, 24, False)
        assert middle.size == 1

    def test_run_breaks_at_id_change(self):
        units = [
            _unit(b"aaaa", (1, 0, False), (10, 0, False), (5, 0, False)),
            _unit(b"bbbb", (1, 1, False), (11, 0, False), (5, 1, False)),
        ]
        assert len(chunks_from_labels(units)) == 2

    def test_run_breaks_after_st_bit(self):
        units = [
            _unit(b"aaaa", (1, 0, False), (10, 0, False), (5, 0, True)),
            _unit(b"bbbb", (1, 1, False), (10, 1, False), (5, 1, False)),
        ]
        chunks = chunks_from_labels(units)
        assert len(chunks) == 2
        assert chunks[0].x.st is True

    def test_single_run_shares_one_header(self):
        units = [
            _unit(bytes([i]) * 4, (1, i, False), (2, i, False), (3, i, False))
            for i in range(10)
        ]
        chunks = chunks_from_labels(units)
        assert len(chunks) == 1
        assert chunks[0].length == 10

    def test_noncontiguous_sns_break_run(self):
        units = [
            _unit(b"aaaa", (1, 0, False), (2, 0, False), (3, 0, False)),
            _unit(b"bbbb", (1, 2, False), (2, 2, False), (3, 2, False)),
        ]
        assert len(chunks_from_labels(units)) == 2

    def test_size_mismatch_rejected(self):
        with pytest.raises(ChunkError):
            LabeledUnit(
                data=b"aaaa",
                c=FramingTuple(1, 0),
                t=FramingTuple(1, 0),
                x=FramingTuple(1, 0),
                size=2,
            )

    def test_empty_input(self):
        assert chunks_from_labels([]) == []


class TestChunkStreamBuilder:
    def test_single_frame_single_tpdu(self):
        builder = ChunkStreamBuilder(connection_id=9, tpdu_units=100)
        chunks = builder.add_frame(make_payload(10))
        assert len(chunks) == 1
        chunk = chunks[0]
        assert chunk.length == 10
        assert chunk.x.st is True
        assert chunk.t.st is False  # TPDU not yet full

    def test_tpdu_boundary_splits_chunks(self):
        builder = ChunkStreamBuilder(connection_id=9, tpdu_units=4)
        chunks = builder.add_frame(make_payload(10))
        assert [c.length for c in chunks] == [4, 4, 2]
        assert chunks[0].t.st and chunks[1].t.st and not chunks[2].t.st
        assert [c.t.ident for c in chunks] == [0, 1, 2]
        assert [c.t.sn for c in chunks] == [0, 0, 0]

    def test_figure1_frame_spans_tpdus(self):
        """Figure 1: one external PDU overlapping two (or more) TPDUs."""
        builder = ChunkStreamBuilder(connection_id=9, tpdu_units=6)
        first = builder.add_frame(make_payload(4), frame_id=70)
        second = builder.add_frame(make_payload(4), frame_id=71)
        # Frame 71 spans the TPDU boundary at unit 6: 2 units in TPDU 0,
        # 2 units in TPDU 1.
        assert [c.length for c in second] == [2, 2]
        assert second[0].t.ident == 0 and second[1].t.ident == 1
        assert second[0].x.ident == second[1].x.ident == 71
        assert second[0].x.sn == 0 and second[1].x.sn == 2
        assert first[0].x.st and not second[0].x.st and second[1].x.st

    def test_c_sn_is_continuous_across_frames(self):
        builder = ChunkStreamBuilder(connection_id=9, tpdu_units=1000)
        a = builder.add_frame(make_payload(5))
        b = builder.add_frame(make_payload(3))
        assert a[0].c.sn == 0
        assert b[0].c.sn == 5

    def test_x_sn_restarts_per_frame(self):
        builder = ChunkStreamBuilder(connection_id=9, tpdu_units=1000)
        builder.add_frame(make_payload(5))
        b = builder.add_frame(make_payload(3))
        assert b[0].x.sn == 0

    def test_end_of_connection_sets_c_st_and_closes_tpdu(self):
        builder = ChunkStreamBuilder(connection_id=9, tpdu_units=100)
        chunks = builder.add_frame(make_payload(5), end_of_connection=True)
        last = chunks[-1]
        assert last.c.st and last.t.st and last.x.st

    def test_closed_builder_rejects_frames(self):
        builder = ChunkStreamBuilder(connection_id=9, tpdu_units=100)
        builder.add_frame(make_payload(2), end_of_connection=True)
        with pytest.raises(ChunkError):
            builder.add_frame(make_payload(2))

    def test_unaligned_frame_rejected(self):
        builder = ChunkStreamBuilder(connection_id=9, tpdu_units=8, unit_words=2)
        with pytest.raises(ChunkError):
            builder.add_frame(b"x" * 12)  # not a multiple of 8

    def test_empty_frame_rejected(self):
        builder = ChunkStreamBuilder(connection_id=9, tpdu_units=8)
        with pytest.raises(ChunkError):
            builder.add_frame(b"")

    def test_custom_tpdu_id_iterator(self):
        builder = ChunkStreamBuilder(
            connection_id=9, tpdu_units=2, tpdu_ids=itertools.count(500, 5)
        )
        chunks = builder.add_frame(make_payload(5))
        assert [c.t.ident for c in chunks] == [500, 505, 510]

    def test_multi_word_units(self):
        builder = ChunkStreamBuilder(connection_id=9, tpdu_units=4, unit_words=2)
        chunks = builder.add_frame(make_payload(6, size=2))
        assert [c.length for c in chunks] == [4, 2]
        assert all(c.size == 2 for c in chunks)

    def test_payload_recoverable_in_order(self):
        builder = ChunkStreamBuilder(connection_id=9, tpdu_units=3)
        payload = make_payload(11)
        chunks = builder.add_frame(payload)
        assert b"".join(c.payload for c in chunks) == payload

    def test_invalid_parameters(self):
        with pytest.raises(ChunkError):
            ChunkStreamBuilder(connection_id=1, tpdu_units=0)
        with pytest.raises(ChunkError):
            ChunkStreamBuilder(connection_id=1, tpdu_units=4, unit_words=0)
