"""Property-based tests: fragmentation/reassembly invariants.

The paper's central structural claim — "chunks preserve all of their
properties under fragmentation" and reassemble in one step regardless of
the fragmentation schedule — is exactly the kind of statement hypothesis
is for.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunk import Chunk
from repro.core.fragment import split, split_to_unit_limit
from repro.core.reassemble import coalesce, merge
from repro.core.tuples import FramingTuple
from repro.core.types import ChunkType

from tests.conftest import make_payload


@st.composite
def chunks(draw, max_units: int = 64, max_size: int = 4) -> Chunk:
    units = draw(st.integers(1, max_units))
    size = draw(st.integers(1, max_size))
    return Chunk(
        type=ChunkType.DATA,
        size=size,
        length=units,
        c=FramingTuple(
            draw(st.integers(0, 2**16)), draw(st.integers(0, 2**24)),
            draw(st.booleans()),
        ),
        t=FramingTuple(
            draw(st.integers(0, 2**16)), draw(st.integers(0, 2**14)),
            draw(st.booleans()),
        ),
        x=FramingTuple(
            draw(st.integers(0, 2**16)), draw(st.integers(0, 2**24)),
            draw(st.booleans()),
        ),
        payload=make_payload(units, size, seed=draw(st.integers(0, 1000))),
    )


@st.composite
def chunk_and_cut(draw):
    chunk = draw(chunks(max_units=64))
    if chunk.length < 2:
        return chunk, None
    return chunk, draw(st.integers(1, chunk.length - 1))


@given(chunk_and_cut())
def test_split_merge_roundtrip(pair):
    chunk, cut = pair
    if cut is None:
        return
    a, b = split(chunk, cut)
    assert merge(a, b) == chunk


@given(chunk_and_cut())
def test_split_partitions_every_field_correctly(pair):
    chunk, cut = pair
    if cut is None:
        return
    a, b = split(chunk, cut)
    assert a.length + b.length == chunk.length
    assert a.payload + b.payload == chunk.payload
    for level in "ctx":
        at, bt, orig = a.tuple_for(level), b.tuple_for(level), chunk.tuple_for(level)
        assert at.ident == bt.ident == orig.ident
        assert at.sn == orig.sn
        assert bt.sn == orig.sn + cut
        assert at.st is False
        assert bt.st == orig.st


@given(chunks(max_units=48), st.integers(1, 7), st.integers(0, 2**32))
@settings(max_examples=60)
def test_coalesce_inverts_any_unit_limit_split(chunk, limit, shuffle_seed):
    pieces = split_to_unit_limit(chunk, limit)
    random.Random(shuffle_seed).shuffle(pieces)
    assert coalesce(pieces) == [chunk]


@given(chunks(max_units=40), st.lists(st.integers(1, 6), min_size=1, max_size=4),
       st.integers(0, 2**32))
@settings(max_examples=60)
def test_coalesce_inverts_multistage_fragmentation(chunk, limits, shuffle_seed):
    """However many fragmentation stages occur, one coalesce recovers
    the original chunk (the CLAIM-1STEP property)."""
    pieces = [chunk]
    for limit in limits:
        pieces = [p for piece in pieces for p in split_to_unit_limit(piece, limit)]
    random.Random(shuffle_seed).shuffle(pieces)
    assert coalesce(pieces) == [chunk]


@given(chunks(max_units=40), st.integers(1, 6), st.integers(0, 2**32),
       st.data())
@settings(max_examples=60)
def test_coalesce_tolerates_duplicates(chunk, limit, shuffle_seed, data):
    """Retransmitted fragments with original identifiers never corrupt
    the reassembled result (Section 3.3 duplicate handling)."""
    pieces = split_to_unit_limit(chunk, limit)
    extras = data.draw(
        st.lists(st.sampled_from(pieces), min_size=0, max_size=4)
    )
    pool = pieces + extras
    random.Random(shuffle_seed).shuffle(pool)
    assert coalesce(pool) == [chunk]


@given(chunks(max_units=64))
def test_fragment_pieces_stay_structurally_valid(chunk):
    if chunk.length < 2:
        return
    for piece in split_to_unit_limit(chunk, 1):
        # Construction re-runs all Chunk invariants; also check payload
        # linkage explicitly.
        assert piece.length == 1
        assert piece.payload == chunk.payload[
            (piece.t.sn - chunk.t.sn) * chunk.unit_bytes :
            (piece.t.sn - chunk.t.sn + 1) * chunk.unit_bytes
        ]
