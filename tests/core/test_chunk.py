"""Unit tests for the Chunk model."""

import pytest

from repro.core.chunk import Chunk
from repro.core.errors import ChunkError
from repro.core.tuples import FramingTuple
from repro.core.types import HEADER_BYTES, ChunkType

from tests.conftest import make_chunk, make_payload


class TestValidation:
    def test_basic_data_chunk(self):
        chunk = make_chunk(units=4)
        assert chunk.is_data
        assert not chunk.is_control
        assert chunk.payload_bytes == 16

    def test_size_zero_rejected(self):
        with pytest.raises(ChunkError):
            make_chunk(units=1, size=0)

    def test_len_zero_rejected(self):
        with pytest.raises(ChunkError):
            Chunk(
                type=ChunkType.DATA,
                size=1,
                length=0,
                c=FramingTuple(1, 0),
                t=FramingTuple(1, 0),
                x=FramingTuple(1, 0),
                payload=b"",
            )

    def test_payload_length_must_match_len_times_size(self):
        with pytest.raises(ChunkError):
            Chunk(
                type=ChunkType.DATA,
                size=2,
                length=3,
                c=FramingTuple(1, 0),
                t=FramingTuple(1, 0),
                x=FramingTuple(1, 0),
                payload=b"x" * 20,  # needs 24
            )

    def test_control_payload_counts_words(self):
        chunk = Chunk(
            type=ChunkType.ERROR_DETECTION,
            size=1,
            length=3,
            c=FramingTuple(1, 0),
            t=FramingTuple(1, 0),
            x=FramingTuple(0, 0),
            payload=b"\x00" * 12,
        )
        assert chunk.is_control
        assert chunk.payload_bytes == 12


class TestAccounting:
    def test_unit_bytes(self):
        assert make_chunk(units=2, size=2).unit_bytes == 8

    def test_wire_bytes_includes_header(self):
        chunk = make_chunk(units=5)
        assert chunk.wire_bytes == HEADER_BYTES + 20

    def test_words(self):
        assert make_chunk(units=3, size=2).words == 6


class TestUnitAccess:
    def test_unit_slicing(self):
        payload = make_payload(4, size=2)
        chunk = make_chunk(units=4, size=2, payload=payload)
        assert chunk.unit(0) == payload[:8]
        assert chunk.unit(3) == payload[24:32]

    def test_unit_out_of_range(self):
        chunk = make_chunk(units=2)
        with pytest.raises(IndexError):
            chunk.unit(2)
        with pytest.raises(IndexError):
            chunk.unit(-1)

    def test_units_concatenate_to_payload(self):
        chunk = make_chunk(units=6, size=3)
        assert b"".join(chunk.units()) == chunk.payload


class TestTupleAccess:
    def test_tuple_for_levels(self):
        chunk = make_chunk(c_id=1, t_id=2, x_id=3)
        assert chunk.tuple_for("c").ident == 1
        assert chunk.tuple_for("t").ident == 2
        assert chunk.tuple_for("x").ident == 3

    def test_tuple_for_unknown_level(self):
        with pytest.raises(ChunkError):
            make_chunk().tuple_for("q")

    def test_with_tuples_replaces_selectively(self):
        chunk = make_chunk()
        new = chunk.with_tuples(t=FramingTuple(99, 5, True))
        assert new.t == FramingTuple(99, 5, True)
        assert new.c == chunk.c
        assert new.x == chunk.x
        assert new.payload == chunk.payload

    def test_describe_mentions_all_fields(self):
        text = make_chunk(units=7).describe()
        assert "TYPE=DATA" in text
        assert "LEN=7" in text
