"""The Appendix A resynchronization rule for SN regeneration.

"To recover synchronization, the transmitter must send SN information
to the receiver occasionally, such as at the beginning of each PDU."
"""

from __future__ import annotations

from repro.core.builder import ChunkStreamBuilder
from repro.core.compress import (
    CompressionProfile,
    HeaderCompressor,
    HeaderDecompressor,
    implicit_tpdu_ids,
)
from repro.core.fragment import split_to_unit_limit

from tests.conftest import make_payload

_EXPLICIT_FLAG = 0x08


def _stream(tpdus=3, tpdu_units=8):
    builder = ChunkStreamBuilder(
        connection_id=4,
        tpdu_units=tpdu_units,
        tpdu_ids=implicit_tpdu_ids(0, tpdu_units),
    )
    chunks = []
    for index in range(tpdus):
        frame = builder.add_frame(make_payload(tpdu_units, seed=index), frame_id=index)
        for chunk in frame:
            chunks.extend(split_to_unit_limit(chunk, tpdu_units // 2))
    return chunks


PROFILE = CompressionProfile(connection_id=4, implicit_t_id=True, regenerate_sns=True)


class TestResyncRule:
    def test_tpdu_start_headers_are_always_explicit(self):
        compressor = HeaderCompressor(PROFILE)
        for chunk in _stream():
            blob = compressor.encode(chunk)
            if chunk.t.sn == 0:
                assert blob[1] & _EXPLICIT_FLAG, "TPDU-start chunk was implicit"

    def test_mid_tpdu_headers_go_implicit(self):
        compressor = HeaderCompressor(PROFILE)
        implicit = 0
        for chunk in _stream():
            blob = compressor.encode(chunk)
            if not blob[1] & _EXPLICIT_FLAG:
                implicit += 1
                assert chunk.t.sn != 0
        assert implicit > 0, "regeneration never engaged"

    def test_loss_damages_at_most_its_own_tpdu(self):
        """Drop any single implicit record: every later TPDU still
        decodes with correct labels (resync at the next TPDU start)."""
        chunks = _stream()
        compressor = HeaderCompressor(PROFILE)
        records = [(chunk, compressor.encode(chunk)) for chunk in chunks]
        implicit_index = next(
            i for i, (_c, b) in enumerate(records) if not b[1] & _EXPLICIT_FLAG
        )
        lost_tpdu = records[implicit_index][0].t.ident

        decoder = HeaderDecompressor(PROFILE)
        mislabelled = []
        for i, (original, blob) in enumerate(records):
            if i == implicit_index:
                continue
            decoded, _ = decoder.decode(blob, 0)
            if decoded != original:
                mislabelled.append(original.t.ident)
        # Only chunks of the damaged TPDU may decode with wrong labels.
        assert set(mislabelled) <= {lost_tpdu}

    def test_roundtrip_still_exact_when_nothing_lost(self):
        chunks = _stream()
        compressor = HeaderCompressor(PROFILE)
        decoder = HeaderDecompressor(PROFILE)
        for chunk in chunks:
            decoded, _ = decoder.decode(compressor.encode(chunk), 0)
            assert decoded == chunk
