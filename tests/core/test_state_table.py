"""The declarative lifecycle table: validation, rendering, docs drift."""

from __future__ import annotations

import pytest

from repro.core.state_table import (
    BLOCK_BEGIN,
    BLOCK_END,
    CLOSED,
    ESTABLISHED,
    EVENTS,
    INITIAL_STATE,
    STATE_TABLE,
    STATES,
    StateTable,
    Transition,
    docs_block,
    extract_block,
    main,
    render_markdown,
    render_mermaid,
    row_line,
    table_path,
)


class TestDeclaredTable:
    def test_shape(self):
        assert len(STATES) == 7
        assert len(STATE_TABLE.transitions) == 18
        assert STATE_TABLE.initial == INITIAL_STATE == CLOSED

    def test_is_sound(self):
        assert STATE_TABLE.validate() == []

    def test_every_transition_has_sites(self):
        for transition in STATE_TABLE.transitions:
            assert transition.sites, transition.transition_id

    def test_by_id_matches_declaration_order(self):
        assert list(STATE_TABLE.by_id) == [
            t.transition_id for t in STATE_TABLE.transitions
        ]

    def test_site_modules_are_sorted_real_modules(self):
        modules = STATE_TABLE.site_modules()
        assert list(modules) == sorted(modules)
        assert "repro.transport.endpoint" in modules
        assert "repro.transport.reliability" in modules
        assert "repro.core.bounded" in modules

    def test_outgoing_covers_every_state(self):
        for state in STATES:
            assert STATE_TABLE.outgoing(state), state


class TestValidation:
    def test_unknown_src_state_is_rejected(self):
        with pytest.raises(ValueError, match="unknown src state"):
            Transition("t", "LIMBO", "sweep", CLOSED, sites=("m.f",))

    def test_unknown_event_is_rejected(self):
        with pytest.raises(ValueError, match="unknown event"):
            Transition("t", CLOSED, "meteor-strike", CLOSED, sites=("m.f",))

    def test_unknown_guard_and_effect_are_rejected(self):
        with pytest.raises(ValueError, match="unknown guard"):
            Transition("t", CLOSED, "sweep", CLOSED, guard="moon-full", sites=("m.f",))
        with pytest.raises(ValueError, match="unknown effect"):
            Transition("t", CLOSED, "sweep", CLOSED, effects=("explode",), sites=("m.f",))

    def test_siteless_transition_is_rejected(self):
        with pytest.raises(ValueError, match="needs >= 1 site"):
            Transition("t", CLOSED, "sweep", CLOSED)

    def test_duplicate_transition_id_is_rejected(self):
        t = Transition("dup", CLOSED, "sweep", CLOSED, sites=("m.f",))
        with pytest.raises(ValueError, match="duplicate transition id"):
            StateTable(states=STATES, initial=CLOSED, transitions=(t, t))

    def test_validate_reports_unreachable_and_dead_end(self):
        table = StateTable(
            states=(CLOSED, ESTABLISHED, "CLOSING"),
            initial=CLOSED,
            transitions=(
                Transition("loop", CLOSED, "sweep", CLOSED, sites=("m.f",)),
                Transition("dead", ESTABLISHED, "sweep", "CLOSING", sites=("m.f",)),
            ),
        )
        problems = table.validate()
        assert any("unreachable" in p for p in problems)

    def test_validate_reports_unguarded_nondeterminism(self):
        table = StateTable(
            states=(CLOSED, ESTABLISHED),
            initial=CLOSED,
            transitions=(
                Transition("a", CLOSED, "sweep", ESTABLISHED, sites=("m.f",)),
                Transition("b", CLOSED, "sweep", CLOSED, sites=("m.f",)),
            ),
        )
        assert any("both unguarded" in p for p in table.validate())


class TestRendering:
    def test_markdown_has_a_row_per_transition(self):
        text = render_markdown()
        for transition in STATE_TABLE.transitions:
            assert f"`{transition.transition_id}`" in text

    def test_mermaid_aliases_hyphenated_states(self):
        text = render_mermaid()
        assert 'state "EVICTED-idle" as EVICTED_idle' in text
        assert text.startswith("stateDiagram-v2")

    def test_docs_block_roundtrips_through_extract(self):
        block = docs_block()
        assert block.startswith(BLOCK_BEGIN)
        assert block.endswith(BLOCK_END)
        assert extract_block(f"# header\n\n{block}\n\ntrailer\n") == block

    def test_extract_block_returns_none_without_markers(self):
        assert extract_block("# just a doc\n") is None

    def test_row_line_points_at_the_declaration(self):
        source = table_path().read_text(encoding="utf-8").splitlines()
        for tid in ("establish", "close", "close-local", "forget-refused"):
            line = row_line(tid)
            assert f'"{tid}"' in source[line - 1]


class TestMain:
    def test_write_then_check_roundtrips(self, tmp_path, capsys):
        docs = tmp_path / "architecture.md"
        docs.write_text("# Architecture\n", encoding="utf-8")
        assert main(["--docs", str(docs), "--write"]) == 0
        assert main(["--docs", str(docs), "--check"]) == 0
        out = capsys.readouterr().out
        assert "up to date" in out

    def test_check_fails_on_stale_block(self, tmp_path, capsys):
        docs = tmp_path / "architecture.md"
        docs.write_text(
            f"# Architecture\n\n{BLOCK_BEGIN}\nold\n{BLOCK_END}\n", encoding="utf-8"
        )
        assert main(["--docs", str(docs), "--check"]) == 1

    def test_write_replaces_existing_block_in_place(self, tmp_path):
        docs = tmp_path / "architecture.md"
        docs.write_text(
            f"# head\n\n{BLOCK_BEGIN}\nstale\n{BLOCK_END}\n\n# tail\n", encoding="utf-8"
        )
        assert main(["--docs", str(docs), "--write"]) == 0
        text = docs.read_text(encoding="utf-8")
        assert "stale" not in text
        assert text.startswith("# head")
        assert text.rstrip().endswith("# tail")
        assert extract_block(text) == docs_block()

    def test_committed_docs_block_is_current(self):
        assert main(["--check"]) == 0

    def test_event_alphabet_is_pinned(self):
        # The model checker's interleaving space is exactly this list.
        assert EVENTS == (
            "signaling-chunk",
            "data-chunk",
            "ack-chunk",
            "cst-chunk",
            "local-open",
            "local-close",
            "sweep",
            "progress-police",
            "tombstone-overflow",
        )
