"""Property tests for packet packing and the Figure 4 closure laws."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packet import (
    Packet,
    pack_chunks,
    repack,
    repack_with_reassembly,
    unpack_all,
)
from repro.core.reassemble import coalesce

from tests.core.test_fragment_properties import chunks as chunk_strategy


def _distinct_streams(chunk_list):
    """Give each generated chunk its own connection so pools never
    overlap (packing semantics, not reassembly, is under test)."""
    out = []
    for index, chunk in enumerate(chunk_list):
        out.append(
            chunk.with_tuples(
                c=type(chunk.c)(index + 1, chunk.c.sn, chunk.c.st),
            )
        )
    return out


few_chunks = st.lists(chunk_strategy(max_units=24, max_size=2), min_size=1, max_size=6)
mtus = st.sampled_from([128, 296, 576, 1500])


@given(few_chunks, mtus)
@settings(max_examples=60, deadline=None)
def test_every_packet_fits_its_mtu(chunk_list, mtu):
    packets = pack_chunks(_distinct_streams(chunk_list), mtu)
    for packet in packets:
        assert packet.wire_bytes <= mtu


@given(few_chunks, mtus)
@settings(max_examples=60, deadline=None)
def test_packing_conserves_payload(chunk_list, mtu):
    items = _distinct_streams(chunk_list)
    packets = pack_chunks(items, mtu)
    sent = sorted(c.payload for c in items)
    got = {}
    for chunk in unpack_all(packets):
        got.setdefault(chunk.c.ident, []).append(chunk)
    rebuilt = sorted(
        merged.payload
        for chunks in got.values()
        for merged in coalesce(chunks)
    )
    assert rebuilt == sent


@given(few_chunks, mtus, mtus)
@settings(max_examples=40, deadline=None)
def test_repack_composes_across_mtus(chunk_list, mtu_a, mtu_b):
    """Envelope changes compose: pack at A, repack at B, coalesce —
    identity on the chunk pool (Figure 4 transparency)."""
    items = _distinct_streams(chunk_list)
    packets_a = pack_chunks(items, max(mtu_a, 128))
    packets_b = repack(packets_a, max(mtu_b, 128))
    by_connection = {}
    for chunk in unpack_all(packets_b):
        by_connection.setdefault(chunk.c.ident, []).append(chunk)
    merged = [m for pool in by_connection.values() for m in coalesce(pool)]
    assert sorted(m.payload for m in merged) == sorted(c.payload for c in items)


@given(few_chunks, mtus)
@settings(max_examples=40, deadline=None)
def test_reassembling_repack_never_increases_packets(chunk_list, mtu):
    items = _distinct_streams(chunk_list)
    small = pack_chunks(items, 128)
    plain = repack(small, mtu)
    merged = repack_with_reassembly(small, mtu)
    assert len(merged) <= len(plain)


@given(few_chunks, mtus, st.integers(0, 2**32))
@settings(max_examples=40, deadline=None)
def test_wire_roundtrip_of_any_packing(chunk_list, mtu, seed):
    items = _distinct_streams(chunk_list)
    packets = pack_chunks(items, mtu)
    random.Random(seed).shuffle(packets)
    for packet in packets:
        assert Packet.decode(packet.encode()).chunks == packet.chunks
