"""Property tests for packet packing and the Figure 4 closure laws."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packet import (
    Packet,
    pack_chunks,
    repack,
    repack_with_reassembly,
    unpack_all,
)
from repro.core.reassemble import coalesce

from tests.core.test_fragment_properties import chunks as chunk_strategy
from tests.helpers import make_chunk


def _distinct_streams(chunk_list):
    """Give each generated chunk its own connection so pools never
    overlap (packing semantics, not reassembly, is under test)."""
    out = []
    for index, chunk in enumerate(chunk_list):
        out.append(
            chunk.with_tuples(
                c=type(chunk.c)(index + 1, chunk.c.sn, chunk.c.st),
            )
        )
    return out


few_chunks = st.lists(chunk_strategy(max_units=24, max_size=2), min_size=1, max_size=6)
mtus = st.sampled_from([128, 296, 576, 1500])


@given(few_chunks, mtus)
@settings(max_examples=60, deadline=None)
def test_every_packet_fits_its_mtu(chunk_list, mtu):
    packets = pack_chunks(_distinct_streams(chunk_list), mtu)
    for packet in packets:
        assert packet.wire_bytes <= mtu


@given(few_chunks, mtus)
@settings(max_examples=60, deadline=None)
def test_packing_conserves_payload(chunk_list, mtu):
    items = _distinct_streams(chunk_list)
    packets = pack_chunks(items, mtu)
    sent = sorted(c.payload for c in items)
    got = {}
    for chunk in unpack_all(packets):
        got.setdefault(chunk.c.ident, []).append(chunk)
    rebuilt = sorted(
        merged.payload
        for chunks in got.values()
        for merged in coalesce(chunks)
    )
    assert rebuilt == sent


@given(few_chunks, mtus, mtus)
@settings(max_examples=40, deadline=None)
def test_repack_composes_across_mtus(chunk_list, mtu_a, mtu_b):
    """Envelope changes compose: pack at A, repack at B, coalesce —
    identity on the chunk pool (Figure 4 transparency)."""
    items = _distinct_streams(chunk_list)
    packets_a = pack_chunks(items, max(mtu_a, 128))
    packets_b = repack(packets_a, max(mtu_b, 128))
    by_connection = {}
    for chunk in unpack_all(packets_b):
        by_connection.setdefault(chunk.c.ident, []).append(chunk)
    merged = [m for pool in by_connection.values() for m in coalesce(pool)]
    assert sorted(m.payload for m in merged) == sorted(c.payload for c in items)


@given(few_chunks, mtus)
@settings(max_examples=40, deadline=None)
def test_reassembling_repack_never_increases_packets(chunk_list, mtu):
    items = _distinct_streams(chunk_list)
    small = pack_chunks(items, 128)
    plain = repack(small, mtu)
    merged = repack_with_reassembly(small, mtu)
    assert len(merged) <= len(plain)


@given(
    streams=st.lists(
        st.tuples(st.integers(1, 40), st.sampled_from([1, 2])),
        min_size=1,
        max_size=4,
    ),
    mtu_src=mtus,
    mtu_dst=mtus,
)
@settings(max_examples=60, deadline=None)
def test_reassembling_repack_never_increases_packets_across_any_mtus(
    streams, mtu_src, mtu_dst
):
    """The Appendix C bin-packing law, on its hardest input: contiguous
    same-connection streams (maximally coalescible) already fragmented
    at an arbitrary source MTU, re-enveloped at an arbitrary target MTU.
    Method 3 may split merged chunks to fill residual space, so it can
    never need more envelopes than method 2's header-preserving repack.
    """
    chunks = []
    for cid, (units, size) in enumerate(streams, start=1):
        sn = 0
        while sn < units:
            step = min(5, units - sn)
            chunks.append(
                make_chunk(
                    units=step,
                    size=size,
                    c_id=cid,
                    c_sn=sn,
                    t_sn=sn,
                    x_sn=sn,
                    seed=cid * 1000 + sn,
                )
            )
            sn += step
    source = pack_chunks(chunks, mtu_src)
    plain = repack(source, mtu_dst)
    merged = repack_with_reassembly(source, mtu_dst)
    assert len(merged) <= len(plain)
    # And the cheaper packing is still lossless on every stream.
    by_connection = {}
    for chunk in unpack_all(merged):
        by_connection.setdefault(chunk.c.ident, []).append(chunk)
    rebuilt = {
        cid: b"".join(m.payload for m in coalesce(pool))
        for cid, pool in by_connection.items()
    }
    expected = {}
    for chunk in chunks:
        expected[chunk.c.ident] = expected.get(chunk.c.ident, b"") + chunk.payload
    assert rebuilt == expected


@given(few_chunks, mtus, st.integers(0, 2**32))
@settings(max_examples=40, deadline=None)
def test_wire_roundtrip_of_any_packing(chunk_list, mtu, seed):
    items = _distinct_streams(chunk_list)
    packets = pack_chunks(items, mtu)
    random.Random(seed).shuffle(packets)
    for packet in packets:
        assert Packet.decode(packet.encode()).chunks == packet.chunks
