"""Unit tests for Appendix A header compression."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.builder import ChunkStreamBuilder
from repro.core.chunk import Chunk
from repro.core.compress import (
    CompressionProfile,
    HeaderCompressor,
    HeaderDecompressor,
    decode_varint,
    elide_ed_headers,
    encode_varint,
    implicit_tpdu_ids,
    restore_ed_headers,
)
from repro.core.errors import CodecError
from repro.core.types import ChunkType
from repro.wsc.invariant import encode_tpdu

from tests.conftest import make_chunk, make_payload


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**14, 2**35, 2**63])
    def test_roundtrip(self, value):
        blob = encode_varint(value)
        decoded, offset = decode_varint(blob, 0)
        assert decoded == value
        assert offset == len(blob)

    def test_small_values_are_one_byte(self):
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_raises(self):
        with pytest.raises(CodecError):
            decode_varint(b"\x80", 0)

    def test_overlong_raises(self):
        with pytest.raises(CodecError):
            decode_varint(b"\xff" * 12, 0)

    @given(st.integers(0, 2**64 - 1))
    def test_roundtrip_property(self, value):
        decoded, _ = decode_varint(encode_varint(value), 0)
        assert decoded == value


def _roundtrip(profile: CompressionProfile, items: list[Chunk]) -> list[Chunk]:
    compressor = HeaderCompressor(profile)
    decompressor = HeaderDecompressor(profile)
    blob = b"".join(compressor.encode(ch) for ch in items)
    out = []
    offset = 0
    while offset < len(blob):
        chunk, offset = decompressor.decode(blob, offset)
        out.append(chunk)
    return out


def _stream_chunks(tpdu_units=8, frames=3, units=10, implicit=False):
    tpdu_ids = implicit_tpdu_ids(0, tpdu_units) if implicit else None
    builder = ChunkStreamBuilder(connection_id=42, tpdu_units=tpdu_units, tpdu_ids=tpdu_ids)
    chunks = []
    for i in range(frames):
        chunks += builder.add_frame(make_payload(units, seed=i), frame_id=i)
    return chunks


class TestProfiles:
    def test_empty_profile_roundtrip(self):
        items = _stream_chunks()
        assert _roundtrip(CompressionProfile(), items) == items

    def test_size_elision_roundtrip(self):
        items = _stream_chunks()
        profile = CompressionProfile(size_by_type={ChunkType.DATA: 1})
        assert _roundtrip(profile, items) == items

    def test_connection_id_elision_roundtrip(self):
        items = _stream_chunks()
        profile = CompressionProfile(connection_id=42)
        assert _roundtrip(profile, items) == items

    def test_implicit_tid_roundtrip(self):
        items = _stream_chunks(implicit=True)
        profile = CompressionProfile(implicit_t_id=True)
        assert _roundtrip(profile, items) == items

    def test_implicit_tid_requires_figure7_allocation(self):
        items = _stream_chunks(implicit=False)  # ids 0,1,2... not C.SN-based
        profile = CompressionProfile(implicit_t_id=True)
        compressor = HeaderCompressor(profile)
        with pytest.raises(CodecError):
            for chunk in items:
                compressor.encode(chunk)

    def test_sn_regeneration_roundtrip(self):
        items = _stream_chunks(implicit=True, frames=4, units=13)
        profile = CompressionProfile(
            size_by_type={ChunkType.DATA: 1},
            connection_id=42,
            implicit_t_id=True,
            regenerate_sns=True,
        )
        assert _roundtrip(profile, items) == items

    def test_full_profile_shrinks_headers_substantially(self):
        items = _stream_chunks(implicit=True, frames=6, units=16)
        fixed = sum(ch.wire_bytes for ch in items)
        profile = CompressionProfile(
            size_by_type={ChunkType.DATA: 1},
            connection_id=42,
            implicit_t_id=True,
            regenerate_sns=True,
        )
        compressor = HeaderCompressor(profile)
        compact = sum(len(compressor.encode(ch)) for ch in items)
        payload = sum(ch.payload_bytes for ch in items)
        assert compact - payload < (fixed - payload) / 3

    def test_wrong_connection_rejected(self):
        profile = CompressionProfile(connection_id=1)
        with pytest.raises(CodecError):
            HeaderCompressor(profile).encode(make_chunk(c_id=9))

    def test_wrong_signaled_size_rejected(self):
        profile = CompressionProfile(size_by_type={ChunkType.DATA: 2})
        with pytest.raises(CodecError):
            HeaderCompressor(profile).encode(make_chunk(size=1))

    def test_implicit_sn_without_context_rejected(self):
        profile = CompressionProfile(regenerate_sns=True)
        compressor = HeaderCompressor(profile)
        items = _stream_chunks(implicit=True)
        blob = b"".join(compressor.encode(ch) for ch in items)
        # A decoder joining mid-stream at an implicit header must fail
        # loudly, not guess.
        fresh = HeaderDecompressor(profile)
        first, offset = fresh.decode(blob, 0)  # explicit (TPDU start)
        assert first == items[0]

    def test_unknown_type_rejected(self):
        with pytest.raises(CodecError):
            HeaderDecompressor(CompressionProfile()).decode(b"\x7f\x00\x01\x01", 0)

    def test_control_chunks_stay_explicit(self):
        items = _stream_chunks(implicit=True, tpdu_units=5, frames=2, units=10)
        tpdu0 = [c for c in items if c.t.ident == 0]
        _, ed = encode_tpdu(tpdu0)
        stream = items + [ed]
        profile = CompressionProfile(
            connection_id=42, implicit_t_id=True, regenerate_sns=True
        )
        assert _roundtrip(profile, stream) == stream


class TestEdElision:
    def _tpdu_with_ed(self):
        builder = ChunkStreamBuilder(connection_id=3, tpdu_units=6)
        chunks = builder.add_frame(make_payload(6))
        _, ed = encode_tpdu(chunks)
        return chunks + [ed]

    def test_elide_and_restore_roundtrip(self):
        stream = self._tpdu_with_ed()
        elided = elide_ed_headers(stream)
        assert any(isinstance(item, bytes) for item in elided)
        assert restore_ed_headers(elided) == stream

    def test_non_adjacent_ed_not_elided(self):
        stream = self._tpdu_with_ed()
        reordered = [stream[-1]] + stream[:-1]  # ED first
        elided = elide_ed_headers(reordered)
        assert all(not isinstance(item, bytes) for item in elided)

    def test_saved_bytes(self):
        stream = self._tpdu_with_ed()
        elided = elide_ed_headers(stream)
        raw = sum(it.wire_bytes for it in stream)
        compact = sum(
            len(it) if isinstance(it, bytes) else it.wire_bytes for it in elided
        )
        assert raw - compact == 42  # 44-byte header replaced by 2 bytes

    def test_restore_rejects_garbage(self):
        with pytest.raises(CodecError):
            restore_ed_headers([b"\xed"])

    def test_restore_rejects_orphan_marker(self):
        with pytest.raises(CodecError):
            restore_ed_headers([b"\xed\x01" + b"\x00" * 4])
