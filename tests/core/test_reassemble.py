"""Unit tests for the Appendix D reassembly algorithm."""

import random

import pytest

from repro.core.errors import ReassemblyError
from repro.core.fragment import split, split_to_unit_limit
from repro.core.reassemble import can_merge, coalesce, merge
from repro.wsc.invariant import EdPayload, build_ed_chunk

from tests.conftest import make_chunk


class TestMerge:
    def test_split_then_merge_is_identity(self):
        chunk = make_chunk(units=10, c_st=True, t_st=True, x_st=True)
        a, b = split(chunk, 3)
        assert merge(a, b) == chunk

    def test_merge_takes_second_chunks_st(self):
        chunk = make_chunk(units=8, t_st=True)
        a, b = split(chunk, 5)
        merged = merge(a, b)
        assert merged.t.st is True
        assert merged.c.st is False

    def test_cannot_merge_wrong_order(self):
        a, b = split(make_chunk(units=6), 3)
        assert not can_merge(b, a)
        with pytest.raises(ReassemblyError):
            merge(b, a)

    def test_cannot_merge_nonadjacent(self):
        pieces = split_to_unit_limit(make_chunk(units=9), 3)
        assert not can_merge(pieces[0], pieces[2])

    def test_cannot_merge_across_tpdus(self):
        a = make_chunk(units=4, t_id=1, c_sn=0, t_sn=0, x_sn=0)
        b = make_chunk(units=4, t_id=2, c_sn=4, t_sn=0, x_sn=4)
        assert not can_merge(a, b)

    def test_cannot_merge_different_size(self):
        a = make_chunk(units=4, size=1)
        b = make_chunk(units=4, size=2, c_sn=4, t_sn=4, x_sn=4)
        assert not can_merge(a, b)

    def test_cannot_merge_control(self):
        ed = build_ed_chunk(1, 2, EdPayload(0, 0, 1))
        assert not can_merge(ed, ed)

    def test_merge_requires_all_three_levels_adjacent(self):
        chunk = make_chunk(units=6)
        a, b = split(chunk, 2)
        # Break only the X level.
        b_bad = b.with_tuples(x=b.x.advanced(1))
        assert not can_merge(a, b_bad)


class TestCoalesce:
    def test_single_step_full_recovery(self):
        chunk = make_chunk(units=16, t_st=True)
        pieces = split_to_unit_limit(chunk, 3)
        random.Random(7).shuffle(pieces)
        assert coalesce(pieces) == [chunk]

    def test_recovers_regardless_of_fragmentation_depth(self):
        chunk = make_chunk(units=32)
        # Fragment in several successive stages (an internet of MTUs).
        stage1 = split_to_unit_limit(chunk, 11)
        stage2 = [p for piece in stage1 for p in split_to_unit_limit(piece, 4)]
        stage3 = [p for piece in stage2 for p in split_to_unit_limit(piece, 1)]
        random.Random(3).shuffle(stage3)
        assert coalesce(stage3) == [chunk]

    def test_partial_pool_leaves_gaps_unmerged(self):
        chunk = make_chunk(units=9)
        pieces = split_to_unit_limit(chunk, 3)
        result = coalesce([pieces[0], pieces[2]])  # middle missing
        assert len(result) == 2

    def test_exact_duplicates_dropped(self):
        chunk = make_chunk(units=6)
        pieces = split_to_unit_limit(chunk, 2)
        assert coalesce(pieces + [pieces[1]]) == [chunk]

    def test_contained_fragment_dropped(self):
        chunk = make_chunk(units=8)
        inner = split_to_unit_limit(chunk, 2)[1]  # covered by the whole
        assert coalesce([chunk, inner]) == [chunk]

    def test_overlap_with_mismatched_payload_raises(self):
        chunk = make_chunk(units=8, seed=1)
        impostor = make_chunk(units=8, seed=2).with_tuples(
            c=chunk.c.advanced(4), t=chunk.t.advanced(4), x=chunk.x.advanced(4)
        )
        with pytest.raises(ReassemblyError):
            coalesce([chunk, impostor])

    def test_multiple_connections_kept_separate(self):
        a = make_chunk(units=4, c_id=1)
        b = make_chunk(units=4, c_id=2)
        result = coalesce([a, b])
        assert sorted(ch.c.ident for ch in result) == [1, 2]

    def test_control_chunks_pass_through(self):
        ed = build_ed_chunk(1, 10, EdPayload(1, 2, 3))
        chunk = make_chunk(units=4)
        result = coalesce([ed, chunk])
        assert chunk in result and ed in result

    def test_empty_pool(self):
        assert coalesce([]) == []

    def test_interleaved_tpdus_merge_within_tpdu_only(self):
        t1 = make_chunk(units=6, t_id=1, c_sn=0, t_sn=0, x_sn=0)
        t2 = make_chunk(units=6, t_id=2, c_sn=6, t_sn=0, x_sn=6)
        pool = split_to_unit_limit(t1, 2) + split_to_unit_limit(t2, 2)
        random.Random(5).shuffle(pool)
        result = coalesce(pool)
        assert result == [t1, t2]
