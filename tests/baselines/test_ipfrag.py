"""Unit tests for IP fragmentation and lock-up-prone reassembly."""

import random

import pytest

from repro.baselines.ipfrag import (
    FRAG_UNIT,
    IP_HEADER_BYTES,
    IpFragment,
    IpReassembler,
    fragment_datagram,
    refragment,
)
from tests.helpers import deterministic_bytes as _payload


class TestFragmentation:
    def test_fits_in_one(self):
        frags = fragment_datagram(1, b"x" * 100, mtu=1500)
        assert len(frags) == 1
        assert not frags[0].more_fragments

    def test_split_on_8_byte_boundaries(self):
        frags = fragment_datagram(1, _payload(1000), mtu=300)
        for frag in frags[:-1]:
            assert len(frag.payload) % FRAG_UNIT == 0
            assert frag.more_fragments
        assert not frags[-1].more_fragments

    def test_offsets_are_contiguous(self):
        payload = _payload(777)
        frags = fragment_datagram(1, payload, mtu=200)
        reassembled = bytearray(len(payload))
        for frag in frags:
            reassembled[frag.offset_bytes : frag.offset_bytes + len(frag.payload)] = frag.payload
        assert bytes(reassembled) == payload

    def test_each_fragment_fits_mtu(self):
        for frag in fragment_datagram(1, _payload(5000), mtu=576):
            assert frag.wire_bytes <= 576

    def test_tiny_mtu_rejected(self):
        with pytest.raises(ValueError):
            fragment_datagram(1, b"x" * 100, mtu=IP_HEADER_BYTES + 4)

    def test_refragment_fragments_further(self):
        [big] = fragment_datagram(1, _payload(400), mtu=1500)
        pieces = refragment(
            IpFragment(1, 10, True, _payload(400)), mtu=120
        )
        assert len(pieces) > 1
        assert pieces[0].offset_units == 10
        assert all(p.more_fragments for p in pieces)  # original had MF set

    def test_refragment_last_piece_keeps_mf_clear(self):
        pieces = refragment(IpFragment(1, 0, False, _payload(400)), mtu=120)
        assert all(p.more_fragments for p in pieces[:-1])
        assert not pieces[-1].more_fragments

    def test_refragment_fitting_passthrough(self):
        frag = IpFragment(1, 0, False, b"x" * 40)
        assert refragment(frag, 1500) == [frag]


class TestReassembly:
    def test_in_order_reassembly(self):
        payload = _payload(900)
        reasm = IpReassembler(capacity_bytes=10_000)
        result = None
        for frag in fragment_datagram(7, payload, mtu=256):
            result = reasm.add_fragment(frag)
        assert result == payload

    def test_out_of_order_reassembly(self):
        payload = _payload(900)
        frags = fragment_datagram(7, payload, mtu=256)
        random.Random(1).shuffle(frags)
        reasm = IpReassembler(capacity_bytes=10_000)
        results = [reasm.add_fragment(f) for f in frags]
        completed = [r for r in results if r is not None]
        assert completed == [payload]

    def test_duplicates_counted_and_harmless(self):
        payload = _payload(500)
        frags = fragment_datagram(7, payload, mtu=256)
        reasm = IpReassembler(capacity_bytes=10_000)
        reasm.add_fragment(frags[0])
        reasm.add_fragment(frags[0])
        assert reasm.stats.duplicate_fragments == 1
        for frag in frags[1:]:
            result = reasm.add_fragment(frag)
        assert result == payload

    def test_interleaved_datagrams(self):
        a = _payload(600, seed=1)
        b = _payload(600, seed=2)
        fa = fragment_datagram(1, a, mtu=200)
        fb = fragment_datagram(2, b, mtu=200)
        mixed = [f for pair in zip(fa, fb) for f in pair]
        reasm = IpReassembler(capacity_bytes=10_000)
        done = [r for f in mixed for r in [reasm.add_fragment(f)] if r]
        assert sorted(done, key=len) == sorted([a, b], key=len)
        assert reasm.stats.datagrams_completed == 2

    def test_buffer_freed_after_completion(self):
        reasm = IpReassembler(capacity_bytes=10_000)
        for frag in fragment_datagram(1, _payload(800), mtu=200):
            reasm.add_fragment(frag)
        assert reasm.buffered_bytes == 0
        assert reasm.partial_count == 0


class TestLockup:
    def test_lockup_event_recorded(self):
        """Many partial datagrams, none completable: the buffer fills
        and new fragments are rejected — classic lock-up."""
        reasm = IpReassembler(capacity_bytes=2_000, evict_after=100.0)
        rejected_before = reasm.stats.fragments_rejected
        for ident in range(20):
            frags = fragment_datagram(ident, _payload(400, seed=ident), mtu=200)
            reasm.add_fragment(frags[0], now=0.0)  # first fragment only
        assert reasm.stats.lockup_events > 0
        assert reasm.stats.fragments_rejected > rejected_before
        assert reasm.buffered_bytes <= 2_000

    def test_eviction_breaks_lockup(self):
        reasm = IpReassembler(capacity_bytes=1_000, evict_after=1.0)
        for ident in range(10):
            frags = fragment_datagram(ident, _payload(400, seed=ident), mtu=200)
            reasm.add_fragment(frags[0], now=0.0)
        # Later arrivals (past the eviction timeout) evict stale partials.
        frags = fragment_datagram(99, _payload(400, seed=99), mtu=200)
        reasm.add_fragment(frags[0], now=5.0)
        assert reasm.stats.datagrams_evicted > 0

    def test_no_lockup_with_ample_buffer(self):
        reasm = IpReassembler(capacity_bytes=1_000_000)
        for ident in range(20):
            for frag in fragment_datagram(ident, _payload(400, seed=ident), mtu=200):
                reasm.add_fragment(frag)
        assert reasm.stats.lockup_events == 0
        assert reasm.stats.datagrams_completed == 20

    def test_peak_buffer_tracked(self):
        reasm = IpReassembler(capacity_bytes=100_000)
        frags = fragment_datagram(1, _payload(1000), mtu=200)
        for frag in frags[:-1]:
            reasm.add_fragment(frag)
        assert reasm.stats.peak_buffer_bytes > 0


class TestOffsetGuard:
    def test_fragment_beyond_ipv4_maximum_rejected(self):
        reasm = IpReassembler(capacity_bytes=10_000)
        huge = IpFragment(1, offset_units=2**30, more_fragments=False, payload=b"x" * 8)
        assert reasm.add_fragment(huge) is None
        assert reasm.stats.fragments_rejected == 1
        assert reasm.buffered_bytes == 0
