"""Unit tests: Axon's nesting requirement vs chunks' independent frames."""

import pytest

from repro.baselines.axon import (
    AxonFraming,
    NotNestedError,
    boundaries_from_chunks,
    is_nested,
)
from repro.core.builder import ChunkStreamBuilder
from repro.core.errors import ReproError

from tests.conftest import make_payload


class TestNesting:
    def test_nested_ok(self):
        assert is_nested([6, 12], [3, 6, 9, 12])

    def test_crossing_fails(self):
        # Inner frame [4, 8) crosses the outer boundary at 6.
        assert not is_nested([6, 12], [4, 8, 12])

    def test_identical_levels_nest(self):
        assert is_nested([5, 10], [5, 10])


class TestAxonFraming:
    def test_nested_framing_constructs(self):
        framing = AxonFraming(total=12, levels=((6, 12), (3, 6, 9, 12)))
        assert framing.frame_of(0, 5) == 0
        assert framing.frame_of(0, 6) == 1
        assert framing.frame_of(1, 7) == 2

    def test_non_nested_framing_rejected(self):
        with pytest.raises(NotNestedError):
            AxonFraming(total=12, levels=((6, 12), (4, 8, 12)))

    def test_must_cover_stream(self):
        with pytest.raises(ReproError):
            AxonFraming(total=12, levels=((6,),))

    def test_bounds_must_ascend(self):
        with pytest.raises(ReproError):
            AxonFraming(total=12, levels=((12, 6),))


class TestFigure1IsNotAxonRepresentable:
    """The paper's own Figure 1 stream: external PDUs of 4 units against
    TPDUs of 6 units — boundaries interleave, so ID-less hierarchical
    framing cannot carry it, while chunks do so natively."""

    def _figure1_chunks(self):
        builder = ChunkStreamBuilder(connection_id=1, tpdu_units=6)
        chunks = []
        for frame_id in range(6):
            chunks += builder.add_frame(make_payload(4, seed=frame_id), frame_id=frame_id)
        return chunks

    def test_chunks_carry_the_stream(self):
        chunks = self._figure1_chunks()
        assert sum(c.length for c in chunks) == 24
        # Both framings are fully labelled on every chunk.
        assert all(c.t.ident is not None and c.x.ident is not None for c in chunks)

    def test_axon_framing_rejects_it(self):
        chunks = self._figure1_chunks()
        t_bounds, x_bounds = boundaries_from_chunks(chunks)
        assert t_bounds == [6, 12, 18, 24]
        assert x_bounds == [4, 8, 12, 16, 20, 24]
        with pytest.raises(NotNestedError):
            AxonFraming(total=24, levels=(tuple(t_bounds), tuple(x_bounds)))

    def test_aligned_framing_is_fine_for_both(self):
        builder = ChunkStreamBuilder(connection_id=1, tpdu_units=8)
        chunks = []
        for frame_id in range(3):
            chunks += builder.add_frame(make_payload(8, seed=frame_id), frame_id=frame_id)
        t_bounds, x_bounds = boundaries_from_chunks(chunks)
        framing = AxonFraming(total=24, levels=(tuple(t_bounds), tuple(x_bounds)))
        assert framing.frame_of(1, 9) == 1
