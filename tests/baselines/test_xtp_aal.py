"""Unit tests for the XTP and AAL baselines."""

import pytest

from repro.baselines.aal import (
    Aal34Reassembler,
    Aal5Reassembler,
    SegmentType,
    aal34_segment,
    aal5_segment,
)
from repro.baselines.xtp import (
    XTP_HEADER_BYTES,
    XTP_TRAILER_BYTES,
    SuperPacket,
    XtpPdu,
    packetize,
    repacketize,
)
from tests.helpers import deterministic_bytes as _payload


class TestXtpPdu:
    def test_encode_decode_roundtrip(self):
        pdu = XtpPdu(key=7, seq=1000, payload=b"hello", end_of_message=True)
        assert XtpPdu.decode(pdu.encode()) == pdu

    def test_corruption_detected(self):
        blob = bytearray(XtpPdu(1, 0, b"payload bytes").encode())
        blob[XTP_HEADER_BYTES + 2] ^= 0x40
        with pytest.raises(ValueError):
            XtpPdu.decode(bytes(blob))

    def test_wire_bytes(self):
        pdu = XtpPdu(1, 0, b"x" * 10)
        assert pdu.wire_bytes == XTP_HEADER_BYTES + 10 + XTP_TRAILER_BYTES
        assert len(pdu.encode()) == pdu.wire_bytes


class TestPacketize:
    def test_every_packet_fits_mtu(self):
        for pdu in packetize(1, _payload(10_000), mtu=576):
            assert pdu.wire_bytes <= 576

    def test_stream_recoverable(self):
        stream = _payload(5_000)
        pdus = packetize(1, stream, mtu=300)
        assert b"".join(p.payload for p in pdus) == stream
        assert pdus[-1].end_of_message
        assert not any(p.end_of_message for p in pdus[:-1])

    def test_seq_matches_offsets(self):
        pdus = packetize(1, _payload(1000), mtu=300, start_seq=500)
        offset = 500
        for pdu in pdus:
            assert pdu.seq == offset
            offset += len(pdu.payload)

    def test_overhead_in_every_packet(self):
        """The paper's complaint: full PDU overhead per packet."""
        pdus = packetize(1, _payload(10_000), mtu=200)
        overhead = len(pdus) * (XTP_HEADER_BYTES + XTP_TRAILER_BYTES)
        assert overhead > 10_000 * 0.25  # >25% overhead at small MTU

    def test_mtu_below_header_rejected(self):
        with pytest.raises(ValueError):
            packetize(1, b"x", mtu=XTP_HEADER_BYTES)


class TestRepacketize:
    def test_requires_recutting(self):
        pdus = packetize(1, _payload(3_000), mtu=1500)
        smaller = repacketize(pdus, mtu=300)
        assert len(smaller) > len(pdus)
        assert b"".join(p.payload for p in smaller) == b"".join(
            p.payload for p in pdus
        )

    def test_eom_preserved_only_at_stream_end(self):
        pdus = packetize(1, _payload(3_000), mtu=1500)
        smaller = repacketize(pdus, mtu=300)
        assert smaller[-1].end_of_message
        assert sum(1 for p in smaller if p.end_of_message) == 1

    def test_fitting_pdus_untouched(self):
        pdus = packetize(1, _payload(500), mtu=300)
        assert repacketize(pdus, mtu=1500) == pdus


class TestSuperPacket:
    def test_roundtrip(self):
        pdus = packetize(1, _payload(500), mtu=200)
        sp = SuperPacket(tuple(pdus))
        assert SuperPacket.decode(sp.encode()).pdus == tuple(pdus)

    def test_pack_respects_mtu(self):
        pdus = packetize(1, _payload(4_000), mtu=200)
        packets = SuperPacket.pack(pdus, mtu=1000)
        for packet in packets:
            assert packet.wire_bytes <= 1000
        got = [p for packet in packets for p in packet.pdus]
        assert got == pdus

    def test_distinct_format(self):
        """SUPER packets don't parse as regular XTP PDUs — the format
        duality chunks avoid."""
        pdus = packetize(1, _payload(100), mtu=200)
        blob = SuperPacket(tuple(pdus)).encode()
        with pytest.raises(ValueError):
            XtpPdu.decode(blob)


class TestAal5:
    def test_roundtrip_in_order(self):
        frame = _payload(1000)
        reasm = Aal5Reassembler()
        out = [reasm.add_cell(c) for c in aal5_segment(frame)]
        delivered = [o for o in out if o is not None]
        assert delivered == [frame]
        assert reasm.frames_ok == 1

    def test_cells_are_48_bytes(self):
        for cell in aal5_segment(_payload(333)):
            assert len(cell.payload) == 48

    def test_only_last_cell_flagged(self):
        cells = aal5_segment(_payload(300))
        assert [c.end_of_frame for c in cells].count(True) == 1
        assert cells[-1].end_of_frame

    def test_misorder_breaks_aal5(self):
        """One framing bit is not enough on a misordering channel."""
        frame = _payload(400)
        cells = aal5_segment(frame)
        cells[0], cells[1] = cells[1], cells[0]
        reasm = Aal5Reassembler()
        out = [reasm.add_cell(c) for c in cells]
        assert all(o is None for o in out)
        assert reasm.frames_bad_crc == 1

    def test_lost_end_cell_merges_frames(self):
        """Losing the end-flag cell silently concatenates two frames;
        the CRC is the only line of defence."""
        a_cells = aal5_segment(_payload(200, seed=1))
        b_cells = aal5_segment(_payload(200, seed=2))
        reasm = Aal5Reassembler()
        for cell in a_cells[:-1] + b_cells:
            result = reasm.add_cell(cell)
        assert reasm.frames_bad_crc == 1
        assert reasm.frames_ok == 0

    def test_back_to_back_frames(self):
        reasm = Aal5Reassembler()
        frames = [_payload(100, seed=s) for s in range(3)]
        delivered = []
        for frame in frames:
            for cell in aal5_segment(frame):
                out = reasm.add_cell(cell)
                if out is not None:
                    delivered.append(out)
        assert delivered == frames


class TestAal34:
    def test_roundtrip(self):
        frame = _payload(500)
        reasm = Aal34Reassembler()
        delivered = [
            out for cell in aal34_segment(5, frame) for out in [reasm.add_cell(cell)] if out
        ]
        assert len(delivered) == 1
        assert delivered[0][: len(frame)] == frame  # padding follows

    def test_segment_types(self):
        cells = aal34_segment(5, _payload(200))
        assert cells[0].segment_type is SegmentType.BOM
        assert cells[-1].segment_type is SegmentType.EOM
        assert all(c.segment_type is SegmentType.COM for c in cells[1:-1])

    def test_single_segment_message(self):
        cells = aal34_segment(5, _payload(30))
        assert len(cells) == 1
        assert cells[0].segment_type is SegmentType.SSM

    def test_mid_interleaving_supported(self):
        """The MID (the paper's C.ID analogue) separates streams."""
        fa = aal34_segment(1, _payload(200, seed=1))
        fb = aal34_segment(2, _payload(200, seed=2))
        mixed = [c for pair in zip(fa, fb) for c in pair]
        reasm = Aal34Reassembler()
        delivered = [out for c in mixed for out in [reasm.add_cell(c)] if out]
        assert len(delivered) == 2
        assert reasm.frames_ok == 2

    def test_sn_discontinuity_discards_frame(self):
        cells = aal34_segment(1, _payload(400))
        del cells[2]  # lose a COM cell: SN slips
        reasm = Aal34Reassembler()
        for cell in cells:
            reasm.add_cell(cell)
        assert reasm.frames_discarded >= 1
        assert reasm.frames_ok == 0

    def test_orphan_com_discarded(self):
        cells = aal34_segment(1, _payload(200))
        reasm = Aal34Reassembler()
        reasm.add_cell(cells[1])  # COM without BOM
        assert reasm.frames_discarded == 1
