"""Unit tests for path-MTU discovery and the black-hole failure mode."""

from dataclasses import dataclass, field

from repro.baselines.pathmtu import PathMtuProber, PmtuSender
from repro.netsim.events import EventLoop


@dataclass
class FakePath:
    """A path with a (mutable) MTU that silently drops oversize frames."""

    loop: EventLoop
    mtu: int
    rtt: float = 0.02
    delivered_bytes: int = field(default=0, init=False)

    def send_probe(self, size, on_echo):
        if size <= self.mtu:
            self.loop.schedule(self.rtt, on_echo)

    def transmit(self, packet, on_ack):
        if len(packet) <= self.mtu:
            self.delivered_bytes += len(packet)
            self.loop.schedule(self.rtt, on_ack)


class TestProber:
    def _discover(self, mtu, low=68, high=65535):
        loop = EventLoop()
        path = FakePath(loop, mtu)
        prober = PathMtuProber(loop, path.send_probe, low=low, high=high)
        result = {}
        prober.discover(lambda m: result.update(mtu=m))
        loop.run()
        return result["mtu"], prober

    def test_finds_exact_mtu(self):
        for mtu in (296, 576, 1500, 4352, 9180):
            found, _ = self._discover(mtu)
            assert found == mtu

    def test_mtu_at_bounds(self):
        assert self._discover(68)[0] == 68
        assert self._discover(65535)[0] == 65535

    def test_probe_count_is_logarithmic(self):
        _, prober = self._discover(1500)
        assert prober.probes_sent <= 17  # log2(65468) + slack

    def test_lost_probes_cost_timeouts(self):
        loop = EventLoop()
        path = FakePath(loop, 296)
        prober = PathMtuProber(loop, path.send_probe, probe_timeout=0.2)
        done_at = {}
        prober.discover(lambda m: done_at.update(t=loop.now))
        loop.run()
        # Every failed probe burns a full timeout; discovery is slow.
        assert prober.probes_lost >= 8
        assert done_at["t"] >= prober.probes_lost * 0.2


class TestPmtuSenderBlackHole:
    def test_clean_transfer(self):
        loop = EventLoop()
        path = FakePath(loop, 1500)
        prober = PathMtuProber(loop, path.send_probe)
        sender = PmtuSender(loop, prober, path.transmit)
        done = {}
        sender.start(b"x" * 50_000, lambda: done.update(ok=True))
        loop.run()
        assert done.get("ok")
        assert sender.path_mtu == 1500
        assert sender.packets_blackholed == 0
        assert sender.bytes_delivered == 50_000

    def test_route_change_black_hole_and_recovery(self):
        """The §3 scenario: a route change lowers the path MTU and the
        never-fragment sender stalls until it re-probes."""
        loop = EventLoop()
        path = FakePath(loop, 1500)
        prober = PathMtuProber(loop, path.send_probe)
        sender = PmtuSender(loop, prober, path.transmit)
        done = {}
        sender.start(b"y" * 500_000, lambda: done.update(ok=True))
        # Drop the route MTU mid-transfer (well after discovery, which
        # takes ~2.5 s of probe timeouts on this path).
        loop.at(4.0, lambda: setattr(path, "mtu", 296))
        loop.run()
        assert done.get("ok")
        assert sender.packets_blackholed >= 1
        assert sender.reprobes >= 1
        assert sender.stall_time > 0
        assert sender.path_mtu == 296

    def test_chunks_need_none_of_this(self):
        """Contrast: the chunk path fragments in the network, so an MTU
        drop costs nothing but smaller envelopes — no discovery, no
        stall, no black hole."""
        from repro.core.packet import pack_chunks
        from repro.netsim.topology import HopSpec, build_chunk_path
        from repro.transport.connection import ConnectionConfig
        from repro.transport.receiver import ChunkTransportReceiver
        from repro.transport.sender import ChunkTransportSender

        loop = EventLoop()
        receiver = ChunkTransportReceiver()
        path = build_chunk_path(
            loop, [HopSpec(mtu=4096), HopSpec(mtu=296)],
            lambda frame: receiver.receive_packet(frame),
        )
        sender = ChunkTransportSender(ConnectionConfig(connection_id=1, tpdu_units=256))
        payload = bytes(16_384)
        chunks = [sender.establishment_chunk()] + sender.close(payload)
        for packet in pack_chunks(chunks, 4096):
            path.send(packet.encode())
        path.run()
        assert receiver.stream_bytes() == payload
        assert receiver.corrupted_tpdus() == 0
