"""Unit tests for flag-in-stream framing (Appendix B's other option)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.flagstream import (
    FLAG_BEGIN,
    FLAG_END,
    FlagStreamDecoder,
    decode_frames,
    encode_frames,
)


class TestRoundTrip:
    def test_single_frame(self):
        decoder = FlagStreamDecoder()
        assert decoder.feed(encode_frames([b"hello"])) == [b"hello"]

    def test_decode_frames_inverts_encode_frames(self):
        frames = [b"one", bytes([FLAG_BEGIN, FLAG_END, 0x7C]), b"", b"three"]
        assert decode_frames(encode_frames(frames)) == frames

    def test_decode_frames_empty_stream(self):
        assert decode_frames(b"") == []

    def test_multiple_frames(self):
        frames = [b"one", b"two", b"three"]
        decoder = FlagStreamDecoder()
        assert decoder.feed(encode_frames(frames)) == frames

    def test_flag_bytes_in_payload_survive(self):
        nasty = bytes([FLAG_BEGIN, FLAG_END, 0x7C, 0x41, FLAG_BEGIN])
        decoder = FlagStreamDecoder()
        assert decoder.feed(encode_frames([nasty])) == [nasty]

    def test_incremental_feeding(self):
        frames = [bytes(range(50)), bytes(range(50, 100))]
        blob = encode_frames(frames)
        decoder = FlagStreamDecoder()
        out = []
        for index in range(0, len(blob), 7):
            out += decoder.feed(blob[index : index + 7])
        assert out == frames

    @given(st.lists(st.binary(min_size=1, max_size=60), min_size=1, max_size=6))
    @settings(max_examples=60)
    def test_roundtrip_property(self, frames):
        decoder = FlagStreamDecoder()
        assert decoder.feed(encode_frames(frames)) == frames


class TestTheTradeOff:
    def test_every_byte_is_examined(self):
        """The Appendix B cost: flag parsing touches the whole stream."""
        frames = [bytes(100) for _ in range(10)]
        blob = encode_frames(frames)
        decoder = FlagStreamDecoder()
        decoder.feed(blob)
        assert decoder.bytes_examined == len(blob)

    def test_misordered_slices_produce_garbage(self):
        """Flags carry no sequence information: swapping two stream
        slices silently corrupts framing — the reason flag protocols
        need in-order channels (Appendix B)."""
        frames = [bytes([i]) * 40 for i in range(4)]
        blob = encode_frames(frames)
        third = len(blob) // 3
        swapped = blob[third : 2 * third] + blob[:third] + blob[2 * third :]
        decoder = FlagStreamDecoder()
        out = decoder.feed(swapped)
        assert out != frames
        assert decoder.garbage_bytes > 0 or out != frames

    def test_lost_end_flag_merges_frames(self):
        frames = [b"A" * 20, b"B" * 20]
        blob = bytearray(encode_frames(frames))
        end_index = blob.index(FLAG_END)
        del blob[end_index]  # lose the first E symbol
        decoder = FlagStreamDecoder()
        out = decoder.feed(bytes(blob))
        # The A-frame is never delivered intact.
        assert b"A" * 20 not in out

    def test_bytes_outside_frames_counted_as_garbage(self):
        decoder = FlagStreamDecoder()
        decoder.feed(b"\x01\x02\x03")  # no BEGIN yet
        assert decoder.garbage_bytes == 3
