"""Unit tests for the in-order transport baseline and the Appendix B matrix."""

import pytest

from repro.baselines.framing_info import FIELDS, PROTOCOLS, Presence, matrix_rows
from repro.baselines.inorder import InOrderReceiver, Segment, segment_stream
from tests.helpers import deterministic_bytes as _payload


def _receiver():
    delivered = []

    def deliver(seq, payload):
        delivered.append((seq, payload))

    return delivered, InOrderReceiver(deliver=deliver)


class TestSegment:
    def test_roundtrip(self):
        segment = Segment(1234, b"stream bytes")
        assert Segment.decode(segment.encode()) == segment

    def test_crc_protects(self):
        blob = bytearray(Segment(0, b"stream bytes").encode())
        blob[20] ^= 1
        with pytest.raises(ValueError):
            Segment.decode(bytes(blob))

    def test_segment_stream_covers_everything(self):
        stream = _payload(1000)
        segments = segment_stream(stream, 256)
        assert b"".join(s.payload for s in segments) == stream
        assert [s.seq for s in segments] == [0, 256, 512, 768]


class TestInOrderReceiver:
    def test_in_order_passthrough(self):
        delivered, receiver = _receiver()
        for segment in segment_stream(_payload(300), 100):
            receiver.receive(segment)
        assert len(delivered) == 3
        assert receiver.stats.peak_buffer_bytes == 0
        # Every byte touched exactly once.
        assert receiver.stats.data_touches == 300

    def test_out_of_order_buffered_and_drained(self):
        stream = _payload(300)
        s = segment_stream(stream, 100)
        delivered, receiver = _receiver()
        receiver.receive(s[0], now=0.0)
        receiver.receive(s[2], now=1.0)  # gap: buffered
        assert receiver.buffered_bytes == 100
        receiver.receive(s[1], now=2.0)  # fills the gap, drains
        assert [seq for seq, _ in delivered] == [0, 100, 200]
        assert b"".join(p for _, p in delivered) == stream

    def test_disordered_bytes_touched_twice(self):
        s = segment_stream(_payload(200), 100)
        delivered, receiver = _receiver()
        receiver.receive(s[1])
        receiver.receive(s[0])
        # 100 in-order bytes x1, 100 buffered bytes x(1 entry + 2 drain).
        assert receiver.stats.data_touches == 100 * 1 + 100 * 3

    def test_buffer_residence_time_tracked(self):
        s = segment_stream(_payload(200), 100)
        delivered, receiver = _receiver()
        receiver.receive(s[1], now=1.0)
        receiver.receive(s[0], now=4.0)
        assert receiver.stats.buffered_byte_seconds == pytest.approx(100 * 3.0)

    def test_duplicates_dropped(self):
        s = segment_stream(_payload(200), 100)
        delivered, receiver = _receiver()
        receiver.receive(s[0])
        receiver.receive(s[0])
        receiver.receive(s[1])
        receiver.receive(s[1])
        assert len(delivered) == 2
        assert receiver.stats.duplicate_segments == 2

    def test_peak_buffer_grows_with_disorder(self):
        segments = segment_stream(_payload(1000), 100)
        delivered, receiver = _receiver()
        for segment in segments[1:]:
            receiver.receive(segment)
        assert receiver.stats.peak_buffer_bytes == 900
        receiver.receive(segments[0])
        assert receiver.stats.bytes_delivered == 1000


class TestFramingMatrix:
    def test_chunks_row_is_fully_explicit(self):
        chunks_row = next(p for p in PROTOCOLS if p.name == "Chunks")
        assert chunks_row.explicit_count() == len(FIELDS)

    def test_no_other_protocol_is_fully_explicit(self):
        for protocol in PROTOCOLS:
            if protocol.name != "Chunks":
                assert protocol.explicit_count() < len(FIELDS)

    def test_aal5_framing_is_one_explicit_bit(self):
        aal5 = next(p for p in PROTOCOLS if p.name == "AAL5")
        assert aal5.presence("T.ST") is Presence.EXPLICIT
        assert aal5.presence("T.SN") is Presence.IMPLICIT
        assert not aal5.tolerates_misorder

    def test_ip_has_single_framing_level(self):
        ip = next(p for p in PROTOCOLS if p.name == "IP")
        assert ip.presence("T.ID") is Presence.EXPLICIT
        assert ip.presence("C.ID") is Presence.ABSENT
        assert ip.presence("X.ID") is Presence.ABSENT

    def test_misorder_tolerant_protocols_have_explicit_framing_somewhere(self):
        """Appendix B's pattern: protocols built for misordering channels
        carry at least one explicit (ID, SN) pair."""
        for protocol in PROTOCOLS:
            if protocol.tolerates_misorder and protocol.name != "Chunks":
                explicit_pairs = [
                    lvl
                    for lvl in ("C", "T", "X")
                    if protocol.presence(f"{lvl}.SN") is Presence.EXPLICIT
                ]
                assert explicit_pairs, protocol.name

    def test_matrix_rows_shape(self):
        rows = matrix_rows()
        assert rows[0][0] == "protocol"
        assert len(rows) == len(PROTOCOLS) + 1
        assert all(len(row) == len(FIELDS) + 2 for row in rows)
