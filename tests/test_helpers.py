"""Unit tests for the shared data builders in :mod:`tests.helpers`."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.packet import Packet
from repro.core.types import WORD_BYTES, ChunkType
from tests.helpers import deterministic_bytes, make_chunk, make_payload


@given(n=st.integers(0, 512), seed=st.integers(0, 10_000))
def test_deterministic_bytes_is_a_pure_function(n, seed):
    assert deterministic_bytes(n, seed) == deterministic_bytes(n, seed)
    assert len(deterministic_bytes(n, seed)) == n


@given(
    short=st.integers(0, 128),
    extra=st.integers(1, 128),
    seed=st.integers(0, 10_000),
)
def test_deterministic_bytes_seeds_are_prefix_stable_streams(short, extra, seed):
    long = deterministic_bytes(short + extra, seed)
    assert deterministic_bytes(short, seed) == long[:short]


def test_different_seeds_differ():
    assert deterministic_bytes(64, 1) != deterministic_bytes(64, 2)


@given(
    units=st.integers(1, 64),
    size=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
def test_make_payload_length_and_determinism(units, size, seed):
    payload = make_payload(units, size, seed)
    assert len(payload) == units * size * WORD_BYTES
    assert payload == deterministic_bytes(units * size * WORD_BYTES, seed)


@given(units=st.integers(1, 32), size=st.sampled_from([1, 2]))
def test_make_chunk_is_wire_valid(units, size):
    chunk = make_chunk(units=units, size=size)
    assert chunk.type is ChunkType.DATA
    assert chunk.length == units
    assert len(chunk.payload) == units * size * WORD_BYTES
    assert Packet.decode(Packet(chunks=[chunk]).encode()).chunks == [chunk]


def test_make_chunk_honors_explicit_labels_and_payload():
    chunk = make_chunk(
        units=2, c_id=7, c_sn=3, c_st=True, t_sn=5, x_sn=9, payload=b"\x01" * 8
    )
    assert (chunk.c.ident, chunk.c.sn, chunk.c.st) == (7, 3, True)
    assert chunk.t.sn == 5 and chunk.x.sn == 9
    assert chunk.payload == b"\x01" * 8
