"""Inconsistent-overlap detection at the placement and receiver layers.

The NIDS-gap attack works because TCP reassemblers silently *resolve*
content disagreements (first-wins or last-wins, OS-dependent).  The
placement buffer must instead detect the disagreement: consistent
re-writes (retransmissions) merge silently, inconsistent ones raise and
leave the buffer untouched, and the transport receiver refuses the
chunk without ever acknowledging it.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import InconsistentOverlapError
from repro.host.delivery import FrameStore, PlacementBuffer
from repro.transport.receiver import ChunkTransportReceiver
from tests.conftest import make_chunk, make_payload


@st.composite
def overlapping_writes(draw):
    """A base write plus a second write overlapping it somewhere."""
    base_offset = draw(st.integers(min_value=0, max_value=64))
    base = draw(st.binary(min_size=1, max_size=128))
    base_end = base_offset + len(base)
    second_offset = draw(
        st.integers(min_value=max(base_offset - 32, 0), max_value=base_end - 1)
    )
    min_len = base_offset - second_offset + 1 if second_offset < base_offset else 1
    second_len = draw(st.integers(min_value=max(min_len, 1), max_value=160))
    return base_offset, base, second_offset, second_len


@given(overlapping_writes())
def test_consistent_overlap_merges_silently(layout):
    base_offset, base, second_offset, second_len = layout
    buffer = PlacementBuffer(limit_bytes=None)
    buffer.place(base_offset, base)

    # Second write that agrees with the buffer everywhere it overlaps.
    second = bytearray(second_len)
    for i in range(second_len):
        pos = second_offset + i
        if base_offset <= pos < base_offset + len(base):
            second[i] = base[pos - base_offset]
        else:
            second[i] = 0x5C
    fresh = buffer.place(second_offset, bytes(second))
    assert fresh == second_len - min(
        base_offset + len(base), second_offset + second_len
    ) + max(base_offset, second_offset)
    assert buffer.overlap_conflicts == 0


@given(overlapping_writes(), st.integers(min_value=0, max_value=10_000))
def test_inconsistent_overlap_raises_and_writes_nothing(layout, flip_seed):
    base_offset, base, second_offset, second_len = layout
    buffer = PlacementBuffer(limit_bytes=None)
    buffer.place(base_offset, base)
    placed_before = buffer.bytes_placed
    contents_before = buffer.contents()

    # Disagree on exactly one overlapping byte.
    lo = max(base_offset, second_offset)
    hi = min(base_offset + len(base), second_offset + second_len)
    flip_at = lo + flip_seed % (hi - lo)
    second = bytearray(second_len)
    for i in range(second_len):
        pos = second_offset + i
        if base_offset <= pos < base_offset + len(base):
            second[i] = base[pos - base_offset]
    second[flip_at - second_offset] ^= 0xFF

    with pytest.raises(InconsistentOverlapError):
        buffer.place(second_offset, bytes(second))
    assert buffer.overlap_conflicts == 1
    # Detection, not resolution: the buffer is exactly as it was.
    assert buffer.bytes_placed == placed_before
    assert buffer.contents() == contents_before


def test_conflict_beyond_placed_region_is_checked_only_where_placed():
    buffer = PlacementBuffer(limit_bytes=None)
    buffer.place(0, b"abcd")
    # Overlaps [0, 4) consistently, extends beyond with new bytes: fine.
    assert buffer.place(2, b"cdXY") == 2
    # Now disagree within the just-extended region.
    with pytest.raises(InconsistentOverlapError):
        buffer.place(4, b"ZZ")


def test_disjoint_writes_never_conflict():
    buffer = PlacementBuffer(limit_bytes=None)
    assert buffer.place(0, b"aaaa") == 4
    assert buffer.place(8, b"bbbb") == 4
    assert buffer.place(4, b"cccc") == 4  # fills the gap, touches nothing
    assert buffer.overlap_conflicts == 0


def test_frame_store_detects_per_frame_conflicts():
    store = FrameStore()
    store.place(1, 0, b"hello world!")
    with pytest.raises(InconsistentOverlapError):
        store.place(1, 6, b"FORGED")
    # Other frames are independent regions: same offset, different frame.
    assert store.place(2, 6, b"FORGED") is False


# ----------------------------------------------------------------------
# Receiver semantics: refuse, count, never acknowledge
# ----------------------------------------------------------------------


def test_receiver_refuses_forged_chunk_and_never_verifies_it():
    receiver = ChunkTransportReceiver()
    genuine = make_chunk(units=8, seed=1)
    events = receiver.receive_chunk(genuine)
    assert events.verdicts == []

    forged = make_chunk(units=8, seed=2)  # same labels, different bytes
    assert forged.payload != genuine.payload
    events = receiver.receive_chunk(forged)
    assert receiver.overlap_conflict_chunks == 1
    assert events.verdicts == []  # refused before the verifier saw it
    assert events.completed_frames == []

    # The genuine stream is untouched and retransmissions still merge.
    assert receiver.stream.contents()[: len(genuine.payload)] == genuine.payload
    events = receiver.receive_chunk(genuine)
    assert receiver.duplicate_chunks == 1
    assert receiver.overlap_conflict_chunks == 1


def test_receiver_counts_conflicts_separately_from_rejections():
    receiver = ChunkTransportReceiver()
    receiver.receive_chunk(make_chunk(units=4, seed=1))
    receiver.receive_chunk(make_chunk(units=4, seed=9))
    assert receiver.overlap_conflict_chunks == 1
    assert receiver.rejected_placements == 0
    assert receiver.budget_refused_chunks == 0


def test_x_level_conflict_is_refused_too():
    receiver = ChunkTransportReceiver()
    # Same X frame range, different bytes, but *different* C ranges so
    # the stream-level placement is clean — only the per-frame store
    # can catch this one.
    a = make_chunk(units=4, c_sn=0, x_id=5, x_sn=0, seed=1)
    b = make_chunk(units=4, c_sn=100, x_id=5, x_sn=0, seed=2)
    receiver.receive_chunk(a)
    receiver.receive_chunk(b)
    assert receiver.overlap_conflict_chunks == 1


@given(units=st.integers(min_value=1, max_value=32), seed=st.integers(0, 999))
def test_identical_retransmission_is_never_a_conflict(units, seed):
    receiver = ChunkTransportReceiver()
    chunk = make_chunk(units=units, seed=seed)
    receiver.receive_chunk(chunk)
    receiver.receive_chunk(chunk)
    assert receiver.overlap_conflict_chunks == 0
    assert receiver.duplicate_chunks == 1
    assert receiver.stream.contents()[: len(chunk.payload)] == chunk.payload


def test_partial_overlap_conflict_reports_offset_range():
    buffer = PlacementBuffer(limit_bytes=None)
    buffer.place(0, make_payload(4))
    with pytest.raises(InconsistentOverlapError, match=r"\[8, 16\)"):
        buffer.place(8, b"\xff" * 8)
