"""Black-box acceptance: the flight recorder under a live attack.

Runs the seeded slow-loris scenario with the full observability stack
installed — journey tracker, flight recorder, registry + tracer — and
asserts the end-to-end story the subsystem exists for:

- stall evictions auto-dump deterministic JSONL black boxes, and two
  same-seed runs produce byte-identical artifacts (dumps + journal);
- the journal reconstructs the *complete* journey of a refused chunk:
  formation, every retransmission generation, each refusal with its
  stage and reason, and the conversation's eviction event;
- the Perfetto export of that journal parses and contains the refused
  chunk's timeline;
- eviction trace events carry an explicit ``reason`` field.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.obs as obs
from repro.app.adversarial import check_invariants, run_slow_loris
from repro.netsim.events import EventLoop
from repro.netsim.link import Link
from repro.netsim.rng import substream
from repro.obs.flight import flight_session
from repro.obs.perfetto import chunk_timelines, journeys_to_trace, parse_trace
from repro.obs.provenance import JourneyTracker, journey_session, write_journal
from repro.obs.report import load_records
from repro.transport.connection import ConnectionConfig
from repro.transport.endpoint import ChunkEndpoint

from tests.conftest import deterministic_bytes

SEED = 1
OBJECT_BYTES = 32768  # > fair share with 30 registrants: forces refusals

EVICTION_REASONS = {"idle", "stalled", "closed", "tombstone_overflow"}


def _run_recorded(directory: Path):
    """One fully-instrumented slow-loris run; returns its artifacts."""
    with obs.session() as (_registry, tracer):
        with journey_session() as tracker:
            with flight_session(dump_dir=directory) as recorder:
                report = run_slow_loris(SEED, object_bytes=OBJECT_BYTES)
                check_invariants(report)
                journal = directory / "journal.jsonl"
                write_journal(journal, tracker)
    return report, tracker, recorder, tracer, journal


@pytest.fixture(scope="module")
def recorded_run(tmp_path_factory):
    return _run_recorded(tmp_path_factory.mktemp("flight-a"))


class TestDeterministicArtifacts:
    def test_same_seed_runs_are_byte_identical(
        self, recorded_run, tmp_path_factory
    ):
        _, _, recorder_a, _, journal_a = recorded_run
        directory_b = tmp_path_factory.mktemp("flight-b")
        _, _, recorder_b, _, journal_b = _run_recorded(directory_b)
        names_a = [p.name for p in recorder_a.dumps]
        names_b = [p.name for p in recorder_b.dumps]
        assert names_a == names_b
        assert names_a, "no flight dumps were written"
        for path_a, path_b in zip(recorder_a.dumps, recorder_b.dumps):
            assert path_a.read_bytes() == path_b.read_bytes(), path_a.name
        assert journal_a.read_bytes() == journal_b.read_bytes()

    def test_stall_evictions_dump_black_boxes(self, recorded_run):
        report, _, recorder, _, _ = recorded_run
        assert report.extra["stalled_evictions"] > 0
        stall_dumps = [
            p for p in recorder.dumps if "stalled_eviction" in p.name
        ]
        assert len(stall_dumps) == report.extra["stalled_evictions"]
        meta = json.loads(stall_dumps[0].read_text().splitlines()[0])
        assert meta["kind"] == "flight-meta"
        assert meta["trigger"] == "stalled_eviction"
        assert meta["conversations"] > 0


class TestRefusedChunkJourney:
    def _refused_journeys(self, journal: Path):
        tracker = JourneyTracker()
        tracker.replay(load_records(journal))
        honest = [
            j
            for cid in tracker.conversation_ids()
            if cid < 10_000  # attacker C.IDs start at 10000
            for j in tracker.journeys(c_id=cid)
            if j.refusals()
        ]
        assert honest, "no honest conversation had a refused chunk"
        return honest

    def test_journal_reconstructs_full_refused_journey(self, recorded_run):
        *_, journal = recorded_run
        journeys = self._refused_journeys(journal)
        # At least one refused chunk shows the complete story: formed,
        # retransmitted across generations, refused for budget, then
        # refused again after its conversation was evicted for stall.
        reasons = {
            str(r.fields.get("reason"))
            for j in journeys
            for r in j.refusals()
        }
        assert "budget" in reasons
        assert "evicted" in reasons
        exemplar = next(
            j
            for j in journeys
            if j.stages[0] == "formed"
            and max(j.generations) > 0
            and any(r.fields.get("reason") == "budget" for r in j.refusals())
        )
        assert "retransmit" in exemplar.stages
        # The eviction event is joined into the same journey.
        evictions = [
            r for r in exemplar.conn_records if r.stage == "evicted"
        ]
        assert evictions and evictions[0].fields["reason"] == "stalled"
        # And the journey is causally ordered.
        times = [record.t for record in exemplar.records]
        assert times == sorted(times)

    def test_perfetto_export_contains_refused_timeline(self, recorded_run):
        *_, journal = recorded_run
        records = load_records(journal)
        trace = journeys_to_trace(records)
        parse_trace(trace)
        timelines = chunk_timelines(trace)
        exemplar = self._refused_journeys(journal)[0]
        assert exemplar.key in timelines
        stages = [stage for _, stage, _ in timelines[exemplar.key]]
        assert stages == exemplar.stages


class TestEvictionReasons:
    def test_slow_loris_evictions_carry_stalled_reason(self, recorded_run):
        *_, tracer, _ = recorded_run
        evictions = [e for e in tracer.events if e.name == "conn_evicted"]
        assert evictions
        for event in evictions:
            assert event.fields.get("reason") in EVICTION_REASONS
        assert any(e.fields["reason"] == "stalled" for e in evictions)

    def test_tombstone_drops_carry_overflow_reason(self, recorded_run):
        *_, tracer, _ = recorded_run
        for event in tracer.events:
            if event.name == "tombstone_dropped":
                assert event.fields["reason"] == "tombstone_overflow"
                assert event.fields["dropped"] > 0

    def _idle_endpoint(self, end_of_connection: bool):
        loop = EventLoop()
        sender = ChunkEndpoint(loop, mtu=1500, idle_timeout=0.5)
        receiver = ChunkEndpoint(loop, mtu=1500, idle_timeout=0.5)
        forward = Link(
            loop, receiver.receive_packet, rate_bps=622e6, delay=0.0005,
            rng=substream(3, "blackbox", "f"),
        )
        reverse = Link(
            loop, sender.receive_packet, rate_bps=622e6, delay=0.0005,
            rng=substream(3, "blackbox", "r"),
        )
        sender.transmit = forward.send
        receiver.transmit = reverse.send
        connection = sender.open_connection(ConnectionConfig(connection_id=4))
        connection.send_frame(
            deterministic_bytes(1024, 3),
            end_of_connection=end_of_connection,
        )
        loop.run()
        return loop, receiver

    def _sweep_reasons(self, end_of_connection: bool) -> set[str]:
        with obs.session() as (_registry, tracer):
            loop, receiver = self._idle_endpoint(end_of_connection)
            evicted = receiver.sweep(loop.now + 10.0)
            assert 4 in evicted
            return {
                str(e.fields["reason"])
                for e in tracer.events
                if e.name == "conn_evicted"
            }

    def test_idle_eviction_reason(self):
        assert self._sweep_reasons(end_of_connection=False) == {"idle"}

    def test_closed_eviction_reason(self):
        assert self._sweep_reasons(end_of_connection=True) == {"closed"}
