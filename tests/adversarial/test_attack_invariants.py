"""The invariant harness: every attack scenario, every invariant.

Each property drives a full adversarial scenario (honest conversations
sharing an endpoint pair with a seeded attacker) and asserts the four
invariants via :func:`repro.app.adversarial.check_invariants`:

1. no acknowledged-but-unplaced bytes,
2. bounded pool/tombstone/negative-cache memory,
3. inconsistent overlaps detected (never silently resolved),
4. honest peers complete with Jain fairness >= 0.8.

Scenarios are pure functions of their seed, so any failure here is a
replayable counterexample.  The heavyweight properties bound their own
example counts (a scenario is a whole simulation run); the targeted
regression tests below each pin one scenario-specific behavior.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.app.adversarial import (
    SCENARIOS,
    check_invariants,
    jain_fairness,
    run_cid_churn,
    run_overlap_attack,
    run_reorder_attack,
    run_signaling_storm,
    run_slow_loris,
)

seeds = st.integers(min_value=0, max_value=2**16)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@settings(max_examples=6, deadline=None)
@given(seed=seeds)
def test_every_scenario_upholds_the_invariants(scenario, seed):
    check_invariants(SCENARIOS[scenario](seed))


# ----------------------------------------------------------------------
# Scenario-specific teeth
# ----------------------------------------------------------------------


@settings(max_examples=6, deadline=None)
@given(seed=seeds)
def test_forge_after_overlaps_are_all_detected_and_harmless(seed):
    report = run_overlap_attack(seed, forge_first=False)
    # The genuine bytes land first, so every forgery must surface as an
    # overlap conflict and every conversation still completes.
    assert report.extra["forged_chunks"] > 0
    assert report.detections["overlap_conflicts"] > 0
    assert all(o.complete for o in report.outcomes)


@settings(max_examples=6, deadline=None)
@given(seed=seeds)
def test_poison_first_is_denial_of_service_never_silent_corruption(seed):
    report = run_overlap_attack(seed, forge_first=True)
    assert report.detected() > 0
    for outcome in report.outcomes:
        if outcome.complete:
            continue
        # An incomplete conversation must be *visibly* incomplete: its
        # sender is still retrying, gave up, or was refused — the one
        # forbidden state is a clean finish over corrupted bytes.
        assert (
            not outcome.sender_finished
            or outcome.sender_gave_up > 0
            or not outcome.launched
        ), f"conversation {outcome.spec.connection_id} silently corrupted"


@settings(max_examples=4, deadline=None)
@given(seed=seeds, model=st.sampled_from(["almost-sorted", "coalescing"]))
def test_pathological_reorder_never_costs_a_byte(seed, model):
    report = run_reorder_attack(seed, model)
    assert all(o.complete for o in report.outcomes)
    assert jain_fairness(report.honest_shares()) == pytest.approx(1.0)


@settings(max_examples=4, deadline=None)
@given(seed=seeds)
def test_signaling_storm_leaves_no_lasting_state(seed):
    report = run_signaling_storm(seed, storm_frames=300)
    assert report.attack_frames == 300
    assert all(o.complete for o in report.outcomes)
    # Sweeps reclaimed the storm's connection carcasses...
    assert report.stats["active_connections"] <= len(report.outcomes)
    # ...into the (bounded) tombstone set, and the pool shed their
    # registrations entirely.
    assert report.stats["evicted_total"] >= 300
    assert report.stats["tombstones"] <= report.tombstone_cap
    assert report.stats["budget_reserved"] == 0


@settings(max_examples=4, deadline=None)
@given(seed=seeds)
def test_cid_churn_cannot_grow_the_tombstone_set_past_its_cap(seed):
    report = run_cid_churn(seed, churn_cycles=200, tombstone_cap=64)
    assert report.stats["tombstones"] <= 64
    # Far more identifiers were churned than the cap holds: the FIFO
    # actually dropped (and counted) the overflow.
    assert report.extra["tombstones_dropped"] > 0
    assert all(o.complete for o in report.outcomes)


def test_sharded_cid_churn_divides_the_tombstone_bound_not_multiplies_it():
    # N per-shard tombstone FIFOs must share the endpoint-wide bound:
    # churn far more attacker identifiers than the bound holds and check
    # total tombstone memory never reaches N x cap.
    from repro.app.adversarial import ATTACKER_CID_BASE, _attacker_data_chunk
    from repro.core.packet import Packet
    from repro.netsim.shardloop import ShardedLoop
    from repro.transport.connection import ConnectionConfig, build_signaling_chunk
    from repro.transport.shard import ShardedEndpoint

    shards, cap, cycles = 4, 64, 300
    loop = ShardedLoop()
    receiver = ShardedEndpoint(
        loop, shards=shards, idle_timeout=0.05, close_linger=0.02,
        tombstone_capacity=cap,
    )
    receiver.transmit = lambda frame: None  # attacker never reads acks

    def churn(index: int):
        cid = ATTACKER_CID_BASE + index
        frame = Packet(
            chunks=[
                build_signaling_chunk(ConnectionConfig(connection_id=cid)),
                _attacker_data_chunk(cid, 0, close=True),
            ]
        ).encode()
        return lambda: receiver.receive_packet(frame)

    for index in range(cycles):
        loop.at(index * 2e-4, churn(index))
    horizon = cycles * 2e-4 + 2.0
    for tick in range(1, int(horizon / 0.05) + 1):
        loop.at(tick * 0.05, lambda: receiver.sweep())
    loop.run()
    receiver.sweep(now=loop.now + 1.0)

    shard_cap = -(-cap // shards)
    sizes = [len(s.endpoint.table.evicted_ids) for s in receiver.shards]
    caps = [s.endpoint.table.evicted_ids.max_entries for s in receiver.shards]
    assert caps == [shard_cap] * shards
    assert all(size <= shard_cap for size in sizes)
    # The endpoint-wide memory bound held (cap divides evenly here, so
    # no rounding slack) even though every shard's FIFO overflowed.
    assert sum(sizes) <= cap
    evicted_total = sum(s.endpoint.table.evicted_total for s in receiver.shards)
    assert evicted_total == cycles
    assert all(s.endpoint.table.evicted_ids.dropped > 0 for s in receiver.shards)


@settings(max_examples=4, deadline=None)
@given(seed=seeds)
def test_slow_loris_tricklers_are_evicted_on_throughput_grounds(seed):
    report = run_slow_loris(seed)
    # Idle eviction cannot catch them (they are never idle); progress
    # policing must, and the honest conversations must then complete.
    assert report.extra["stalled_evictions"] > 0
    assert all(o.complete for o in report.outcomes)
    assert report.honest_fairness() >= 0.8


def test_jain_fairness_definition():
    assert jain_fairness([]) == 1.0
    assert jain_fairness([0, 0]) == 1.0
    assert jain_fairness([5, 5, 5]) == pytest.approx(1.0)
    assert jain_fairness([9, 0, 0]) == pytest.approx(1 / 3)
    assert 0.8 < jain_fairness([4, 5, 6]) < 1.0
