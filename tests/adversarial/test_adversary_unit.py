"""Unit and property tests for the attack machinery itself.

The generators must be trustworthy before the invariant harness can
mean anything: a forged chunk that accidentally matches the original
bytes, or a reorder policy that schedules into the past, would make the
attack suites vacuous.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bounded import BoundedSet
from repro.core.packet import Packet
from repro.netsim.adversary import (
    OVERLAP_KINDS,
    AlmostSortedReorder,
    FrameFlood,
    InterruptCoalescingReorder,
    OverlapRewriter,
)
from repro.netsim.events import EventLoop
from repro.netsim.link import Link
from repro.netsim.rng import substream
from tests.conftest import make_chunk


# ----------------------------------------------------------------------
# OverlapRewriter
# ----------------------------------------------------------------------


@given(
    sn=st.integers(min_value=0, max_value=64),
    units=st.integers(min_value=1, max_value=16),
    size=st.sampled_from([1, 2]),
    kind=st.sampled_from(OVERLAP_KINDS),
    seed=st.integers(min_value=0, max_value=999),
)
def test_forged_chunk_overlaps_and_always_disagrees(sn, units, size, kind, seed):
    chunk = make_chunk(units=units, size=size, c_sn=sn, t_sn=sn, x_sn=sn, seed=seed)
    rewriter = OverlapRewriter(
        deliver=lambda _: None, rng=substream(seed, "forge")
    )
    forged = rewriter.forge(chunk, kind)

    # Wire-valid: survives an encode/decode round trip unchanged.
    assert Packet.decode(Packet(chunks=[forged]).encode()).chunks == [forged]

    # The forged C-range intersects the genuine range...
    lo = max(forged.c.sn, chunk.c.sn)
    hi = min(forged.c.sn + forged.length, chunk.c.sn + chunk.length)
    assert lo < hi, f"{kind} forgery does not overlap the original"

    # ...and every overlapping unit's bytes differ (the inconsistency).
    unit_bytes = chunk.unit_bytes
    for unit in range(lo, hi):
        real = chunk.payload[
            (unit - chunk.c.sn) * unit_bytes : (unit - chunk.c.sn + 1) * unit_bytes
        ]
        fake = forged.payload[
            (unit - forged.c.sn) * unit_bytes : (unit - forged.c.sn + 1) * unit_bytes
        ]
        assert real != fake

    # Framing levels stay self-consistent: the forged tuples keep the
    # original C/T/X deltas, so per-chunk checks cannot reject it.
    shift = forged.c.sn - chunk.c.sn
    assert forged.t.sn - chunk.t.sn == shift
    assert forged.x.sn - chunk.x.sn == shift


def test_rewriter_forges_per_data_chunk_and_orders_frames():
    seen: list[bytes] = []
    rewriter = OverlapRewriter(deliver=seen.append, rng=substream(1, "order"))
    genuine = Packet(chunks=[make_chunk(units=4)]).encode()
    rewriter.send(genuine)
    assert len(seen) == 2 and seen[0] == genuine  # forge-after by default

    seen.clear()
    first = OverlapRewriter(
        deliver=seen.append, forge_first=True, rng=substream(1, "order2")
    )
    first.send(genuine)
    assert len(seen) == 2 and seen[1] == genuine  # poison-first variant


def test_rewriter_ignores_undecodable_and_non_data_frames():
    seen: list[bytes] = []
    rewriter = OverlapRewriter(deliver=seen.append, rng=substream(1, "skip"))
    rewriter.send(b"not a packet")
    assert seen == [b"not a packet"]
    assert rewriter.stats.undecodable_frames == 1
    assert rewriter.stats.forged_chunks == 0


def test_rewriter_rejects_bad_configuration():
    with pytest.raises(ValueError):
        OverlapRewriter(deliver=lambda _: None, kinds=("bogus",))
    with pytest.raises(ValueError):
        OverlapRewriter(deliver=lambda _: None, taint=0)


def test_attack_rate_zero_never_forges():
    seen: list[bytes] = []
    rewriter = OverlapRewriter(
        deliver=seen.append, attack_rate=0.0, rng=substream(1, "rate")
    )
    frame = Packet(chunks=[make_chunk()]).encode()
    for _ in range(20):
        rewriter.send(frame)
    assert len(seen) == 20
    assert rewriter.stats.forged_chunks == 0


# ----------------------------------------------------------------------
# Reorder policies
# ----------------------------------------------------------------------


@given(
    nominal=st.floats(min_value=0.0, max_value=10.0),
    now=st.floats(min_value=0.0, max_value=10.0),
    seed=st.integers(min_value=0, max_value=99),
)
def test_almost_sorted_never_schedules_into_the_past(nominal, now, seed):
    policy = AlmostSortedReorder(rng=substream(seed, "almost"))
    release = policy.release_time(nominal, now)
    assert release >= now
    assert release >= nominal or release == now
    assert release <= max(nominal, now) + policy.max_skew


def test_almost_sorted_displaces_roughly_its_configured_fraction():
    policy = AlmostSortedReorder(
        displacement_rate=0.25, rng=substream(7, "fraction")
    )
    for index in range(1000):
        policy.release_time(index * 0.001, 0.0)
    assert 150 <= policy.displaced <= 350


def test_interrupt_coalescing_inverts_within_a_window():
    policy = InterruptCoalescingReorder(window=0.001)
    releases = [policy.release_time(0.0001 * (i + 1), 0.0) for i in range(8)]
    # All coalesced to the same boundary, released newest-first.
    assert all(0.001 <= r < 0.002 for r in releases)
    assert releases == sorted(releases, reverse=True)
    assert len(set(releases)) == len(releases)


def test_interrupt_coalescing_without_inversion_is_pure_batching():
    policy = InterruptCoalescingReorder(window=0.001, invert=False)
    releases = [policy.release_time(0.0001 * (i + 1), 0.0) for i in range(8)]
    assert set(releases) == {0.001}


def test_interrupt_coalescing_windows_do_not_interleave():
    policy = InterruptCoalescingReorder(window=0.001)
    first_window = [policy.release_time(0.0001 * (i + 1), 0.0) for i in range(5)]
    second_window = [policy.release_time(0.001 + 0.0001 * (i + 1), 0.0) for i in range(5)]
    assert max(first_window) < min(second_window)


def test_link_reorder_seam_delivers_out_of_order():
    loop = EventLoop()
    arrived: list[bytes] = []
    link = Link(
        loop,
        arrived.append,
        rate_bps=1e9,
        delay=0.0001,
        rng=substream(3, "link"),
        reorder=InterruptCoalescingReorder(window=0.01),
    )
    frames = [bytes([i]) * 64 for i in range(6)]
    for frame in frames:
        link.send(frame)
    loop.run()
    assert sorted(arrived, key=frames.index) == frames
    assert arrived == frames[::-1]  # one window, LIFO release
    assert link.stats.frames_delivered == 6


def test_link_clamps_policy_times_to_the_present():
    class PastPolicy:
        def release_time(self, nominal: float, now: float) -> float:
            return -5.0  # hostile policy: try to schedule into the past

    loop = EventLoop()
    arrived: list[bytes] = []
    link = Link(loop, arrived.append, rng=substream(3, "clamp"), reorder=PastPolicy())
    link.send(b"x" * 32)
    loop.run()
    assert arrived == [b"x" * 32]


# ----------------------------------------------------------------------
# FrameFlood
# ----------------------------------------------------------------------


def test_flood_injects_exactly_count_frames_at_its_pace():
    loop = EventLoop()
    arrivals: list[tuple[float, bytes]] = []
    flood = FrameFlood(
        loop,
        lambda frame: arrivals.append((loop.now, frame)),
        frames=lambda i: bytes([i % 256]),
        interval=0.01,
        count=5,
    )
    flood.launch()
    loop.run()
    assert [f for _, f in arrivals] == [bytes([i]) for i in range(5)]
    times = [t for t, _ in arrivals]
    assert times == [pytest.approx(0.01 * i) for i in range(5)]
    assert flood.injected == 5


def test_flood_stops_when_the_factory_returns_none():
    loop = EventLoop()
    sent: list[bytes] = []
    flood = FrameFlood(
        loop,
        sent.append,
        frames=lambda i: bytes([i]) if i < 3 else None,
        interval=0.001,
        count=100,
    )
    flood.launch()
    loop.run()
    assert len(sent) == 3
    assert flood.stopped


# ----------------------------------------------------------------------
# BoundedSet (the tombstone container the floods grind against)
# ----------------------------------------------------------------------


@given(keys=st.lists(st.integers(min_value=0, max_value=50), max_size=200))
def test_bounded_set_never_exceeds_its_cap(keys):
    bounded = BoundedSet(max_entries=8)
    for key in keys:
        bounded.add(key)
        assert len(bounded) <= 8
    distinct = len(set(keys))
    assert bounded.dropped == max(distinct - 8, 0) if distinct <= 8 else True
    assert len(bounded) == min(distinct, 8)


def test_bounded_set_drops_oldest_first_and_counts():
    bounded = BoundedSet(max_entries=3)
    for key in (1, 2, 3, 4):
        bounded.add(key)
    assert 1 not in bounded
    assert all(k in bounded for k in (2, 3, 4))
    assert bounded.dropped == 1


def test_bounded_set_readding_does_not_refresh_age():
    bounded = BoundedSet(max_entries=3)
    for key in (1, 2, 3):
        bounded.add(key)
    bounded.add(1)  # replay: must not move 1 to the back of the queue
    bounded.add(4)
    assert 1 not in bounded


def test_bounded_set_discard_and_validation():
    bounded = BoundedSet(max_entries=2)
    bounded.add("a")
    bounded.discard("a")
    bounded.discard("missing")
    assert not bounded
    assert list(bounded) == []
    with pytest.raises(ValueError):
        BoundedSet(max_entries=0)
