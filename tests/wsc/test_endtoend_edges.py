"""Edge-case tests for the end-to-end verifier's receiver surface."""

from repro.core.builder import ChunkStreamBuilder
from repro.core.chunk import Chunk
from repro.core.tuples import FramingTuple
from repro.core.types import ChunkType
from repro.transport.connection import ConnectionConfig, build_signaling_chunk
from repro.wsc.endtoend import EndToEndReceiver
from repro.wsc.invariant import encode_tpdu

from tests.conftest import make_payload


def _tpdu(connection_id=5, tpdu_units=8, seed=0):
    builder = ChunkStreamBuilder(connection_id=connection_id, tpdu_units=tpdu_units)
    chunks = builder.add_frame(make_payload(tpdu_units, seed=seed), frame_id=0)
    _, ed = encode_tpdu(chunks)
    return chunks, ed


class TestNonTpduChunks:
    def test_signaling_chunks_are_ignored(self):
        receiver = EndToEndReceiver()
        signaling = build_signaling_chunk(ConnectionConfig(connection_id=5))
        assert receiver.receive(signaling) == []
        assert receiver.pending() == []

    def test_ack_chunks_are_ignored(self):
        from repro.transport.acks import build_ack_chunk

        receiver = EndToEndReceiver()
        assert receiver.receive(build_ack_chunk(5, [1, 2])) == []

    def test_external_control_ignored(self):
        receiver = EndToEndReceiver()
        chunk = Chunk(
            type=ChunkType.EXTERNAL_CONTROL,
            size=1,
            length=1,
            c=FramingTuple(5, 0),
            t=FramingTuple(0, 0),
            x=FramingTuple(9, 0),
            payload=b"\x00\x00\x00\x01",
        )
        assert receiver.receive(chunk) == []


class TestStateManagement:
    def test_evict_clears_finished_state(self):
        chunks, ed = _tpdu()
        receiver = EndToEndReceiver()
        for chunk in chunks + [ed]:
            receiver.receive(chunk)
        assert receiver.verified == 1
        receiver.evict(5, 0)
        # Re-delivery after evict starts a fresh checker and verifies again.
        verdicts = []
        for chunk in chunks + [ed]:
            verdicts += receiver.receive(chunk)
        assert len(verdicts) == 1 and verdicts[0].ok
        assert receiver.verified == 2

    def test_pending_lists_unfinished_only(self):
        chunks, ed = _tpdu()
        receiver = EndToEndReceiver()
        receiver.receive(chunks[0])
        assert receiver.pending() == [(5, 0)]
        receiver.receive(ed)
        for chunk in chunks[1:]:
            receiver.receive(chunk)
        assert receiver.pending() == []

    def test_abort_is_idempotent(self):
        chunks, _ = _tpdu()
        receiver = EndToEndReceiver()
        receiver.receive(chunks[0])
        first = receiver.abort_pending()
        second = receiver.abort_pending()
        assert len(first) == 1
        assert second == []
        assert receiver.corrupted == 1

    def test_counters_track_verdicts(self):
        receiver = EndToEndReceiver()
        builder = ChunkStreamBuilder(connection_id=9, tpdu_units=4)
        good = builder.add_frame(make_payload(4, seed=1), frame_id=0)
        _, good_ed = encode_tpdu(good)
        for chunk in good + [good_ed]:
            receiver.receive(chunk)
        bad = builder.add_frame(make_payload(4, seed=2), frame_id=1)
        _, bad_ed = encode_tpdu(bad)
        from dataclasses import replace

        corrupted = replace(bad[0], payload=b"\xff" + bad[0].payload[1:])
        for chunk in [corrupted] + [bad_ed]:
            receiver.receive(chunk)
        assert receiver.verified == 1
        assert receiver.corrupted == 1
