"""Unit and property tests for the Figure 5/6 TPDU invariant."""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import ChunkStreamBuilder
from repro.core.errors import ChunkError, ErrorDetectionMismatch
from repro.core.fragment import split_to_unit_limit
from repro.wsc.invariant import (
    C_ID_POS,
    C_ST_POS,
    T_ID_POS,
    X_PAIR_BASE,
    EdPayload,
    TpduInvariant,
    build_ed_chunk,
    decode_tpdu,
    encode_tpdu,
    parse_ed_chunk,
)
from repro.wsc.wsc2 import Wsc2Accumulator, symbols_from_bytes

from tests.conftest import make_chunk, make_payload


class TestPositionMap:
    def test_figure5_constants(self):
        assert T_ID_POS == 16384
        assert C_ID_POS == 16385
        assert C_ST_POS == 16386
        assert X_PAIR_BASE == 16387

    def test_ids_encoded_once_at_fixed_positions(self):
        invariant = TpduInvariant(c_id=0xAA, t_id=0xBB)
        expected = Wsc2Accumulator()
        expected.add_symbol(T_ID_POS, 0xBB)
        expected.add_symbol(C_ID_POS, 0xAA)
        assert invariant.value() == expected.value()

    def test_data_positions_scale_with_size(self):
        chunk = make_chunk(units=3, size=2, t_sn=4)
        invariant = TpduInvariant(chunk.c.ident, chunk.t.ident)
        invariant.add_chunk(chunk)
        expected = Wsc2Accumulator()
        expected.add_symbol(T_ID_POS, chunk.t.ident)
        expected.add_symbol(C_ID_POS, chunk.c.ident)
        expected.add_run(8, symbols_from_bytes(chunk.payload))  # 4 units * 2 words
        assert invariant.value() == expected.value()

    def test_xid_pair_positions_follow_figure6(self):
        chunk = make_chunk(units=5, t_sn=10, x_id=0x77, x_st=True)
        invariant = TpduInvariant(chunk.c.ident, chunk.t.ident)
        invariant.add_chunk(chunk)
        expected = Wsc2Accumulator()
        expected.add_symbol(T_ID_POS, chunk.t.ident)
        expected.add_symbol(C_ID_POS, chunk.c.ident)
        expected.add_run(10, symbols_from_bytes(chunk.payload))
        pair_base = X_PAIR_BASE + 2 * 14  # final unit T.SN = 10 + 5 - 1
        expected.add_symbol(pair_base, 0x77)
        expected.add_symbol(pair_base + 1, 1)
        assert invariant.value() == expected.value()

    def test_t_st_triggers_xid_with_zero_xst_value(self):
        chunk = make_chunk(units=2, t_st=True, x_id=0x31, x_st=False)
        invariant = TpduInvariant(chunk.c.ident, chunk.t.ident)
        invariant.add_chunk(chunk)
        expected = Wsc2Accumulator()
        expected.add_symbol(T_ID_POS, chunk.t.ident)
        expected.add_symbol(C_ID_POS, chunk.c.ident)
        expected.add_run(0, symbols_from_bytes(chunk.payload))
        expected.add_symbol(X_PAIR_BASE + 2 * 1, 0x31)
        expected.add_symbol(X_PAIR_BASE + 2 * 1 + 1, 0)  # no-op but explicit
        assert invariant.value() == expected.value()

    def test_c_st_encodes_one_at_fixed_position(self):
        chunk = make_chunk(units=2, c_st=True, t_st=True)
        invariant = TpduInvariant(chunk.c.ident, chunk.t.ident)
        invariant.add_chunk(chunk)
        plain = TpduInvariant(chunk.c.ident, chunk.t.ident)
        plain.add_chunk(make_chunk(units=2, t_st=True))
        # Same data; the C.ST symbol is the only difference.
        delta = Wsc2Accumulator()
        delta.add_symbol(C_ST_POS, 1)
        with_cst = invariant.value()
        without_cst = plain.value()
        assert with_cst[0] == without_cst[0] ^ delta.p0
        assert with_cst[1] == without_cst[1] ^ delta.p1

    def test_data_beyond_16384_symbols_rejected(self):
        chunk = make_chunk(units=1, t_sn=16384)
        invariant = TpduInvariant(chunk.c.ident, chunk.t.ident)
        with pytest.raises(ChunkError):
            invariant.add_chunk(chunk)

    def test_control_chunk_rejected(self):
        invariant = TpduInvariant(1, 2)
        with pytest.raises(ChunkError):
            invariant.add_chunk(build_ed_chunk(1, 2, EdPayload(0, 0, 1)))

    def test_bad_unit_range_rejected(self):
        chunk = make_chunk(units=4)
        invariant = TpduInvariant(chunk.c.ident, chunk.t.ident)
        with pytest.raises(ChunkError):
            invariant.add_units(chunk, 2, 2)
        with pytest.raises(ChunkError):
            invariant.add_units(chunk, 0, 5)


class TestFragmentationInvariance:
    def _tpdu_chunks(self, frames=3, tpdu_units=24, units=8):
        builder = ChunkStreamBuilder(connection_id=5, tpdu_units=tpdu_units)
        chunks = []
        for i in range(frames):
            chunks += builder.add_frame(make_payload(units, seed=i), frame_id=50 + i)
        return [c for c in chunks if c.t.ident == 0]

    def test_value_invariant_under_any_fragmentation(self):
        chunks = self._tpdu_chunks()
        reference = encode_tpdu(chunks)[0]
        for limit in (1, 2, 3, 5, 7):
            pieces = [p for c in chunks for p in split_to_unit_limit(c, limit)]
            random.Random(limit).shuffle(pieces)
            invariant = TpduInvariant(5, 0)
            for piece in pieces:
                invariant.add_chunk(piece)
            assert invariant.value() == (reference.p0, reference.p1)

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 2**32))
    @settings(max_examples=40)
    def test_two_stage_fragmentation_property(self, limit_a, limit_b, seed):
        chunks = self._tpdu_chunks()
        reference = encode_tpdu(chunks)[0]
        stage1 = [p for c in chunks for p in split_to_unit_limit(c, limit_a)]
        stage2 = [p for c in stage1 for p in split_to_unit_limit(c, limit_b)]
        random.Random(seed).shuffle(stage2)
        invariant = TpduInvariant(5, 0)
        for piece in stage2:
            invariant.add_chunk(piece)
        assert invariant.value() == (reference.p0, reference.p1)

    def test_partial_range_accumulation_matches_whole(self):
        """Feeding a chunk via fresh sub-ranges equals feeding it whole
        (the duplicate-overlap path of the receiver)."""
        chunk = make_chunk(units=9, t_st=True)
        whole = TpduInvariant(chunk.c.ident, chunk.t.ident)
        whole.add_chunk(chunk)
        parts = TpduInvariant(chunk.c.ident, chunk.t.ident)
        parts.add_units(chunk, 0, 4)
        parts.add_units(chunk, 4, 9)
        assert parts.value() == whole.value()

    def test_trigger_applies_only_with_final_unit(self):
        chunk = make_chunk(units=6, t_st=True, x_st=True)
        partial = TpduInvariant(chunk.c.ident, chunk.t.ident)
        partial.add_units(chunk, 0, 5)  # final unit excluded: no trigger
        whole = TpduInvariant(chunk.c.ident, chunk.t.ident)
        whole.add_chunk(chunk)
        assert partial.value() != whole.value()
        partial.add_units(chunk, 5, 6)  # now the trigger fires
        assert partial.value() == whole.value()

    def test_each_xid_encoded_exactly_once_per_tpdu(self):
        """Figure 6: three external PDUs inside one TPDU — each X.ID
        must enter the code space exactly once, including the PDU that
        starts but does not end inside the TPDU."""
        builder = ChunkStreamBuilder(connection_id=5, tpdu_units=9)
        chunks = []
        chunks += builder.add_frame(make_payload(3, seed=0), frame_id=0xA)
        chunks += builder.add_frame(make_payload(4, seed=1), frame_id=0xB)
        chunks += builder.add_frame(make_payload(4, seed=2), frame_id=0xC)
        tpdu0 = [c for c in chunks if c.t.ident == 0]
        # The last chunk of TPDU 0 ends the TPDU mid-frame-C.
        x_ids = [c.x.ident for c in tpdu0]
        assert set(x_ids) == {0xA, 0xB, 0xC}
        triggers = [
            c for c in tpdu0 if c.x.st or c.t.st
        ]
        assert [t.x.ident for t in triggers] == [0xA, 0xB, 0xC]


class TestEdChunks:
    def test_payload_roundtrip(self):
        payload = EdPayload(p0=0x11223344, p1=0xAABBCCDD, total_units=4096)
        assert EdPayload.decode(payload.encode()) == payload

    def test_bad_length_rejected(self):
        with pytest.raises(ChunkError):
            EdPayload.decode(b"\x00" * 11)

    def test_build_and_parse(self):
        payload = EdPayload(1, 2, 3)
        chunk = build_ed_chunk(7, 8, payload)
        assert chunk.c.ident == 7 and chunk.t.ident == 8
        assert parse_ed_chunk(chunk) == payload

    def test_parse_rejects_data_chunk(self):
        with pytest.raises(ChunkError):
            parse_ed_chunk(make_chunk(units=1))

    def test_encode_tpdu_totals(self):
        builder = ChunkStreamBuilder(connection_id=1, tpdu_units=12)
        chunks = builder.add_frame(make_payload(12))
        payload, ed = encode_tpdu(chunks)
        assert payload.total_units == 12
        assert ed.t.ident == 0

    def test_encode_tpdu_rejects_mixed_tpdus(self):
        builder = ChunkStreamBuilder(connection_id=1, tpdu_units=4)
        chunks = builder.add_frame(make_payload(8))
        with pytest.raises(ChunkError):
            encode_tpdu(chunks)

    def test_encode_tpdu_rejects_empty(self):
        with pytest.raises(ChunkError):
            encode_tpdu([])

    def test_encode_tpdu_is_order_independent(self):
        builder = ChunkStreamBuilder(connection_id=1, tpdu_units=10)
        chunks = builder.add_frame(make_payload(10))
        pieces = [p for c in chunks for p in split_to_unit_limit(c, 3)]
        forward = encode_tpdu(pieces)[0]
        backward = encode_tpdu(list(reversed(pieces)))[0]
        assert forward == backward


class TestDecodeTpdu:
    def _encoded(self, units=12):
        builder = ChunkStreamBuilder(connection_id=1, tpdu_units=units)
        chunks = builder.add_frame(make_payload(units, seed=9))
        payload, _ = encode_tpdu(chunks)
        return chunks, payload

    def test_roundtrip(self):
        chunks, payload = self._encoded()
        assert decode_tpdu(chunks, payload) == b"".join(c.payload for c in chunks)

    def test_roundtrip_across_refragmentation(self):
        chunks, payload = self._encoded()
        pieces = [p for c in chunks for p in split_to_unit_limit(c, 5)]
        random.Random(7).shuffle(pieces)
        assert decode_tpdu(pieces, payload) == b"".join(c.payload for c in chunks)

    def test_missing_unit_is_reassembly_error(self):
        chunks, payload = self._encoded()
        pieces = [p for c in chunks for p in split_to_unit_limit(c, 1)]
        with pytest.raises(ErrorDetectionMismatch) as excinfo:
            decode_tpdu(pieces[:-1], payload)
        assert excinfo.value.reason == "reassembly-error"

    def test_duplicate_unit_is_reassembly_error(self):
        chunks, payload = self._encoded()
        with pytest.raises(ErrorDetectionMismatch) as excinfo:
            decode_tpdu(chunks + [chunks[0]], payload)
        assert excinfo.value.reason == "reassembly-error"

    def test_corrupt_payload_is_code_mismatch(self):
        chunks, payload = self._encoded()
        flipped = bytearray(chunks[0].payload)
        flipped[0] ^= 0x01
        bad = replace(chunks[0], payload=bytes(flipped))
        with pytest.raises(ErrorDetectionMismatch) as excinfo:
            decode_tpdu([bad] + list(chunks[1:]), payload)
        assert excinfo.value.reason == "code-mismatch"

    def test_empty_rejected(self):
        with pytest.raises(ChunkError):
            decode_tpdu([], EdPayload(0, 0, 0))
