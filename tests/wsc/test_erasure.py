"""Unit and property tests for WSC-2 erasure repair."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import ChunkStreamBuilder
from repro.core.fragment import split_to_unit_limit
from repro.wsc.erasure import ErasureError, recover_erasures, repair_missing_word
from repro.wsc.invariant import TpduInvariant, encode_tpdu, parse_ed_chunk
from repro.wsc.wsc2 import Wsc2Accumulator, wsc2_encode

from tests.conftest import make_payload

symbols_strategy = st.lists(st.integers(0, 2**32 - 1), min_size=2, max_size=48)


def _accumulate_without(symbols, missing):
    acc = Wsc2Accumulator()
    for position, value in enumerate(symbols):
        if position not in missing:
            acc.add_symbol(position, value)
    return acc


class TestRecoverErasures:
    def test_zero_erasures_consistent(self):
        symbols = [1, 2, 3]
        p0, p1 = wsc2_encode(symbols)
        acc = _accumulate_without(symbols, set())
        assert recover_erasures(acc, p0, p1, []) == {}

    def test_zero_erasures_with_corruption_raises(self):
        symbols = [1, 2, 3]
        p0, p1 = wsc2_encode(symbols)
        acc = _accumulate_without(symbols, set())
        acc.add_symbol(1, 0xFF)  # corrupt a present symbol
        with pytest.raises(ErasureError):
            recover_erasures(acc, p0, p1, [])

    def test_single_erasure(self):
        symbols = [10, 20, 30, 40, 50]
        p0, p1 = wsc2_encode(symbols)
        acc = _accumulate_without(symbols, {2})
        assert recover_erasures(acc, p0, p1, [2]) == {2: 30}

    def test_single_erasure_with_corruption_detected(self):
        symbols = [10, 20, 30, 40, 50]
        p0, p1 = wsc2_encode(symbols)
        acc = _accumulate_without(symbols, {2})
        acc.add_symbol(4, 0x1)  # flip a present symbol too
        with pytest.raises(ErasureError):
            recover_erasures(acc, p0, p1, [2])

    def test_double_erasure(self):
        symbols = [111, 222, 333, 444, 555, 666]
        p0, p1 = wsc2_encode(symbols)
        acc = _accumulate_without(symbols, {1, 4})
        solved = recover_erasures(acc, p0, p1, [1, 4])
        assert solved == {1: 222, 4: 555}

    def test_double_erasure_adjacent(self):
        symbols = list(range(1, 20))
        p0, p1 = wsc2_encode(symbols)
        acc = _accumulate_without(symbols, {7, 8})
        assert recover_erasures(acc, p0, p1, [7, 8]) == {7: 8, 8: 9}

    def test_three_erasures_rejected(self):
        symbols = [1, 2, 3, 4]
        p0, p1 = wsc2_encode(symbols)
        acc = _accumulate_without(symbols, {0, 1, 2})
        with pytest.raises(ErasureError):
            recover_erasures(acc, p0, p1, [0, 1, 2])

    def test_duplicate_positions_rejected(self):
        with pytest.raises(ErasureError):
            recover_erasures(Wsc2Accumulator(), 0, 0, [3, 3])

    @given(symbols_strategy, st.data())
    @settings(max_examples=60)
    def test_single_erasure_property(self, symbols, data):
        p0, p1 = wsc2_encode(symbols)
        j = data.draw(st.integers(0, len(symbols) - 1))
        acc = _accumulate_without(symbols, {j})
        assert recover_erasures(acc, p0, p1, [j]) == {j: symbols[j]}

    @given(symbols_strategy, st.data())
    @settings(max_examples=60)
    def test_double_erasure_property(self, symbols, data):
        p0, p1 = wsc2_encode(symbols)
        j = data.draw(st.integers(0, len(symbols) - 1))
        k = data.draw(
            st.integers(0, len(symbols) - 1).filter(lambda v: v != j)
        )
        acc = _accumulate_without(symbols, {j, k})
        solved = recover_erasures(acc, p0, p1, [j, k])
        assert solved == {j: symbols[j], k: symbols[k]}


class TestTpduRepair:
    def _tpdu(self, units=16, seed=3):
        builder = ChunkStreamBuilder(connection_id=6, tpdu_units=units)
        chunks = builder.add_frame(make_payload(units, seed=seed), frame_id=0)
        payload, ed = encode_tpdu(chunks)
        return chunks, payload

    def test_repair_one_lost_interior_word(self):
        chunks, ed_payload = self._tpdu()
        pieces = [p for c in chunks for p in split_to_unit_limit(c, 1)]
        lost = pieces[5]  # interior unit: no trigger bits
        assert not (lost.t.st or lost.x.st or lost.c.st)
        invariant = TpduInvariant(6, 0)
        for piece in pieces:
            if piece is not lost:
                invariant.add_chunk(piece)
        word = repair_missing_word(
            invariant, ed_payload.p0, ed_payload.p1, lost.t.sn
        )
        assert word == lost.payload

    def test_repair_of_trigger_unit_refuses(self):
        """The final (X.ST/T.ST) unit also owes trigger symbols to the
        invariant; single-word repair must detect the inconsistency and
        refuse rather than fabricate data."""
        chunks, ed_payload = self._tpdu()
        pieces = [p for c in chunks for p in split_to_unit_limit(c, 1)]
        lost = next(p for p in pieces if p.t.st or p.x.st)
        invariant = TpduInvariant(6, 0)
        for piece in pieces:
            if piece is not lost:
                invariant.add_chunk(piece)
        with pytest.raises(ErasureError):
            repair_missing_word(invariant, ed_payload.p0, ed_payload.p1, lost.t.sn)

    def test_repaired_tpdu_verifies_end_to_end(self):
        chunks, ed_payload = self._tpdu()
        pieces = [p for c in chunks for p in split_to_unit_limit(c, 1)]
        lost_index = 4
        lost = pieces[lost_index]
        invariant = TpduInvariant(6, 0)
        for piece in pieces:
            if piece is not lost:
                invariant.add_chunk(piece)
        word = repair_missing_word(
            invariant, ed_payload.p0, ed_payload.p1, lost.t.sn
        )
        # Feed the repaired word back: the invariant now matches.
        assert word == lost.payload
        invariant.add_chunk(lost)
        assert invariant.matches(ed_payload.p0, ed_payload.p1)

    def test_repair_wrong_position_detected(self):
        chunks, ed_payload = self._tpdu()
        pieces = [p for c in chunks for p in split_to_unit_limit(c, 1)]
        lost = pieces[5]
        invariant = TpduInvariant(6, 0)
        for piece in pieces:
            if piece is not lost:
                invariant.add_chunk(piece)
        with pytest.raises(ErasureError):
            repair_missing_word(
                invariant, ed_payload.p0, ed_payload.p1, lost.t.sn + 3
            )
