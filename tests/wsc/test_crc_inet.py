"""Unit tests for the CRC-32 and Internet-checksum baselines."""

import random
import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wsc.crc import Crc32, crc32
from repro.wsc.inet import InetChecksum, inet_checksum, ones_complement_add


class TestCrc32:
    def test_known_vector_check(self):
        # The canonical CRC-32 test vector.
        assert crc32(b"123456789") == 0xCBF43926

    def test_empty(self):
        assert crc32(b"") == 0

    @given(st.binary(max_size=256))
    @settings(max_examples=50)
    def test_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)

    def test_incremental_matches_oneshot(self):
        data = bytes(range(100))
        inc = Crc32().update(data[:37]).update(data[37:]).digest()
        assert inc == crc32(data)

    def test_order_dependence(self):
        """The paper: 'A CRC cannot be computed on disordered data.'
        Concatenation order changes the digest."""
        a, b = b"hello-", b"world!"
        assert crc32(a + b) != crc32(b + a)

    def test_detects_bit_flip(self):
        data = bytearray(b"some protocol data unit")
        reference = crc32(bytes(data))
        data[5] ^= 0x10
        assert crc32(bytes(data)) != reference


class TestOnesComplement:
    def test_basic(self):
        assert ones_complement_add(1, 2) == 3

    def test_end_around_carry(self):
        assert ones_complement_add(0xFFFF, 1) == 1

    def test_commutative(self):
        assert ones_complement_add(0x1234, 0xFEDC) == ones_complement_add(0xFEDC, 0x1234)


class TestInetChecksum:
    def test_rfc1071_example(self):
        # RFC 1071 worked example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert inet_checksum(data) == (~0xDDF2) & 0xFFFF

    def test_odd_length_padding(self):
        assert inet_checksum(b"\xab") == (~0xAB00) & 0xFFFF

    def test_order_independence_even_fragments(self):
        """Footnote 11: the TCP checksum CAN be computed on disordered
        data — fragments at even offsets sum in any order."""
        data = bytes(range(64))
        reference = inet_checksum(data)
        pieces = [(0, data[:20]), (20, data[20:36]), (36, data[36:])]
        random.Random(4).shuffle(pieces)
        acc = InetChecksum()
        for offset, piece in pieces:
            acc.add_at(offset, piece)
        assert acc.digest() == reference

    def test_odd_offset_fragment_swaps_lanes(self):
        data = bytes(range(32))
        acc = InetChecksum()
        acc.add_at(0, data[:7])
        acc.add_at(7, data[7:])
        assert acc.digest() == inet_checksum(data)

    def test_weakness_misses_word_transposition(self):
        """The documented weakness: swapping aligned 16-bit words leaves
        the sum unchanged — WSC-2's P1 catches exactly this."""
        a = b"\x12\x34\x56\x78"
        b = b"\x56\x78\x12\x34"
        assert inet_checksum(a) == inet_checksum(b)

    def test_detects_simple_corruption(self):
        data = bytearray(b"network payload bytes")
        reference = inet_checksum(bytes(data))
        data[3] ^= 0x01
        assert inet_checksum(bytes(data)) != reference

    @given(st.binary(min_size=2, max_size=128), st.integers(0, 1000))
    @settings(max_examples=50)
    def test_fragmented_sum_matches_oneshot(self, data, seed):
        rng = random.Random(seed)
        cut = rng.randrange(0, len(data) + 1)
        acc = InetChecksum()
        pieces = [(0, data[:cut]), (cut, data[cut:])]
        rng.shuffle(pieces)
        for offset, piece in pieces:
            if piece:
                acc.add_at(offset, piece)
        assert acc.digest() == inet_checksum(data)
