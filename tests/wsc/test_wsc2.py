"""Unit and property tests for the WSC-2 weighted sum code."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wsc.gf32 import alpha_pow, gf_mul
from repro.wsc.wsc2 import (
    MAX_POSITIONS,
    Wsc2Accumulator,
    bytes_from_symbols,
    symbols_from_bytes,
    wsc2_encode,
)

symbols_strategy = st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=64)


class TestSymbols:
    def test_bytes_to_symbols(self):
        assert symbols_from_bytes(b"\x00\x00\x00\x01\xff\x00\x00\x00") == [1, 0xFF000000]

    def test_padding(self):
        assert symbols_from_bytes(b"\xab") == [0xAB000000]

    def test_roundtrip_aligned(self):
        data = bytes(range(16))
        assert bytes_from_symbols(symbols_from_bytes(data)) == data

    def test_empty(self):
        assert symbols_from_bytes(b"") == []


class TestDefinition:
    def test_p0_is_xor_of_symbols(self):
        symbols = [3, 5, 9]
        p0, _ = wsc2_encode(symbols)
        assert p0 == 3 ^ 5 ^ 9

    def test_p1_is_weighted_sum(self):
        symbols = [0xAAAA, 0x5555, 0x1234]
        _, p1 = wsc2_encode(symbols)
        expected = 0
        for i, symbol in enumerate(symbols):
            expected ^= gf_mul(alpha_pow(i), symbol)
        assert p1 == expected

    def test_single_symbol_at_position(self):
        acc = Wsc2Accumulator()
        acc.add_symbol(7, 0xBEEF)
        assert acc.p0 == 0xBEEF
        assert acc.p1 == gf_mul(alpha_pow(7), 0xBEEF)

    def test_zero_symbols_contribute_nothing(self):
        """Unused i values are equivalent to encoding zero (Section 4)."""
        a = wsc2_encode([5, 0, 0, 7])
        acc = Wsc2Accumulator()
        acc.add_symbol(0, 5)
        acc.add_symbol(3, 7)
        assert acc.value() == a

    def test_position_budget_enforced(self):
        acc = Wsc2Accumulator()
        with pytest.raises(ValueError):
            acc.add_symbol(MAX_POSITIONS, 1)
        with pytest.raises(ValueError):
            acc.add_run(MAX_POSITIONS - 1, [1, 2])
        acc.add_symbol(MAX_POSITIONS - 1, 1)  # last valid position


class TestOrderIndependence:
    @given(symbols_strategy, st.integers(0, 2**32))
    @settings(max_examples=50)
    def test_symbol_order_does_not_matter(self, symbols, seed):
        reference = wsc2_encode(symbols)
        positions = list(enumerate(symbols))
        random.Random(seed).shuffle(positions)
        acc = Wsc2Accumulator()
        for position, symbol in positions:
            acc.add_symbol(position, symbol)
        assert acc.value() == reference

    @given(symbols_strategy, st.integers(1, 10), st.integers(0, 2**32))
    @settings(max_examples=50)
    def test_run_partition_does_not_matter(self, symbols, runs, seed):
        reference = wsc2_encode(symbols)
        rng = random.Random(seed)
        if len(symbols) > 1:
            cuts = sorted(rng.sample(range(1, len(symbols)), min(runs, len(symbols) - 1)))
        else:
            cuts = []
        pieces = []
        last = 0
        for cut in cuts + [len(symbols)]:
            pieces.append((last, symbols[last:cut]))
            last = cut
        rng.shuffle(pieces)
        acc = Wsc2Accumulator()
        for start, run in pieces:
            acc.add_run(start, run)
        assert acc.value() == reference

    @given(symbols_strategy)
    @settings(max_examples=30)
    def test_combine_matches_single_accumulator(self, symbols):
        reference = wsc2_encode(symbols)
        left = Wsc2Accumulator()
        right = Wsc2Accumulator()
        for i, symbol in enumerate(symbols):
            (left if i % 2 else right).add_symbol(i, symbol)
        right.combine(left)
        assert right.value() == reference

    def test_add_bytes_matches_add_run(self):
        data = bytes(range(32))
        a = Wsc2Accumulator()
        a.add_bytes(10, data)
        b = Wsc2Accumulator()
        b.add_run(10, symbols_from_bytes(data))
        assert a.value() == b.value()


class TestDetectionPower:
    def test_detects_single_symbol_change(self):
        symbols = list(range(1, 33))
        reference = wsc2_encode(symbols)
        symbols[13] ^= 0x40
        assert wsc2_encode(symbols) != reference

    def test_detects_transposition(self):
        """Swapping two (distinct) symbols preserves P0 but changes P1 —
        this is precisely where WSC-2 beats the Internet checksum."""
        symbols = [10, 20, 30, 40]
        p0a, p1a = wsc2_encode(symbols)
        swapped = [10, 30, 20, 40]
        p0b, p1b = wsc2_encode(swapped)
        assert p0a == p0b
        assert p1a != p1b

    def test_detects_symbol_at_wrong_position(self):
        acc_a = Wsc2Accumulator()
        acc_a.add_symbol(5, 0x77)
        acc_b = Wsc2Accumulator()
        acc_b.add_symbol(6, 0x77)
        assert acc_a.value() != acc_b.value()

    @given(symbols_strategy, st.data())
    @settings(max_examples=50)
    def test_any_single_symbol_corruption_detected(self, symbols, data):
        reference = wsc2_encode(symbols)
        index = data.draw(st.integers(0, len(symbols) - 1))
        flip = data.draw(st.integers(1, 2**32 - 1))
        corrupted = list(symbols)
        corrupted[index] ^= flip
        assert wsc2_encode(corrupted) != reference

    def test_random_miss_rate_is_tiny(self):
        """With 64 parity bits, random corruption essentially never
        passes: 20k trials must produce zero collisions."""
        rng = random.Random(99)
        symbols = [rng.getrandbits(32) for _ in range(64)]
        reference = wsc2_encode(symbols)
        misses = 0
        for _ in range(2000):
            corrupted = list(symbols)
            for _ in range(rng.randrange(1, 6)):
                corrupted[rng.randrange(len(corrupted))] = rng.getrandbits(32)
            if corrupted != symbols and wsc2_encode(corrupted) == reference:
                misses += 1
        assert misses == 0
