"""Unit tests for end-to-end error detection, including Table 1 rows."""

import random
from dataclasses import replace

import pytest

from repro.core.builder import ChunkStreamBuilder
from repro.core.fragment import split_to_unit_limit
from repro.core.tuples import FramingTuple
from repro.wsc.endtoend import (
    REASON_CODE_MISMATCH,
    REASON_CONSISTENCY,
    REASON_REASSEMBLY,
    EndToEndReceiver,
)
from repro.wsc.invariant import EdPayload, build_ed_chunk, encode_tpdu

from tests.conftest import make_payload


def _tpdu(tpdu_units=12, seed=0, frames=2, connection_id=5):
    """A complete TPDU (data chunks + ED chunk)."""
    builder = ChunkStreamBuilder(connection_id=connection_id, tpdu_units=tpdu_units)
    chunks = []
    for i in range(frames):
        chunks += builder.add_frame(
            make_payload(tpdu_units // frames, seed=seed * 10 + i), frame_id=seed * 100 + i
        )
    tpdu0 = [c for c in chunks if c.t.ident == 0]
    _, ed = encode_tpdu(tpdu0)
    return tpdu0, ed


def _run(receiver, chunks):
    verdicts = []
    for chunk in chunks:
        verdicts += receiver.receive(chunk)
    return verdicts


class TestHappyPaths:
    def test_in_order_verifies(self):
        chunks, ed = _tpdu()
        verdicts = _run(EndToEndReceiver(), chunks + [ed])
        assert len(verdicts) == 1 and verdicts[0].ok

    def test_any_order_verifies(self):
        chunks, ed = _tpdu()
        pieces = [p for c in chunks for p in split_to_unit_limit(c, 2)] + [ed]
        for seed in range(5):
            random.Random(seed).shuffle(pieces)
            verdicts = _run(EndToEndReceiver(), pieces)
            assert len(verdicts) == 1 and verdicts[0].ok

    def test_ed_first_verifies(self):
        chunks, ed = _tpdu()
        verdicts = _run(EndToEndReceiver(), [ed] + chunks)
        assert len(verdicts) == 1 and verdicts[0].ok

    def test_duplicates_do_not_break_checksum(self):
        """Section 3.3: processing the same piece twice would corrupt an
        incremental checksum; duplicate rejection must prevent it."""
        chunks, ed = _tpdu()
        pieces = [p for c in chunks for p in split_to_unit_limit(c, 3)]
        stream = pieces[:2] + pieces[:2] + pieces[1:] + [ed, ed]
        verdicts = _run(EndToEndReceiver(), stream)
        assert len(verdicts) == 1 and verdicts[0].ok

    def test_overlapping_retransmission_fragments(self):
        """A retransmission fragmented differently than the original."""
        chunks, ed = _tpdu()
        original = [p for c in chunks for p in split_to_unit_limit(c, 4)]
        retransmit = [p for c in chunks for p in split_to_unit_limit(c, 3)]
        stream = original[::2] + retransmit + [ed]
        verdicts = _run(EndToEndReceiver(), stream)
        assert len(verdicts) == 1 and verdicts[0].ok

    def test_multiple_tpdus_verdict_separately(self):
        receiver = EndToEndReceiver()
        builder = ChunkStreamBuilder(connection_id=9, tpdu_units=8)
        verdicts = []
        for seed in range(3):
            chunks = builder.add_frame(make_payload(8, seed=seed), frame_id=seed)
            _, ed = encode_tpdu(chunks)
            verdicts += _run(receiver, chunks + [ed])
        assert len(verdicts) == 3 and all(v.ok for v in verdicts)
        assert receiver.verified == 3

    def test_late_duplicate_after_verdict_is_ignored(self):
        chunks, ed = _tpdu()
        receiver = EndToEndReceiver()
        _run(receiver, chunks + [ed])
        assert receiver.receive(chunks[0]) == []

    def test_abort_pending_classifies_incomplete(self):
        chunks, ed = _tpdu()
        receiver = EndToEndReceiver()
        _run(receiver, chunks[:1] + [ed])
        verdicts = receiver.abort_pending()
        assert len(verdicts) == 1
        assert verdicts[0].reason == REASON_REASSEMBLY

    def test_evict(self):
        chunks, ed = _tpdu()
        receiver = EndToEndReceiver()
        _run(receiver, chunks + [ed])
        receiver.evict(5, 0)
        assert receiver.pending() == []


class TestTable1DataAndControl:
    """Rows: Data and Control detected by the error detection code."""

    def test_payload_corruption_detected(self):
        chunks, ed = _tpdu()
        bad = replace(
            chunks[0],
            payload=b"\xff" + chunks[0].payload[1:],
        )
        verdicts = _run(EndToEndReceiver(), [bad] + chunks[1:] + [ed])
        assert verdicts[-1].reason == REASON_CODE_MISMATCH

    def test_ed_payload_corruption_detected(self):
        chunks, ed = _tpdu()
        bad_ed = build_ed_chunk(5, 0, EdPayload(0x1234, 0x4242, 12))
        verdicts = _run(EndToEndReceiver(), chunks + [bad_ed])
        assert verdicts[-1].reason in (REASON_CODE_MISMATCH, REASON_REASSEMBLY)


class TestTable1Ids:
    """Rows: C.ID, T.ID, X.ID detected by the error detection code."""

    def test_c_id_corruption_detected_by_code(self):
        """All fragments land under the wrong connection: the TPDU
        completes there, but the invariant encodes the received C.ID."""
        chunks, ed = _tpdu()
        rerouted = [c.with_tuples(c=replace(c.c, ident=6)) for c in chunks]
        bad_ed = replace(ed, c=replace(ed.c, ident=6))
        verdicts = _run(EndToEndReceiver(), rerouted + [bad_ed])
        assert verdicts[-1].reason == REASON_CODE_MISMATCH

    def test_t_id_corruption_detected_by_code(self):
        chunks, ed = _tpdu()
        renamed = [c.with_tuples(t=replace(c.t, ident=99)) for c in chunks]
        bad_ed = replace(ed, t=replace(ed.t, ident=99))
        verdicts = _run(EndToEndReceiver(), renamed + [bad_ed])
        assert verdicts[-1].reason == REASON_CODE_MISMATCH

    def test_x_id_corruption_detected_by_code(self):
        chunks, ed = _tpdu()
        target = next(i for i, c in enumerate(chunks) if c.x.st or c.t.st)
        bad = chunks[target].with_tuples(
            x=replace(chunks[target].x, ident=chunks[target].x.ident + 1)
        )
        stream = chunks[:target] + [bad] + chunks[target + 1 :] + [ed]
        verdicts = _run(EndToEndReceiver(), stream)
        # X.SN consistency uses X.ID too, so either the code or the
        # consistency check may fire first; the paper's table lists the
        # code as the detector when SNs remain consistent.
        assert not verdicts[-1].ok


class TestTable1StBits:
    """Rows: C.ST and X.ST detected by the error detection code;
    T.ST by reassembly error."""

    def test_c_st_set_corruption_detected(self):
        chunks, ed = _tpdu()
        last = len(chunks) - 1
        bad = chunks[last].with_tuples(c=replace(chunks[last].c, st=True))
        verdicts = _run(EndToEndReceiver(), chunks[:last] + [bad, ed])
        assert verdicts[-1].reason == REASON_CODE_MISMATCH

    def test_x_st_flip_detected(self):
        chunks, ed = _tpdu()
        target = next(i for i, c in enumerate(chunks) if c.x.st)
        bad = chunks[target].with_tuples(x=replace(chunks[target].x, st=False))
        stream = chunks[:target] + [bad] + chunks[target + 1 :] + [ed]
        verdicts = _run(EndToEndReceiver(), stream)
        assert verdicts[-1].reason == REASON_CODE_MISMATCH

    def test_t_st_cleared_detected_as_reassembly_error(self):
        chunks, ed = _tpdu()
        target = next(i for i, c in enumerate(chunks) if c.t.st)
        bad = chunks[target].with_tuples(t=replace(chunks[target].t, st=False))
        stream = chunks[:target] + [bad] + chunks[target + 1 :] + [ed]
        verdicts = _run(EndToEndReceiver(), stream)
        assert verdicts and verdicts[-1].reason == REASON_REASSEMBLY

    def test_t_st_moved_early_detected(self):
        chunks, ed = _tpdu()
        bad = chunks[0].with_tuples(t=replace(chunks[0].t, st=True))
        stream = [bad] + chunks[1:] + [ed]
        verdicts = _run(EndToEndReceiver(), stream)
        assert verdicts and verdicts[0].reason == REASON_REASSEMBLY


class TestTable1Sns:
    """Rows: C.SN and X.SN detected by the consistency check;
    T.SN by reassembly error."""

    def test_c_sn_corruption_detected_by_consistency(self):
        chunks, ed = _tpdu()
        bad = chunks[1].with_tuples(c=replace(chunks[1].c, sn=chunks[1].c.sn + 3))
        verdicts = _run(EndToEndReceiver(), [chunks[0], bad] + chunks[2:] + [ed])
        assert verdicts[-1].reason == REASON_CONSISTENCY

    def test_x_sn_corruption_detected_by_consistency(self):
        chunks, ed = _tpdu()
        # In-network fragmentation puts several chunks of one external
        # PDU inside the TPDU; corrupt the X.SN of a later piece.
        pieces = [p for c in chunks for p in split_to_unit_limit(c, 3)]
        idx = next(
            i
            for i, p in enumerate(pieces)
            if p.x.ident == pieces[0].x.ident and p.x.sn > 0
        )
        bad = pieces[idx].with_tuples(x=replace(pieces[idx].x, sn=pieces[idx].x.sn + 2))
        stream = pieces[:idx] + [bad] + pieces[idx + 1 :] + [ed]
        verdicts = _run(EndToEndReceiver(), stream)
        assert verdicts[-1].reason == REASON_CONSISTENCY

    def test_t_sn_overlap_detected_as_reassembly_error(self):
        chunks, ed = _tpdu()
        pieces = [p for c in chunks for p in split_to_unit_limit(c, 4)]
        bad = pieces[1].with_tuples(t=replace(pieces[1].t, sn=pieces[1].t.sn + 40))
        verdicts = _run(EndToEndReceiver(), [pieces[0], bad] + pieces[2:] + [ed])
        assert verdicts and verdicts[-1].reason in (
            REASON_REASSEMBLY,
            REASON_CONSISTENCY,
        )


class TestCompletionByCount:
    def test_count_completion_reports_missing_st(self):
        """Every unit present but T.ST lost: the ED unit count converts
        the would-be timeout into an immediate reassembly verdict."""
        chunks, ed = _tpdu()
        stripped = [
            c.with_tuples(t=replace(c.t, st=False)) if c.t.st else c for c in chunks
        ]
        verdicts = _run(EndToEndReceiver(), stripped + [ed])
        assert len(verdicts) == 1
        assert verdicts[0].reason == REASON_REASSEMBLY
        assert "T.ST" in verdicts[0].detail or "ST" in verdicts[0].detail

    def test_total_mismatch_detected(self):
        chunks, _ = _tpdu()
        _, good_ed = encode_tpdu(chunks)
        payload = EdPayload(
            *_parities(good_ed), total_units=5
        )
        bad_ed = build_ed_chunk(5, 0, payload)
        verdicts = _run(EndToEndReceiver(), chunks + [bad_ed])
        assert not verdicts[-1].ok

    def test_conflicting_duplicate_eds_detected(self):
        chunks, ed = _tpdu()
        other = build_ed_chunk(5, 0, EdPayload(1, 2, 12))
        verdicts = _run(EndToEndReceiver(), [ed, other] + chunks)
        assert verdicts and not verdicts[0].ok


def _parities(ed_chunk):
    from repro.wsc.invariant import parse_ed_chunk

    payload = parse_ed_chunk(ed_chunk)
    return payload.p0, payload.p1
