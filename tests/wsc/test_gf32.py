"""Unit and property tests for GF(2^32) arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wsc.gf32 import (
    ALPHA,
    ORDER,
    POLY,
    Gf32Mul,
    alpha_pow,
    gf_add,
    gf_inv,
    gf_mul,
    gf_pow,
    mul_alpha,
)

elements = st.integers(0, 2**32 - 1)
nonzero = st.integers(1, 2**32 - 1)


class TestBasics:
    def test_add_is_xor(self):
        assert gf_add(0b1010, 0b0110) == 0b1100

    def test_mul_identity(self):
        assert gf_mul(0x12345678, 1) == 0x12345678

    def test_mul_zero(self):
        assert gf_mul(0xDEADBEEF, 0) == 0

    def test_mul_alpha_matches_general_mul(self):
        for value in (1, 2, 0x80000000, 0xFFFFFFFF, 0x12345678):
            assert mul_alpha(value) == gf_mul(value, ALPHA)

    def test_alpha_squared(self):
        assert gf_mul(ALPHA, ALPHA) == 4  # x * x = x^2, no reduction yet

    def test_reduction_happens(self):
        # x^31 * x = x^32 ≡ POLY without the top bit.
        assert gf_mul(1 << 31, ALPHA) == POLY & 0xFFFFFFFF


class TestFieldAxioms:
    @given(elements, elements)
    def test_commutativity(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements, elements, elements)
    @settings(max_examples=50)
    def test_associativity(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elements, elements, elements)
    @settings(max_examples=50)
    def test_distributivity(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)

    @given(nonzero)
    @settings(max_examples=30)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    @given(nonzero, nonzero)
    @settings(max_examples=30)
    def test_no_zero_divisors(self, a, b):
        assert gf_mul(a, b) != 0


class TestPow:
    def test_pow_zero(self):
        assert gf_pow(0x1234, 0) == 1

    def test_pow_one(self):
        assert gf_pow(0x1234, 1) == 0x1234

    def test_pow_matches_repeated_mul(self):
        value = 1
        for exponent in range(1, 20):
            value = gf_mul(value, 0xABCD)
            assert gf_pow(0xABCD, exponent) == value

    def test_negative_exponent(self):
        a = 0x55AA55AA
        assert gf_mul(gf_pow(a, -3), gf_pow(a, 3)) == 1

    def test_fermat(self):
        # a^(2^32 - 1) = 1 for nonzero a.
        assert gf_pow(0xDEADBEEF, ORDER) == 1


class TestPrimitivity:
    def test_alpha_is_primitive(self):
        """alpha must generate the full multiplicative group so every
        WSC-2 position weight 0 <= i < 2^29-2 is distinct."""
        assert gf_pow(ALPHA, ORDER) == 1
        # 2^32 - 1 = 3 * 5 * 17 * 257 * 65537
        for prime in (3, 5, 17, 257, 65537):
            assert gf_pow(ALPHA, ORDER // prime) != 1

    def test_alpha_pow_matches_gf_pow(self):
        for i in (0, 1, 2, 31, 32, 1000, 16384, (1 << 29) - 3):
            assert alpha_pow(i) == gf_pow(ALPHA, i)

    def test_low_alpha_powers_are_shifts(self):
        for i in range(31):
            assert alpha_pow(i) == 1 << i


class TestGf32Mul:
    @given(elements, elements)
    @settings(max_examples=50)
    def test_table_matches_bit_serial(self, constant, a):
        assert Gf32Mul(constant).mul(a) == gf_mul(a, constant)

    def test_table_mul_by_one(self):
        table = Gf32Mul(1)
        assert table.mul(0xCAFEBABE) == 0xCAFEBABE
