"""Unit tests for the handle runtime: null sink, install, session."""

from __future__ import annotations

import pytest

from repro.obs import (
    Registry,
    Tracer,
    active_registry,
    active_tracer,
    counter,
    gauge,
    histogram,
    install,
    session,
    timer,
    tracer,
    uninstall,
)


@pytest.fixture(autouse=True)
def _clean_runtime():
    """Every test starts and ends with the null sink installed."""
    uninstall()
    yield
    uninstall()


class TestNullSink:
    def test_handles_are_noops_without_registry(self):
        # None of these may raise or record anything.
        counter("t", "null.c").inc(5)
        gauge("t", "null.g").set(3)
        histogram("t", "null.h").observe(1)
        timer("t", "null.t").observe(0.5)
        with timer("t", "null.t").measure():
            pass
        assert active_registry() is None
        assert active_tracer() is None

    def test_tracer_handle_is_falsy_when_disabled(self):
        handle = tracer("t")
        assert not handle
        handle.event("ignored")  # still safe to call
        with handle.span("ignored"):
            pass


class TestInstall:
    def test_install_binds_existing_handles(self):
        handle = counter("t", "bind.existing")
        registry, _ = install()
        handle.inc(3)
        assert registry.get("t", "bind.existing").value == 3

    def test_install_binds_future_handles(self):
        registry, _ = install()
        handle = counter("t", "bind.future")
        handle.inc()
        assert registry.get("t", "bind.future").value == 1

    def test_uninstall_returns_to_null(self):
        handle = counter("t", "unbind.c")
        registry, _ = install()
        handle.inc()
        uninstall()
        handle.inc(100)  # must not reach the old registry
        assert registry.get("t", "unbind.c").value == 1

    def test_handles_are_deduplicated(self):
        assert counter("t", "dedupe.c") is counter("t", "dedupe.c")
        assert tracer("dedupe-scope") is tracer("dedupe-scope")

    def test_same_name_different_scope_is_distinct(self):
        assert counter("a", "dup") is not counter("b", "dup")

    def test_clock_feeds_registry_and_tracer(self):
        time = {"now": 1.5}
        registry, trace = install(clock=lambda: time["now"])
        assert registry.now() == 1.5
        trace.event("t", "tick")
        assert trace.events[0].t == 1.5

    def test_tracer_handle_records_with_scope(self):
        _, trace = install()
        handle = tracer("myscope")
        assert handle
        handle.event("something", t=2.0, detail=7)
        assert trace.events[-1].scope == "myscope"
        assert trace.events[-1].name == "something"
        assert trace.events[-1].fields == {"detail": 7}


class TestSession:
    def test_session_restores_null_sink(self):
        handle = counter("t", "sess.c")
        with session() as (registry, _):
            handle.inc()
            assert registry.get("t", "sess.c").value == 1
        handle.inc(50)
        assert registry.get("t", "sess.c").value == 1

    def test_nested_sessions_restore_outer(self):
        handle = counter("t", "sess.nested")
        with session() as (outer, _):
            handle.inc()
            with session() as (inner, _):
                handle.inc(10)
            assert inner is not outer
            handle.inc()
            assert outer.get("t", "sess.nested").value == 2
            assert inner.get("t", "sess.nested").value == 10

    def test_session_accepts_prebuilt_sinks(self):
        registry = Registry()
        trace = Tracer()
        with session(registry=registry, tracer=trace) as (got_registry, got_tracer):
            assert got_registry is registry
            assert got_tracer is trace
