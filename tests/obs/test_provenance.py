"""Tests for label-keyed provenance journeys (repro.obs.provenance)."""

from __future__ import annotations

import io

import pytest

from repro.core.packet import pack_chunks
from repro.netsim.events import EventLoop
from repro.netsim.link import Link
from repro.netsim.rng import substream
from repro.obs.provenance import (
    JourneyTracker,
    StageRecord,
    active_journey,
    bind_journey_clock,
    frame_labels,
    install_journey,
    journal_records,
    journey_handle,
    journey_session,
    uninstall_journey,
    write_journal,
)
from repro.transport.connection import ConnectionConfig
from repro.transport.endpoint import ChunkEndpoint

from tests.conftest import deterministic_bytes, make_chunk


@pytest.fixture
def no_journey():
    """Run the test with the null sink installed, restoring whatever
    tracker was active (the suite may fly under REPRO_FLIGHT_DIR)."""
    previous = active_journey()
    uninstall_journey()
    try:
        yield
    finally:
        if previous is not None:
            install_journey(previous)


def _transfer(loss: float = 0.0, seed: int = 5, nbytes: int = 4096):
    """One reliable frame through an endpoint pair over explicit links."""
    loop = EventLoop()
    bind_journey_clock(lambda: loop.now)
    sender = ChunkEndpoint(loop, mtu=1500)
    receiver = ChunkEndpoint(loop, mtu=1500)
    forward = Link(
        loop,
        receiver.receive_packet,
        rate_bps=622e6,
        delay=0.0005,
        loss_rate=loss,
        rng=substream(seed, "provenance", "forward"),
    )
    reverse = Link(
        loop,
        sender.receive_packet,
        rate_bps=622e6,
        delay=0.0005,
        rng=substream(seed, "provenance", "reverse"),
    )
    sender.transmit = forward.send
    receiver.transmit = reverse.send
    connection = sender.open_connection(ConnectionConfig(connection_id=7))
    payload = deterministic_bytes(nbytes, seed)
    connection.send_frame(payload, end_of_connection=True)
    loop.run()
    return receiver, payload


class TestStageRecord:
    def test_dict_roundtrip(self):
        record = StageRecord(
            t=1.5, stage="placed", c_id=7, offset=1024, length=256,
            gen=2, fields={"reason": "budget"},
        )
        assert StageRecord.from_dict(record.as_dict()) == record
        assert record.as_dict()["kind"] == "provenance"
        assert record.key == (7, 1024, 256)

    def test_empty_fields_omitted(self):
        record = StageRecord(t=0.0, stage="formed", c_id=1, offset=0, length=4)
        assert "fields" not in record.as_dict()


class TestJourneyTracker:
    def test_journey_joins_all_levels(self):
        tracker = JourneyTracker()
        tracker.emit("formed", 7, 0, 256, t=0.0, t_id=3, x_id=9)
        tracker.emit("placed", 7, 0, 256, t=1.0, t_id=3, x_id=9)
        tracker.emit("verified", 7, 0, 0, t=2.0, level="tpdu", t_id=3, ok=True)
        tracker.emit("delivered", 7, 0, 0, t=3.0, level="frame", x_id=9)
        tracker.emit("established", 7, 0, 0, t=-1.0, level="conn")
        journey = tracker.journey(7, 0, 256)
        assert journey is not None
        assert journey.stages == ["formed", "placed"]
        assert [r.stage for r in journey.tpdu_records] == ["verified"]
        assert [r.stage for r in journey.frame_records] == ["delivered"]
        assert [r.stage for r in journey.conn_records] == ["established"]
        assert [r.stage for r in journey.timeline()] == [
            "established", "formed", "placed", "verified", "delivered",
        ]
        assert journey.outcome == "delivered"

    def test_outcome_ladder(self):
        tracker = JourneyTracker()
        tracker.emit("formed", 1, 0, 4, t=0.0)
        tracker.emit("refused", 1, 0, 4, t=1.0, reason="budget")
        assert tracker.journey(1, 0, 4).outcome == "refused"
        tracker.emit("placed", 1, 0, 4, t=2.0, gen=1)
        journey = tracker.journey(1, 0, 4)
        assert journey.outcome == "placed"
        assert journey.generations == [0, 1]
        assert [r.stage for r in journey.refusals()] == ["refused"]

    def test_latency_histograms(self):
        tracker = JourneyTracker()
        tracker.emit("formed", 7, 0, 256, t=0.0, x_id=9)
        tracker.emit("link_tx", 7, 0, 256, t=1.0, x_id=9)
        tracker.emit("refused", 7, 0, 256, t=2.0, x_id=9, reason="budget")
        tracker.emit("placed", 7, 0, 256, t=5.0, gen=1, x_id=9)
        tracker.emit("delivered", 7, 0, 0, t=6.0, level="frame", x_id=9)
        summary = tracker.latency_summary()
        assert summary["first_tx_to_place"]["count"] == 1
        assert summary["first_tx_to_place"]["sum"] == 4.0
        assert summary["refusal_to_retry"]["sum"] == 3.0
        assert summary["formation_to_delivery"]["sum"] == 6.0

    def test_bound_counts_drops_but_sink_sees_everything(self):
        tracker = JourneyTracker(max_records=2)
        seen: list[StageRecord] = []
        tracker.on_record = seen.append
        for sn in range(5):
            tracker.emit("formed", 1, sn * 4, 4, t=float(sn))
        assert len(tracker.records) == 2
        assert tracker.dropped == 3
        assert len(seen) == 5

    def test_clock_stamps_when_t_omitted(self):
        tracker = JourneyTracker(clock=lambda: 42.0)
        tracker.emit("formed", 1, 0, 4)
        assert tracker.records[0].t == 42.0

    def test_replay_rebuilds_journeys(self):
        tracker = JourneyTracker()
        tracker.emit("formed", 7, 0, 256, t=0.0, t_id=3, x_id=9)
        tracker.emit("retransmit", 7, 0, 256, t=1.0, gen=2, t_id=3, x_id=9)
        tracker.emit("verified", 7, 0, 0, t=2.0, level="tpdu", t_id=3, ok=True)
        replayed = JourneyTracker()
        replayed.replay(journal_records(tracker))
        assert replayed.records == tracker.records
        journey = replayed.journey(7, 0, 256)
        assert journey.generations == [0, 2]
        assert len(journey.tpdu_records) == 1

    def test_write_journal_deterministic(self, tmp_path):
        def build() -> JourneyTracker:
            tracker = JourneyTracker()
            tracker.emit("formed", 7, 0, 256, t=0.0, t_id=3)
            tracker.emit("placed", 7, 0, 256, t=1.0, t_id=3)
            return tracker

        stream_a, stream_b = io.StringIO(), io.StringIO()
        assert write_journal(stream_a, build()) == 3  # 2 records + meta
        write_journal(stream_b, build())
        assert stream_a.getvalue() == stream_b.getvalue()
        path = tmp_path / "journal.jsonl"
        write_journal(path, build())
        assert path.read_text() == stream_a.getvalue()


class TestHandle:
    def test_null_sink_is_falsy_and_silent(self, no_journey):
        handle = journey_handle()
        assert not handle
        handle.chunk("formed", make_chunk())  # no tracker: must not raise
        handle.emit("formed", 1, 0, 4)
        assert active_journey() is None

    def test_session_installs_and_restores(self, no_journey):
        handle = journey_handle()
        with journey_session(clock=lambda: 3.0) as tracker:
            assert handle
            handle.chunk("formed", make_chunk(c_id=5, c_sn=2))
            assert tracker.records[0].key == (5, 2 * 4, 32)
            assert tracker.records[0].t == 3.0
        assert not handle
        assert active_journey() is None

    def test_nested_sessions_restore_previous(self, no_journey):
        with journey_session() as outer:
            with journey_session() as inner:
                assert active_journey() is inner
            assert active_journey() is outer


class TestFrameLabels:
    def test_labels_from_wire_frame(self):
        chunk = make_chunk(c_id=7, c_sn=2, t_id=3, x_id=9, units=8)
        frame = pack_chunks([chunk], 1500)[0].encode()
        assert frame_labels(frame) == [
            (7, chunk.c.sn * chunk.unit_bytes, chunk.payload_bytes, 3, 9)
        ]

    def test_corrupted_frame_yields_no_labels(self):
        assert frame_labels(b"\x00garbage") == []


class TestEndToEnd:
    def test_clean_transfer_every_chunk_delivered(self):
        with journey_session() as tracker:
            receiver, payload = _transfer(loss=0.0)
            assert receiver.connection(7).stream_bytes() == payload
            journeys = tracker.journeys(c_id=7)
            assert journeys, "no journeys recorded"
            for journey in journeys:
                assert journey.outcome == "delivered"
                for stage in ("formed", "packed", "link_tx", "link_rx",
                              "demux", "placed"):
                    assert stage in journey.stages, (
                        f"{journey.key}: missing {stage} in {journey.stages}"
                    )
                assert journey.stages.count("placed") == 1
            # Placed offsets tile the payload exactly once.
            placed = sorted((j.offset, j.length) for j in journeys)
            cursor = 0
            for offset, length in placed:
                assert offset == cursor
                cursor += length
            assert cursor == len(payload)

    def test_lossy_transfer_records_retransmission_generations(self):
        with journey_session() as tracker:
            receiver, payload = _transfer(loss=0.25, seed=11, nbytes=32768)
            assert receiver.connection(7).stream_bytes() == payload
            journeys = tracker.journeys(c_id=7)
            assert any(
                max(j.generations) > 0 for j in journeys
            ), "a 25% lossy run produced no retransmission generations"
            for journey in journeys:
                assert journey.stages.count("placed") == 1
                assert journey.outcome == "delivered"

    def test_conn_lifecycle_records(self):
        with journey_session() as tracker:
            _transfer(loss=0.0)
            stages = [
                r.stage
                for r in tracker.records
                if r.level == "conn" and r.c_id == 7
            ]
            assert "established" in stages
            assert "closed" in stages
