"""End-to-end tests: the hot paths actually feed the observability layer."""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

from repro.core.packet import pack_chunks
from repro.host.memory import TouchLedger
from repro.host.receiver import ImmediateReceiver, ReorderReceiver
from repro.netsim.events import EventLoop
from repro.netsim.trace import ReceiverTrace
from repro.obs import session
from repro.obs.report import load_records, main, summarize
from repro.transport.connection import ConnectionConfig
from repro.transport.receiver import ChunkTransportReceiver
from repro.transport.reliability import ReliableSender
from repro.transport.sender import ChunkTransportSender
from tests.conftest import make_chunk, make_payload

MTU = 1500


def _transfer(payload: bytes, reverse_packets: bool = False) -> ChunkTransportReceiver:
    """One frame sender → receiver, optionally with packets reversed."""
    sender = ChunkTransportSender(ConnectionConfig(connection_id=5, tpdu_units=8))
    chunks = [sender.establishment_chunk()]
    chunks += sender.send_frame(payload, frame_id=0, end_of_connection=True)
    receiver = ChunkTransportReceiver()
    packets = pack_chunks(chunks, 100)  # small MTU: several packets
    if reverse_packets:
        packets = list(reversed(packets))
    for packet in packets:
        receiver.receive_packet(packet.encode())
    return receiver


class TestTransportInstrumentation:
    def test_clean_transfer_populates_counters(self):
        with session() as (registry, _):
            receiver = _transfer(make_payload(32))
            assert receiver.verified_tpdus() == 4
            assert registry.get("transport", "receiver.packets_received").value > 0
            assert registry.get("transport", "receiver.chunks_received").value > 0
            assert registry.get("transport", "sender.frames_sent").value == 1
            assert registry.get("transport", "sender.tpdus_sent").value == 4
            assert registry.get("wsc", "tpdu_verified").value == 4
            assert registry.get("wsc", "tpdu_corrupted").value == 0

    def test_data_touches_count_fresh_placements_once(self):
        payload = make_payload(32)
        with session() as (registry, _):
            _transfer(payload)
            assert registry.get("host", "data_touches").value > 0
            assert registry.get("host", "data_touch_bytes").value == len(payload)

    def test_duplicate_packets_do_not_touch_twice(self):
        payload = make_payload(16)
        sender = ChunkTransportSender(ConnectionConfig(connection_id=5, tpdu_units=8))
        chunks = sender.send_frame(payload, frame_id=0, end_of_connection=True)
        frames = [p.encode() for p in pack_chunks(chunks, 100)]
        with session() as (registry, _):
            receiver = ChunkTransportReceiver()
            for frame in frames + frames:  # every packet delivered twice
                receiver.receive_packet(frame)
            assert registry.get("host", "data_touch_bytes").value == len(payload)
            assert registry.get("transport", "receiver.duplicate_chunks").value > 0

    def test_out_of_order_arrivals_fill_distance_histogram(self):
        with session() as (registry, _):
            _transfer(make_payload(64), reverse_packets=True)
            histogram = registry.get("transport", "receiver.ooo_distance")
            assert histogram.count > 0
            assert histogram.maximum > 0

    def test_verdict_events_reach_the_tracer(self):
        with session() as (_, tracer):
            _transfer(make_payload(16))
            verdicts = [e for e in tracer.events if e.name == "verdict"]
            assert verdicts
            assert all(e.scope == "wsc" for e in verdicts)
            assert all(e.fields["ok"] for e in verdicts)


class TestReliabilityInstrumentation:
    def test_lossy_path_counts_timeouts_and_retransmissions(self):
        loop = EventLoop()
        delivered: list[bytes] = []
        drop = {"remaining": 2}

        def flaky_transmit(frame: bytes) -> None:
            if drop["remaining"] > 0:
                drop["remaining"] -= 1
                return
            delivered.append(frame)

        with session(clock=lambda: loop.now) as (registry, tracer):
            sender = ReliableSender(
                loop,
                flaky_transmit,
                ConnectionConfig(connection_id=9, tpdu_units=8),
                mtu=200,
                rto=0.01,
                max_retries=6,
            )
            sender.send_frame(make_payload(8), frame_id=0, end_of_connection=True)
            # Nothing ACKs, so timers fire until give-up; stop once the
            # first retransmission has been observed.
            for _ in range(3):
                loop.run(until=loop.now + 0.1)
                if sender.retransmissions:
                    break
            assert registry.get("transport", "rto_timeouts").value >= 1
            assert registry.get("transport", "retransmissions").value >= 1
            retransmit_events = [e for e in tracer.events if e.name == "retransmit"]
            assert retransmit_events
            assert retransmit_events[0].fields["retry"] == 1
            # Timestamps are simulated time, strictly positive here.
            assert retransmit_events[0].t > 0


class TestHostInstrumentation:
    def test_touch_ledger_publishes_total_and_per_kind(self):
        with session() as (registry, _):
            ledger = TouchLedger()
            ledger.record("nic-to-buffer", 100)
            ledger.record("buffer-to-app", 100)
            ledger.record("nic-to-buffer", 50)
            assert registry.get("host", "touch_bytes_total").value == 250
            assert registry.get("host", "touch.nic-to-buffer_bytes").value == 150
            assert registry.get("host", "touch.buffer-to-app_bytes").value == 100

    def test_immediate_receiver_counts_deliveries(self):
        with session() as (registry, _):
            receiver = ImmediateReceiver()
            receiver.on_chunk(0.0, make_chunk(units=4, c_sn=0))
            receiver.on_chunk(0.1, make_chunk(units=4, c_sn=4, seed=2))
            assert registry.get("host", "deliveries").value == 2
            assert registry.get("host", "delivered_bytes").value == 32

    def test_reorder_buffer_gauge_high_water(self):
        with session() as (registry, _):
            receiver = ReorderReceiver()
            receiver.on_chunk(0.0, make_chunk(units=4, c_sn=4, t_sn=4, seed=2))
            gauge = registry.get("host", "reorder_buffer_bytes")
            assert gauge.value == 16
            receiver.on_chunk(0.1, make_chunk(units=4, c_sn=0, t_sn=0))
            assert gauge.value == 0  # gap filled, buffer drained
            assert gauge.high_water == 16


class TestNetsimInstrumentation:
    def test_receiver_trace_publish(self):
        with session() as (registry, _):
            trace = ReceiverTrace()
            for position, index in enumerate([3, 2, 1, 0]):
                trace.record(position * 1.0, index, 100)
            values = trace.publish()
            assert values == {
                "arrivals": 4.0,
                "late_arrivals": 3.0,
                "max_displacement": 3.0,
                "disorder_fraction": 0.75,
            }
            assert registry.get("netsim", "trace.max_displacement").value == 3.0
            assert registry.get("netsim", "trace.late_arrivals").value == 3.0

    def test_receiver_trace_publish_without_registry_returns_values(self):
        trace = ReceiverTrace()
        trace.record(0.0, 0, 10)
        assert trace.publish()["arrivals"] == 1.0


@pytest.mark.slow
def test_example_trace_report_end_to_end(tmp_path, capsys):
    """The acceptance path: run the reliable-transfer example with
    --trace, then `python -m repro.obs report` must print per-layer
    counters including data touches and retransmissions."""
    examples = pathlib.Path(__file__).resolve().parents[2] / "examples"
    spec = importlib.util.spec_from_file_location(
        "example_reliable_transfer_obs", examples / "reliable_transfer.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    trace_path = tmp_path / "transfer.jsonl"
    try:
        spec.loader.exec_module(module)
        module.main(["--trace", str(trace_path)])
    finally:
        sys.modules.pop(spec.name, None)
    capsys.readouterr()

    assert trace_path.exists()
    assert main(["report", str(trace_path)]) == 0
    out = capsys.readouterr().out
    for scope in ("== host ==", "== netsim ==", "== transport ==", "== wsc =="):
        assert scope in out
    assert "data_touches" in out
    assert "retransmissions" in out

    records = load_records(trace_path)
    touches = [
        r for r in records if r.get("kind") == "counter" and r.get("name") == "data_touches"
    ]
    assert touches and touches[0]["value"] > 0
    text = summarize(records, scope="transport")
    assert "retransmissions" in text
