"""Tests for the conversation flight recorder (repro.obs.flight)."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import ObsError
from repro.obs.flight import (
    FlightRecorder,
    active_flight,
    flight_dump,
    flight_session,
    install_flight,
    uninstall_flight,
)
from repro.obs.provenance import (
    active_journey,
    install_journey,
    journey_session,
    uninstall_journey,
)


@pytest.fixture
def bare_obs():
    """No journey tracker, no flight recorder; restore afterwards.

    The suite may run with a session-global tracker+recorder installed
    (REPRO_FLIGHT_DIR), so save/restore rather than assume a clean slate.
    """
    previous_journey = active_journey()
    previous_flight = active_flight()
    uninstall_flight()
    uninstall_journey()
    try:
        yield
    finally:
        uninstall_flight()
        uninstall_journey()
        if previous_journey is not None:
            install_journey(previous_journey)
        if previous_flight is not None:
            install_flight(previous_flight)


def _emit_some(tracker, c_id: int, count: int) -> None:
    for sn in range(count):
        tracker.emit("formed", c_id, sn * 4, 4, t=float(sn))


class TestFlightRecorder:
    def test_rings_are_bounded_per_conversation(self, bare_obs):
        with journey_session() as tracker:
            with flight_session(ring_size=8) as recorder:
                _emit_some(tracker, 1, 20)
                _emit_some(tracker, 2, 3)
                assert recorder.records_seen == 23
                assert recorder.conversation_ids() == [1, 2]
                ring = recorder.ring(1)
                assert len(ring) == 8
                # Oldest dropped: the ring retains the *latest* history.
                assert ring[0].offset == 12 * 4
                assert ring[-1].offset == 19 * 4
                assert len(recorder.ring(2)) == 3
                assert recorder.ring(99) == []

    def test_rings_outlive_tracker_saturation(self, bare_obs):
        from repro.obs.provenance import JourneyTracker

        with journey_session(JourneyTracker(max_records=2)) as tracker:
            with flight_session(ring_size=64) as recorder:
                _emit_some(tracker, 1, 10)
                assert len(tracker.records) == 2
                assert tracker.dropped == 8
                # The black box still saw every record.
                assert len(recorder.ring(1)) == 10

    def test_snapshot_structure(self, bare_obs):
        with journey_session() as tracker:
            with flight_session() as recorder:
                _emit_some(tracker, 7, 2)
                records = recorder.snapshot("unit", "tag")
                kinds = [r["kind"] for r in records]
                assert kinds[0] == "flight-meta"
                assert records[0]["trigger"] == "unit"
                assert records[0]["tag"] == "tag"
                assert records[0]["conversations"] == 1
                assert "flight-conversation" in kinds
                assert kinds.count("provenance") == 2
                assert kinds[-1] == "flight-latency"

    def test_dump_writes_deterministic_jsonl(self, bare_obs, tmp_path):
        def run(directory):
            with journey_session() as tracker:
                with flight_session(dump_dir=directory) as recorder:
                    _emit_some(tracker, 7, 5)
                    return recorder.dump("invariant", "slow_loris")

        path_a = run(tmp_path / "a")
        path_b = run(tmp_path / "b")
        assert path_a.name == "flight-000-invariant-slow_loris.jsonl"
        assert path_a.read_bytes() == path_b.read_bytes()
        lines = path_a.read_text().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_dump_sequence_numbers_and_slug(self, bare_obs, tmp_path):
        with journey_session() as tracker:
            with flight_session(dump_dir=tmp_path) as recorder:
                _emit_some(tracker, 1, 1)
                first = recorder.dump("simsan", "weird/label: spaces!")
                second = recorder.dump("simsan")
                assert first.name.startswith("flight-000-simsan-")
                assert "/" not in first.name[7:]
                assert ":" not in first.name
                assert second.name == "flight-001-simsan.jsonl"
                assert recorder.dumps == [first, second]

    def test_dump_without_directory_returns_none(self, bare_obs):
        with journey_session():
            with flight_session() as recorder:
                assert recorder.dump("trigger") is None


class TestInstallation:
    def test_install_requires_journey(self, bare_obs):
        with pytest.raises(ObsError):
            install_flight()

    def test_flight_dump_is_noop_uninstalled(self, bare_obs):
        assert flight_dump("anything") is None

    def test_install_couples_to_tracker_on_record(self, bare_obs):
        with journey_session() as tracker:
            recorder = install_flight()
            assert tracker.on_record == recorder.observe
            assert active_flight() is recorder
            uninstall_flight()
            assert tracker.on_record is None
            assert active_flight() is None

    def test_session_restores_previous_recorder(self, bare_obs):
        with journey_session():
            outer = install_flight(FlightRecorder(ring_size=4))
            with flight_session(ring_size=16) as inner:
                assert active_flight() is inner
            assert active_flight() is outer

    def test_ring_size_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(ring_size=0)
