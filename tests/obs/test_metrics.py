"""Unit tests for the metric instruments and their registry."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    EXP_HI,
    EXP_LO,
    EXP_ZERO,
    Registry,
    bucket_exponent,
    bucket_label,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Registry().counter("s", "c")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_rejects_negative_increments(self):
        counter = Registry().counter("s", "c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_sample(self):
        counter = Registry().counter("s", "c")
        counter.inc(3)
        assert counter.sample() == {"value": 3}


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Registry().gauge("s", "g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value == 3

    def test_high_water_tracks_maximum(self):
        gauge = Registry().gauge("s", "g")
        gauge.set(7)
        gauge.set(2)
        gauge.inc(1)
        assert gauge.value == 3
        assert gauge.high_water == 7

    def test_high_water_ignores_negative_excursions(self):
        gauge = Registry().gauge("s", "g")
        gauge.dec(10)
        assert gauge.value == -10
        assert gauge.high_water == 0


class TestBuckets:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, EXP_ZERO),
            (-3.5, EXP_ZERO),
            (1, 0),
            (2, 1),
            (3, 2),
            (4, 2),
            (7, 3),
            (1024, 10),
            (1024.5, 11),
            (0.004, -7),
        ],
    )
    def test_bucket_exponent(self, value, expected):
        assert bucket_exponent(value) == expected

    def test_exponent_clamped_to_range(self):
        assert bucket_exponent(2.0**-60) == EXP_LO
        assert bucket_exponent(2.0**80) == EXP_HI

    def test_labels(self):
        assert bucket_label(EXP_ZERO) == "<=0"
        assert bucket_label(3) == "<=2^3"
        assert bucket_label(-7) == "<=2^-7"

    def test_power_of_two_lands_in_own_bucket(self):
        # 2^e belongs to bucket e (smallest power of two >= value).
        for exponent in range(-10, 11):
            assert bucket_exponent(2.0**exponent) == exponent


class TestHistogram:
    def test_observe_statistics(self):
        hist = Registry().histogram("s", "h")
        for value in (1, 2, 3):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6
        assert hist.mean == pytest.approx(2.0)
        assert hist.minimum == 1
        assert hist.maximum == 3

    def test_empty_histogram_mean(self):
        assert Registry().histogram("s", "h").mean == 0.0

    def test_sparse_buckets(self):
        hist = Registry().histogram("s", "h")
        hist.observe(0)
        hist.observe(1)
        hist.observe(1)
        hist.observe(100)
        assert hist.buckets == {EXP_ZERO: 1, 0: 2, 7: 1}

    def test_sample_keys_are_strings(self):
        hist = Registry().histogram("s", "h")
        hist.observe(5)
        assert hist.sample()["buckets"] == {"3": 1}


class TestTimer:
    def test_measure_uses_injected_clock(self):
        time = {"now": 0.0}
        registry = Registry(clock=lambda: time["now"])
        timer = registry.timer("s", "t")
        with timer.measure():
            time["now"] = 2.5
        assert timer.histogram.count == 1
        assert timer.histogram.total == pytest.approx(2.5)

    def test_measure_records_on_exception(self):
        time = {"now": 0.0}
        timer = Registry(clock=lambda: time["now"]).timer("s", "t")
        with pytest.raises(RuntimeError):
            with timer.measure():
                time["now"] = 1.0
                raise RuntimeError("boom")
        assert timer.histogram.count == 1


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = Registry()
        assert registry.counter("a", "x") is registry.counter("a", "x")

    def test_kind_mismatch_raises(self):
        registry = Registry()
        registry.counter("a", "x")
        with pytest.raises(ValueError):
            registry.gauge("a", "x")
        with pytest.raises(ValueError):
            registry.timer("a", "x")

    def test_samples_sorted_by_scope_then_name(self):
        registry = Registry()
        registry.counter("z", "a")
        registry.counter("a", "z")
        registry.counter("a", "b")
        keys = [(s.scope, s.name) for s in registry.samples()]
        assert keys == [("a", "b"), ("a", "z"), ("z", "a")]

    def test_get_does_not_create(self):
        registry = Registry()
        assert registry.get("a", "missing") is None
        registry.counter("a", "present")
        assert registry.get("a", "present") is not None

    def test_default_clock_is_zero(self):
        assert Registry().now() == 0.0
