"""Tests for the Chrome/Perfetto trace exporter (repro.obs.perfetto)."""

from __future__ import annotations

import json

import pytest

from repro.obs.perfetto import (
    chunk_timelines,
    journeys_to_trace,
    parse_trace,
    write_trace,
)
from repro.obs.provenance import JourneyTracker, journal_records


def _populated_tracker() -> JourneyTracker:
    tracker = JourneyTracker()
    tracker.emit("established", 7, 0, 0, t=0.0, level="conn")
    tracker.emit("formed", 7, 0, 256, t=0.1, t_id=3, x_id=9)
    tracker.emit("link_tx", 7, 0, 256, t=0.2, t_id=3, x_id=9)
    tracker.emit("refused", 7, 0, 256, t=0.3, t_id=3, x_id=9, reason="budget")
    tracker.emit("retransmit", 7, 0, 256, t=0.5, gen=1, t_id=3, x_id=9)
    tracker.emit("placed", 7, 0, 256, t=0.6, gen=1, t_id=3, x_id=9)
    tracker.emit("formed", 7, 256, 256, t=0.1, t_id=3, x_id=9)
    tracker.emit("placed", 7, 256, 256, t=0.4, t_id=3, x_id=9)
    tracker.emit("verified", 7, 0, 0, t=0.7, level="tpdu", t_id=3, ok=True)
    tracker.emit("delivered", 7, 0, 0, t=0.8, level="frame", x_id=9)
    tracker.emit("formed", 8, 0, 128, t=0.9, t_id=4, x_id=10)
    return tracker


class TestJourneysToTrace:
    def test_metadata_and_track_layout(self):
        trace = journeys_to_trace(_populated_tracker().records)
        events = parse_trace(trace)
        meta = [e for e in events if e["ph"] == "M"]
        process_names = {
            e["pid"]: e["args"]["name"]
            for e in meta
            if e["name"] == "process_name"
        }
        assert process_names == {7: "conn 7", 8: "conn 8"}
        thread_names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in meta
            if e["name"] == "thread_name"
        }
        assert thread_names[(7, 0)] == "lifecycle"
        assert thread_names[(7, 1)] == "chunk [0,+256)"
        assert thread_names[(7, 2)] == "chunk [256,+256)"
        assert thread_names[(8, 1)] == "chunk [0,+128)"

    def test_slices_and_instants(self):
        trace = journeys_to_trace(_populated_tracker().records)
        events = parse_trace(trace)
        # Chunk (7, 0, 256) has 5 records -> 4 X slices + 1 final instant.
        lane = [
            e for e in events
            if e["ph"] in ("X", "i") and e["pid"] == 7 and e["tid"] == 1
        ]
        assert [e["name"] for e in lane] == [
            "formed", "link_tx", "refused", "retransmit", "placed",
        ]
        assert [e["ph"] for e in lane] == ["X", "X", "X", "X", "i"]
        # Slice durations bridge to the next stage (microseconds).
        assert lane[0]["ts"] == pytest.approx(0.1e6)
        assert lane[0]["dur"] == pytest.approx(0.1e6)
        # Lifecycle lane carries the coarser-grained records as instants.
        lifecycle = [
            e for e in events
            if e["ph"] == "i" and e["pid"] == 7 and e["tid"] == 0
        ]
        assert [e["name"] for e in lifecycle] == [
            "established", "verified", "delivered",
        ]

    def test_retransmission_flow_arrows(self):
        trace = journeys_to_trace(_populated_tracker().records)
        events = parse_trace(trace)
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"] == "7:0+256:g1"
        assert starts[0]["ts"] == pytest.approx(0.5e6)
        assert finishes[0]["ts"] == pytest.approx(0.6e6)  # -> placed

    def test_conn_filter(self):
        trace = journeys_to_trace(_populated_tracker().records, conn=8)
        events = parse_trace(trace)
        assert {e["pid"] for e in events} == {8}

    def test_accepts_parsed_journal_dicts(self):
        tracker = _populated_tracker()
        from_records = journeys_to_trace(tracker.records)
        from_dicts = journeys_to_trace(journal_records(tracker))
        assert from_records == from_dicts

    def test_args_carry_full_label_and_fields(self):
        trace = journeys_to_trace(_populated_tracker().records)
        refused = next(
            e for e in parse_trace(trace) if e["name"] == "refused"
        )
        assert refused["args"]["c_id"] == 7
        assert refused["args"]["offset"] == 0
        assert refused["args"]["length"] == 256
        assert refused["args"]["reason"] == "budget"


class TestRoundTrip:
    def test_chunk_timelines_inverse(self):
        tracker = _populated_tracker()
        timelines = chunk_timelines(journeys_to_trace(tracker.records))
        assert set(timelines) == set(tracker.keys())
        assert timelines[(7, 0, 256)] == [
            (pytest.approx(0.1), "formed", 0),
            (pytest.approx(0.2), "link_tx", 0),
            (pytest.approx(0.3), "refused", 0),
            (pytest.approx(0.5), "retransmit", 1),
            (pytest.approx(0.6), "placed", 1),
        ]

    def test_write_and_reload(self, tmp_path):
        tracker = _populated_tracker()
        trace = journeys_to_trace(tracker.records)
        path = tmp_path / "trace.json"
        count = write_trace(path, trace)
        assert count == len(trace["traceEvents"])
        reloaded = json.loads(path.read_text())
        assert chunk_timelines(reloaded) == chunk_timelines(trace)

    def test_write_trace_deterministic(self, tmp_path):
        path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
        write_trace(path_a, journeys_to_trace(_populated_tracker().records))
        write_trace(path_b, journeys_to_trace(_populated_tracker().records))
        assert path_a.read_bytes() == path_b.read_bytes()


class TestParseTrace:
    def test_rejects_non_document(self):
        with pytest.raises(ValueError):
            parse_trace({"events": []})

    def test_rejects_malformed_event(self):
        with pytest.raises(ValueError):
            parse_trace({"traceEvents": [{"name": "no-phase"}]})

    def test_empty_records_yield_empty_trace(self):
        trace = journeys_to_trace([])
        assert parse_trace(trace) == []
        assert chunk_timelines(trace) == {}
