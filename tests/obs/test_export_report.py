"""Tests for the exporters and the ``python -m repro.obs report`` CLI."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.export import (
    metric_records,
    render_histogram_buckets,
    render_table,
    trace_records,
    write_jsonl,
)
from repro.obs.metrics import Registry
from repro.obs.report import load_records, main, summarize, summarize_journeys
from repro.obs.tracing import Tracer


def _populated_registry() -> Registry:
    registry = Registry()
    registry.counter("transport", "retransmissions").inc(7)
    registry.gauge("netsim", "queue").set(3)
    registry.histogram("transport", "dist").observe(12)
    return registry


class TestExport:
    def test_metric_records_sorted_and_self_describing(self):
        records = metric_records(_populated_registry())
        # Sorted by (scope, name): netsim/queue, transport/dist,
        # transport/retransmissions.
        assert [r["kind"] for r in records] == ["gauge", "histogram", "counter"]
        assert records[2] == {
            "kind": "counter",
            "scope": "transport",
            "name": "retransmissions",
            "value": 7,
        }

    def test_trace_records_include_drop_meta(self):
        tracer = Tracer(max_records=1)
        tracer.event("a", "kept", t=1.0)
        tracer.event("a", "dropped", t=2.0)
        records = trace_records(tracer)
        assert records[-1] == {"kind": "meta", "dropped_records": 1}

    def test_write_jsonl_to_stream_is_deterministic(self):
        buffer_a, buffer_b = io.StringIO(), io.StringIO()
        write_jsonl(buffer_a, registry=_populated_registry())
        write_jsonl(buffer_b, registry=_populated_registry())
        assert buffer_a.getvalue() == buffer_b.getvalue()
        for line in buffer_a.getvalue().splitlines():
            json.loads(line)  # every line is standalone JSON

    def test_write_jsonl_to_path_returns_line_count(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer()
        tracer.event("x", "tick", t=0.5)
        count = write_jsonl(path, registry=_populated_registry(), tracer=tracer)
        assert count == 4
        assert len(path.read_text().splitlines()) == 4

    def test_render_table_groups_by_scope(self):
        text = render_table(_populated_registry())
        assert text.index("== netsim ==") < text.index("== transport ==")
        assert "retransmissions" in text
        assert "count=1" in text

    def test_render_histogram_buckets(self):
        assert render_histogram_buckets({"-21": 2, "3": 1}) == "<=0:2 <=2^3:1"


class TestReport:
    def _write_trace(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer()
        tracer.event("transport", "retransmit", t=0.25)
        write_jsonl(path, registry=_populated_registry(), tracer=tracer)
        return path

    def test_load_records_roundtrip(self, tmp_path):
        path = self._write_trace(tmp_path)
        records = load_records(path)
        assert len(records) == 4
        assert all("kind" in r for r in records)

    def test_load_records_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(ValueError):
            load_records(path)

    def test_load_records_rejects_kindless_records(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"no": "kind"}\n')
        with pytest.raises(ValueError):
            load_records(path)

    def test_summarize_scope_filter(self, tmp_path):
        records = load_records(self._write_trace(tmp_path))
        text = summarize(records, scope="transport")
        assert "retransmissions" in text
        assert "netsim" not in text

    def test_summarize_events_and_buckets(self, tmp_path):
        records = load_records(self._write_trace(tmp_path))
        text = summarize(records, show_events=True, show_buckets=True)
        assert "transport.retransmit: 1" in text
        assert "<=2^4:1" in text

    def test_summarize_empty(self):
        assert summarize([]) == "(no matching records)"

    def test_cli_report(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== transport ==" in out
        assert "retransmissions" in out

    def test_cli_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_cli_bad_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{broken\n")
        assert main(["report", str(path)]) == 2


class TestDeterministicOrdering:
    def _labelled_registry(self) -> Registry:
        registry = Registry()
        # Deliberately created out of order: the report must not depend
        # on creation order, and labelled ties must sort numerically.
        for conn in (10, 2, 7):
            registry.counter("transport", f"chunks{{conn={conn}}}").inc(conn)
        registry.counter("transport", "chunks").inc(1)
        registry.counter("netsim", "chunks").inc(1)
        return registry

    def test_labelled_rows_sort_numerically(self):
        text = summarize(metric_records(self._labelled_registry()))
        positions = [
            text.index(f"chunks{{conn={conn}}}") for conn in (2, 7, 10)
        ]
        assert positions == sorted(positions)

    def test_base_name_precedes_its_labelled_variants(self):
        text = summarize(metric_records(self._labelled_registry()))
        assert text.index("chunks ") < text.index("chunks{conn=2}")

    def test_scopes_sort_before_names(self):
        text = summarize(metric_records(self._labelled_registry()))
        assert text.index("== netsim ==") < text.index("== transport ==")

    def test_identical_inputs_render_identically(self):
        first = summarize(metric_records(self._labelled_registry()))
        second = summarize(metric_records(self._labelled_registry()))
        assert first == second


class TestEventFiltering:
    def _trace_path(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer()
        tracer.event("transport", "retransmit", t=0.1, fields={"conn": 7})
        tracer.event("transport", "retransmit", t=0.2, fields={"conn": 8})
        tracer.event("transport", "conn_evicted", t=0.3,
                     fields={"conn": 7, "reason": "stalled"})
        write_jsonl(path, tracer=tracer)
        return path

    def test_filter_by_field_value(self, tmp_path):
        records = load_records(self._trace_path(tmp_path))
        text = summarize(records, show_events="conn=7")
        assert "transport.retransmit: 1" in text
        assert "transport.conn_evicted: 1" in text

    def test_filter_by_bare_value(self, tmp_path):
        records = load_records(self._trace_path(tmp_path))
        text = summarize(records, show_events="stalled")
        assert "transport.conn_evicted: 1" in text
        assert "retransmit" not in text

    def test_filter_by_name_substring(self, tmp_path):
        records = load_records(self._trace_path(tmp_path))
        text = summarize(records, show_events="retransmit")
        assert "transport.retransmit: 2" in text
        assert "conn_evicted" not in text

    def test_cli_events_filter(self, tmp_path, capsys):
        path = self._trace_path(tmp_path)
        assert main(["report", str(path), "--events", "conn=8"]) == 0
        out = capsys.readouterr().out
        assert "transport.retransmit: 1" in out
        assert "conn_evicted" not in out


class TestJourneyReport:
    def _journal_path(self, tmp_path):
        from repro.obs.provenance import JourneyTracker, write_journal

        tracker = JourneyTracker()
        tracker.emit("formed", 7, 0, 256, t=0.0, t_id=3, x_id=9)
        tracker.emit("refused", 7, 0, 256, t=0.2, reason="budget")
        tracker.emit("retransmit", 7, 0, 256, t=0.4, gen=1)
        tracker.emit("placed", 7, 0, 256, t=0.5, gen=1)
        tracker.emit("formed", 8, 0, 128, t=0.6)
        path = tmp_path / "journal.jsonl"
        write_journal(path, tracker)
        return path

    def test_summarize_journeys_table(self, tmp_path):
        records = load_records(self._journal_path(tmp_path))
        text = summarize_journeys(records)
        assert "== chunk journeys ==" in text
        assert "[0,+256)" in text
        assert "formed>refused>retransmit>placed" in text
        assert "(2 journey(s))" in text

    def test_summarize_journeys_conn_filter(self, tmp_path):
        records = load_records(self._journal_path(tmp_path))
        text = summarize_journeys(records, conn=8)
        assert "(1 journey(s))" in text
        assert "[0,+256)" not in text

    def test_summarize_journeys_empty(self):
        assert summarize_journeys([]) == "(no provenance records)"

    def test_cli_journeys(self, tmp_path, capsys):
        path = self._journal_path(tmp_path)
        assert main(["report", str(path), "--journeys", "--conn", "7"]) == 0
        out = capsys.readouterr().out
        assert "== chunk journeys ==" in out
        assert "placed" in out

    def test_cli_export_trace_round_trips(self, tmp_path, capsys):
        from repro.obs.perfetto import chunk_timelines

        path = self._journal_path(tmp_path)
        out_path = tmp_path / "trace.json"
        assert main(["export-trace", str(path), str(out_path)]) == 0
        assert "trace event(s)" in capsys.readouterr().out
        trace = json.loads(out_path.read_text())
        timelines = chunk_timelines(trace)
        assert [stage for _, stage, _ in timelines[(7, 0, 256)]] == [
            "formed", "refused", "retransmit", "placed",
        ]

    def test_cli_export_trace_conn_filter(self, tmp_path):
        from repro.obs.perfetto import chunk_timelines

        path = self._journal_path(tmp_path)
        out_path = tmp_path / "trace.json"
        assert main(
            ["export-trace", str(path), str(out_path), "--conn", "8"]
        ) == 0
        assert set(chunk_timelines(json.loads(out_path.read_text()))) == {
            (8, 0, 128)
        }
