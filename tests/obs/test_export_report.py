"""Tests for the exporters and the ``python -m repro.obs report`` CLI."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.export import (
    metric_records,
    render_histogram_buckets,
    render_table,
    trace_records,
    write_jsonl,
)
from repro.obs.metrics import Registry
from repro.obs.report import load_records, main, summarize
from repro.obs.tracing import Tracer


def _populated_registry() -> Registry:
    registry = Registry()
    registry.counter("transport", "retransmissions").inc(7)
    registry.gauge("netsim", "queue").set(3)
    registry.histogram("transport", "dist").observe(12)
    return registry


class TestExport:
    def test_metric_records_sorted_and_self_describing(self):
        records = metric_records(_populated_registry())
        # Sorted by (scope, name): netsim/queue, transport/dist,
        # transport/retransmissions.
        assert [r["kind"] for r in records] == ["gauge", "histogram", "counter"]
        assert records[2] == {
            "kind": "counter",
            "scope": "transport",
            "name": "retransmissions",
            "value": 7,
        }

    def test_trace_records_include_drop_meta(self):
        tracer = Tracer(max_records=1)
        tracer.event("a", "kept", t=1.0)
        tracer.event("a", "dropped", t=2.0)
        records = trace_records(tracer)
        assert records[-1] == {"kind": "meta", "dropped_records": 1}

    def test_write_jsonl_to_stream_is_deterministic(self):
        buffer_a, buffer_b = io.StringIO(), io.StringIO()
        write_jsonl(buffer_a, registry=_populated_registry())
        write_jsonl(buffer_b, registry=_populated_registry())
        assert buffer_a.getvalue() == buffer_b.getvalue()
        for line in buffer_a.getvalue().splitlines():
            json.loads(line)  # every line is standalone JSON

    def test_write_jsonl_to_path_returns_line_count(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer()
        tracer.event("x", "tick", t=0.5)
        count = write_jsonl(path, registry=_populated_registry(), tracer=tracer)
        assert count == 4
        assert len(path.read_text().splitlines()) == 4

    def test_render_table_groups_by_scope(self):
        text = render_table(_populated_registry())
        assert text.index("== netsim ==") < text.index("== transport ==")
        assert "retransmissions" in text
        assert "count=1" in text

    def test_render_histogram_buckets(self):
        assert render_histogram_buckets({"-21": 2, "3": 1}) == "<=0:2 <=2^3:1"


class TestReport:
    def _write_trace(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer()
        tracer.event("transport", "retransmit", t=0.25)
        write_jsonl(path, registry=_populated_registry(), tracer=tracer)
        return path

    def test_load_records_roundtrip(self, tmp_path):
        path = self._write_trace(tmp_path)
        records = load_records(path)
        assert len(records) == 4
        assert all("kind" in r for r in records)

    def test_load_records_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(ValueError):
            load_records(path)

    def test_load_records_rejects_kindless_records(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"no": "kind"}\n')
        with pytest.raises(ValueError):
            load_records(path)

    def test_summarize_scope_filter(self, tmp_path):
        records = load_records(self._write_trace(tmp_path))
        text = summarize(records, scope="transport")
        assert "retransmissions" in text
        assert "netsim" not in text

    def test_summarize_events_and_buckets(self, tmp_path):
        records = load_records(self._write_trace(tmp_path))
        text = summarize(records, show_events=True, show_buckets=True)
        assert "transport.retransmit: 1" in text
        assert "<=2^4:1" in text

    def test_summarize_empty(self):
        assert summarize([]) == "(no matching records)"

    def test_cli_report(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== transport ==" in out
        assert "retransmissions" in out

    def test_cli_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_cli_bad_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{broken\n")
        assert main(["report", str(path)]) == 2
