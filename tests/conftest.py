"""Shared fixtures, hypothesis profiles, and the simsan hook.

Data builders live in :mod:`tests.helpers`; they are re-exported here
so existing ``from tests.conftest import make_chunk`` imports keep
working.
"""

from __future__ import annotations

import os
import random

import pytest

from tests.helpers import deterministic_bytes, make_chunk, make_payload

__all__ = ["deterministic_bytes", "make_chunk", "make_payload", "rng"]


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--simsan",
        action="store_true",
        default=False,
        help="run the whole suite under the repro.analysis.simsan "
        "event-loop sanitizer (also enabled by REPRO_SIMSAN=1)",
    )


def pytest_configure(config: pytest.Config) -> None:
    from repro.analysis import simsan

    if config.getoption("--simsan") or simsan.enabled_by_env():
        simsan.install()
        config._repro_simsan_installed = True  # type: ignore[attr-defined]

    # REPRO_FLIGHT_DIR=<dir> flies the whole suite under the provenance
    # tracker + flight recorder; failing tests dump their black box
    # there (CI uploads the directory as an artifact on failure).
    flight_dir = os.environ.get("REPRO_FLIGHT_DIR")
    if flight_dir:
        import repro.obs as obs

        obs.install_journey()
        obs.install_flight(dump_dir=flight_dir)
        config._repro_flight_installed = True  # type: ignore[attr-defined]


def pytest_unconfigure(config: pytest.Config) -> None:
    if getattr(config, "_repro_simsan_installed", False):
        from repro.analysis import simsan

        simsan.uninstall()
    if getattr(config, "_repro_flight_installed", False):
        import repro.obs as obs

        obs.uninstall_flight()
        obs.uninstall_journey()


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(
    item: pytest.Item, call: pytest.CallInfo[None]
):  # noqa: ARG001 - pytest hook signature
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        from repro.obs import flight_dump

        flight_dump("test_failure", item.nodeid)

try:
    from hypothesis import settings as _hypothesis_settings

    # "ci" is the pinned profile the property suites run under: fully
    # derandomized (reproducible across machines and runs) with a
    # bounded example count and no flaky wall-clock deadline.
    _hypothesis_settings.register_profile(
        "ci", derandomize=True, max_examples=40, deadline=None
    )
    _hypothesis_settings.register_profile(
        "thorough", max_examples=400, deadline=None
    )
    _hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    pass


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)
