"""Shared test helpers and fixtures."""

from __future__ import annotations

import os
import random

import pytest

from repro.core.chunk import Chunk
from repro.core.tuples import FramingTuple
from repro.core.types import WORD_BYTES, ChunkType


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--simsan",
        action="store_true",
        default=False,
        help="run the whole suite under the repro.analysis.simsan "
        "event-loop sanitizer (also enabled by REPRO_SIMSAN=1)",
    )


def pytest_configure(config: pytest.Config) -> None:
    from repro.analysis import simsan

    if config.getoption("--simsan") or simsan.enabled_by_env():
        simsan.install()
        config._repro_simsan_installed = True  # type: ignore[attr-defined]


def pytest_unconfigure(config: pytest.Config) -> None:
    if getattr(config, "_repro_simsan_installed", False):
        from repro.analysis import simsan

        simsan.uninstall()

try:
    from hypothesis import settings as _hypothesis_settings

    # "ci" is the pinned profile the property suites run under: fully
    # derandomized (reproducible across machines and runs) with a
    # bounded example count and no flaky wall-clock deadline.
    _hypothesis_settings.register_profile(
        "ci", derandomize=True, max_examples=40, deadline=None
    )
    _hypothesis_settings.register_profile(
        "thorough", max_examples=400, deadline=None
    )
    _hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    pass


def make_payload(units: int, size: int = 1, seed: int = 1) -> bytes:
    """Deterministic payload of *units* atomic units of *size* words."""
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(units * size * WORD_BYTES))


def make_chunk(
    units: int = 8,
    size: int = 1,
    c_id: int = 1,
    c_sn: int = 0,
    c_st: bool = False,
    t_id: int = 10,
    t_sn: int = 0,
    t_st: bool = False,
    x_id: int = 100,
    x_sn: int = 0,
    x_st: bool = False,
    seed: int = 1,
    payload: bytes | None = None,
) -> Chunk:
    """A DATA chunk with sensible defaults for tests."""
    return Chunk(
        type=ChunkType.DATA,
        size=size,
        length=units,
        c=FramingTuple(c_id, c_sn, c_st),
        t=FramingTuple(t_id, t_sn, t_st),
        x=FramingTuple(x_id, x_sn, x_st),
        payload=payload if payload is not None else make_payload(units, size, seed),
    )


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)
