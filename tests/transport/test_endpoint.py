"""ChunkEndpoint: demux, lifecycle, shared accounting, egress mixing."""

from __future__ import annotations

import pytest

from repro.core.errors import EndpointError
from repro.core.packet import Packet
from repro.core.tuples import FramingTuple
from repro.core.types import ChunkType
from repro.core.chunk import Chunk
from repro.host.budget import SharedPlacementBudget
from repro.netsim.events import EventLoop
from repro.obs import session
from repro.transport.acks import build_ack_chunk
from repro.transport.connection import ConnectionConfig, build_signaling_chunk
from repro.transport.endpoint import ChunkEndpoint, ConnectionState
from repro.transport.receiver import ChunkTransportReceiver
from repro.transport.sender import ChunkTransportSender

from tests.conftest import make_chunk, make_payload


def wire(loop: EventLoop, a: ChunkEndpoint, b: ChunkEndpoint, delay: float = 0.001):
    """Connect two endpoints with lossless delayed delivery."""
    a.transmit = lambda frame: loop.schedule(delay, lambda f=frame: b.receive_packet(f))
    b.transmit = lambda frame: loop.schedule(delay, lambda f=frame: a.receive_packet(f))


def data_packet(sender: ChunkTransportSender, payload: bytes, signal: bool = True,
                end: bool = True) -> bytes:
    chunks = [sender.establishment_chunk()] if signal else []
    chunks += sender.send_frame(payload, end_of_connection=end)
    return Packet(chunks=chunks).encode()


# ----------------------------------------------------------------------
# Establishment and demultiplexing
# ----------------------------------------------------------------------

def test_signaling_establishes_connection():
    endpoint = ChunkEndpoint(EventLoop())
    sender = ChunkTransportSender(ConnectionConfig(connection_id=9, tpdu_units=16))
    payload = make_payload(32)
    events = endpoint.receive_packet(data_packet(sender, payload))
    assert events.established == [9]
    connection = endpoint.connection(9)
    assert connection is not None
    assert connection.state is ConnectionState.CLOSED  # C.ST on last chunk
    assert connection.stream_bytes() == payload
    assert connection.config.tpdu_units == 16


def test_multi_conversation_packet_demuxes_by_cid():
    endpoint = ChunkEndpoint(EventLoop())
    payloads = {}
    chunks = []
    for cid in (3, 4, 5):
        sender = ChunkTransportSender(ConnectionConfig(connection_id=cid, tpdu_units=8))
        payloads[cid] = make_payload(16, seed=cid)
        chunks.append(sender.establishment_chunk())
        chunks += sender.send_frame(payloads[cid], end_of_connection=True)
    # One envelope, chunks from three conversations interleaved.
    chunks = chunks[::2] + chunks[1::2]
    events = endpoint.receive_packet(Packet(chunks=chunks).encode())
    assert sorted(events.established) == [3, 4, 5]
    assert len(events.per_connection) == 3
    for cid, expected in payloads.items():
        assert endpoint.connection(cid).stream_bytes() == expected


def test_unknown_cid_data_is_refused_and_counted():
    endpoint = ChunkEndpoint(EventLoop())
    events = endpoint.receive_packet(
        Packet(chunks=[make_chunk(units=4, c_id=77)]).encode()
    )
    assert events.refused_chunks == 1
    assert endpoint.refused_unknown == 1
    assert endpoint.connection(77) is None
    assert endpoint.stats()["refused_unknown"] == 1


def test_accept_unsignaled_mode_auto_establishes():
    endpoint = ChunkEndpoint(EventLoop(), accept_unsignaled=True)
    payload = make_payload(4)
    chunk = make_chunk(units=4, c_id=77, payload=payload)
    events = endpoint.receive_packet(Packet(chunks=[chunk]).encode())
    assert events.refused_chunks == 0
    assert events.established == [77]
    assert endpoint.connection(77).stream_bytes() == payload


def test_malformed_signaling_does_not_establish():
    endpoint = ChunkEndpoint(EventLoop())
    good = build_signaling_chunk(ConnectionConfig(connection_id=6))
    bad_payload = bytearray(good.payload)
    bad_payload[10] = 0xFF  # reserved byte
    bad = Chunk(
        type=ChunkType.SIGNALING, size=1, length=good.length,
        c=FramingTuple(6, 0, False), t=FramingTuple(0, 0, False),
        x=FramingTuple(0, 0, False), payload=bytes(bad_payload),
    )
    events = endpoint.receive_packet(Packet(chunks=[bad]).encode())
    assert events.established == []
    assert endpoint.connection(6) is None


def test_decode_failure_is_counted():
    endpoint = ChunkEndpoint(EventLoop())
    events = endpoint.receive_packet(b"\x00garbage")
    assert events.decode_failed
    assert endpoint.decode_failures == 1


# ----------------------------------------------------------------------
# Local open / capacity / ACK routing
# ----------------------------------------------------------------------

def test_open_connection_rejects_duplicates_and_capacity():
    endpoint = ChunkEndpoint(EventLoop(), max_connections=2)
    endpoint.transmit = lambda frame: None
    endpoint.open_connection(ConnectionConfig(connection_id=1))
    with pytest.raises(EndpointError):
        endpoint.open_connection(ConnectionConfig(connection_id=1))
    endpoint.open_connection(ConnectionConfig(connection_id=2))
    with pytest.raises(EndpointError):
        endpoint.open_connection(ConnectionConfig(connection_id=3))
    assert endpoint.connections_refused == 1


def test_send_on_connection_without_sender_session_raises():
    endpoint = ChunkEndpoint(EventLoop())
    sender = ChunkTransportSender(ConnectionConfig(connection_id=9, tpdu_units=16))
    endpoint.receive_packet(data_packet(sender, make_payload(16)))
    with pytest.raises(EndpointError):
        endpoint.connection(9).send_frame(b"\x00" * 4)


def test_unroutable_acks_are_counted():
    endpoint = ChunkEndpoint(EventLoop())
    ack = build_ack_chunk(41, [0, 1])
    endpoint.receive_packet(Packet(chunks=[ack]).encode())
    endpoint.receive_packet(Packet(chunks=[ack]).encode())
    assert endpoint.acks_unroutable == 2


def test_acks_route_to_sender_session():
    loop = EventLoop()
    a = ChunkEndpoint(loop)
    b = ChunkEndpoint(loop)
    wire(loop, a, b)
    conn = a.open_connection(ConnectionConfig(connection_id=5, tpdu_units=16))
    conn.send_frame(make_payload(64), end_of_connection=True)
    loop.run()
    assert conn.finished
    assert a.acks_unroutable == 0
    assert b.connection(5).verified_tpdus() > 0


# ----------------------------------------------------------------------
# Egress mixing
# ----------------------------------------------------------------------

def test_egress_mixes_conversations_into_shared_packets():
    loop = EventLoop()
    a = ChunkEndpoint(loop, mtu=4096)
    b = ChunkEndpoint(loop, mtu=4096)
    wire(loop, a, b)
    # Two conversations send within the same flush window: their chunks
    # must share envelopes.
    for cid in (1, 2):
        conn = a.open_connection(ConnectionConfig(connection_id=cid, tpdu_units=8))
        conn.send_frame(make_payload(8, seed=cid), end_of_connection=True)
    loop.run()
    assert a.mixed_packets > 0
    for cid in (1, 2):
        assert b.connection(cid).stream_bytes() == make_payload(8, seed=cid)


def test_flush_requires_transmit():
    endpoint = ChunkEndpoint(EventLoop())
    endpoint._enqueue([build_ack_chunk(1, [0])])
    with pytest.raises(EndpointError):
        endpoint.loop.run()


# ----------------------------------------------------------------------
# Lifecycle: close, idle eviction, tombstones, reclamation
# ----------------------------------------------------------------------

def test_close_then_sweep_evicts_and_reclaims_budget():
    loop = EventLoop()
    endpoint = ChunkEndpoint(loop, idle_timeout=10.0, close_linger=2.0)
    sender = ChunkTransportSender(ConnectionConfig(connection_id=9, tpdu_units=16))
    endpoint.receive_packet(data_packet(sender, make_payload(32)))
    connection = endpoint.connection(9)
    assert connection.state is ConnectionState.CLOSED
    assert endpoint.budget.held(9) > 0

    assert endpoint.sweep(now=1.0) == []       # still lingering
    assert endpoint.sweep(now=3.0) == [9]      # past close_linger
    assert endpoint.connection(9) is None
    assert endpoint.budget.held(9) == 0
    assert endpoint.budget.reserved_total == 0
    assert endpoint.table.evicted_total == 1
    assert 9 in endpoint.table.evicted_ids


def test_idle_eviction_of_established_connection():
    loop = EventLoop()
    endpoint = ChunkEndpoint(loop, idle_timeout=5.0)
    sender = ChunkTransportSender(ConnectionConfig(connection_id=3, tpdu_units=16))
    endpoint.receive_packet(data_packet(sender, make_payload(32), end=False))
    assert endpoint.connection(3).state is ConnectionState.ESTABLISHED
    assert endpoint.sweep(now=4.0) == []
    assert endpoint.sweep(now=5.0) == [3]


def test_data_for_evicted_cid_is_refused_as_evicted():
    endpoint = ChunkEndpoint(EventLoop(), close_linger=0.0)
    sender = ChunkTransportSender(ConnectionConfig(connection_id=9, tpdu_units=16))
    endpoint.receive_packet(data_packet(sender, make_payload(32)))
    endpoint.sweep(now=1.0)
    # A straggler retransmission (same C.ID, fresh builder) arrives
    # afterwards; the tombstone refuses even its establishment chunk.
    late = ChunkTransportSender(ConnectionConfig(connection_id=9, tpdu_units=16))
    endpoint.receive_packet(data_packet(late, make_payload(16), signal=True))
    assert endpoint.refused_evicted > 0
    assert endpoint.refused_unknown == 0
    assert endpoint.connection(9) is None


def test_unfinished_sender_is_never_swept():
    loop = EventLoop()
    endpoint = ChunkEndpoint(loop, idle_timeout=0.5)
    endpoint.transmit = lambda frame: None  # black-hole network: no ACKs
    conn = endpoint.open_connection(ConnectionConfig(connection_id=4, tpdu_units=8))
    conn.send_frame(make_payload(16), end_of_connection=True)
    assert not conn.finished
    assert endpoint.sweep(now=100.0) == []


def test_reopening_evicted_cid_raises():
    endpoint = ChunkEndpoint(EventLoop(), close_linger=0.0)
    endpoint.transmit = lambda frame: None
    sender = ChunkTransportSender(ConnectionConfig(connection_id=9, tpdu_units=16))
    endpoint.receive_packet(data_packet(sender, make_payload(32)))
    endpoint.sweep(now=1.0)
    with pytest.raises(EndpointError):
        endpoint.open_connection(ConnectionConfig(connection_id=9))


def test_close_connection_api():
    loop = EventLoop()
    endpoint = ChunkEndpoint(loop)
    endpoint.transmit = lambda frame: None
    endpoint.open_connection(ConnectionConfig(connection_id=2))
    endpoint.close_connection(2)
    assert endpoint.connection(2).state is ConnectionState.CLOSED
    with pytest.raises(EndpointError):
        endpoint.connection(2).send_frame(b"\x00" * 4)
    with pytest.raises(EndpointError):
        endpoint.close_connection(404)


# ----------------------------------------------------------------------
# Re-signaling until acknowledged (lost establishment recovery)
# ----------------------------------------------------------------------

def test_lost_establishment_is_repaired_by_resignaling():
    loop = EventLoop()
    a = ChunkEndpoint(loop)
    b = ChunkEndpoint(loop)
    dropped = {"count": 0}

    def lossy_first(frame: bytes) -> None:
        # Drop the very first packet (which carries the SIGNALING chunk).
        if dropped["count"] == 0:
            dropped["count"] += 1
            return
        loop.schedule(0.001, lambda f=frame: b.receive_packet(f))

    a.transmit = lossy_first
    b.transmit = lambda frame: loop.schedule(0.001, lambda f=frame: a.receive_packet(f))

    conn = a.open_connection(ConnectionConfig(connection_id=8, tpdu_units=16))
    payload = make_payload(16)
    conn.send_frame(payload, end_of_connection=True)
    loop.run()
    # The first retransmission re-sent the establishment chunk, so the
    # conversation recovered despite the receiver's initial refusal.
    assert dropped["count"] == 1
    assert b.refused_unknown == 0 or b.connection(8) is not None
    assert b.connection(8).stream_bytes() == payload
    assert conn.finished


# ----------------------------------------------------------------------
# Shared budget and per-connection accounting
# ----------------------------------------------------------------------

def test_budget_admission_refuses_beyond_min_shares():
    endpoint = ChunkEndpoint(
        EventLoop(),
        budget=SharedPlacementBudget(pool_bytes=2048, min_share_bytes=1024),
    )
    for cid in (1, 2):
        sender = ChunkTransportSender(ConnectionConfig(connection_id=cid, tpdu_units=4))
        endpoint.receive_packet(data_packet(sender, make_payload(4, seed=cid)))
        assert endpoint.connection(cid) is not None
    sender = ChunkTransportSender(ConnectionConfig(connection_id=3, tpdu_units=4))
    events = endpoint.receive_packet(data_packet(sender, make_payload(4, seed=3)))
    assert events.established == []
    assert endpoint.connection(3) is None
    assert endpoint.connections_refused == 1
    assert endpoint.refused_evicted > 0  # subsequent data counted as refused


def test_per_connection_touch_accounting_is_one_per_byte():
    endpoint = ChunkEndpoint(EventLoop())
    for cid in (1, 2):
        sender = ChunkTransportSender(ConnectionConfig(connection_id=cid, tpdu_units=16))
        endpoint.receive_packet(data_packet(sender, make_payload(64, seed=cid)))
        connection = endpoint.connection(cid)
        assert connection.touches_per_byte() == 1.0
        assert connection.ledger.touches == {"nic-to-app": 64 * 4}


def test_per_connection_labelled_metrics_are_recorded():
    endpoint = ChunkEndpoint(EventLoop())
    with session() as (registry, _tracer):
        sender = ChunkTransportSender(ConnectionConfig(connection_id=12, tpdu_units=16))
        endpoint.receive_packet(data_packet(sender, make_payload(64)))
        touch = registry.counter("host", "touch_bytes_total{conn=12}").value
        routed = registry.counter("transport", "endpoint.chunks_routed{conn=12}").value
    assert touch == 64 * 4
    assert routed > 0


def test_duplicate_chunks_do_not_double_count_touches():
    endpoint = ChunkEndpoint(EventLoop())
    sender = ChunkTransportSender(ConnectionConfig(connection_id=7, tpdu_units=16))
    frame = data_packet(sender, make_payload(64))
    endpoint.receive_packet(frame)
    endpoint.receive_packet(frame)  # duplicated delivery
    assert endpoint.connection(7).touches_per_byte() == 1.0


# ----------------------------------------------------------------------
# Satellite: unknown-TYPE chunks are counted, not silently dropped
# ----------------------------------------------------------------------

def test_receiver_counts_unknown_type_chunks():
    receiver = ChunkTransportReceiver()
    stray = Chunk(
        type=ChunkType.EXTERNAL_CONTROL, size=1, length=1,
        c=FramingTuple(1, 0, False), t=FramingTuple(0, 0, False),
        x=FramingTuple(0, 0, False), payload=b"\x00\x00\x00\x00",
    )
    with session() as (registry, _tracer):
        events = receiver.receive_chunks([stray, stray])
        counted = registry.counter("transport", "receiver.unknown_type_chunks").value
    assert receiver.unknown_type_chunks == 2
    assert events.verdicts == []
    assert counted == 2


def test_unknown_type_chunk_through_endpoint_does_not_crash():
    endpoint = ChunkEndpoint(EventLoop())
    sender = ChunkTransportSender(ConnectionConfig(connection_id=2, tpdu_units=16))
    endpoint.receive_packet(data_packet(sender, make_payload(16), end=False))
    stray = Chunk(
        type=ChunkType.EXTERNAL_CONTROL, size=1, length=1,
        c=FramingTuple(2, 0, False), t=FramingTuple(0, 0, False),
        x=FramingTuple(0, 0, False), payload=b"\x00\x00\x00\x00",
    )
    endpoint.receive_packet(Packet(chunks=[stray]).encode())
    connection = endpoint.connection(2)
    assert connection.receiver.receiver.unknown_type_chunks == 1


# ----------------------------------------------------------------------
# Tombstone semantics under C.ID churn
# ----------------------------------------------------------------------

def test_churn_refusal_counters_exact_across_reestablish_cycles():
    """refused_evicted vs refused_unknown stays *exact* while C.IDs
    cycle through establish → evict → (forgotten tombstone) →
    re-establish → evict, including the FIFO overflow degradation."""
    endpoint = ChunkEndpoint(EventLoop(), close_linger=0.0)
    endpoint.table.evicted_ids.max_entries = 2

    def one_object(cid: int) -> bytes:
        sender = ChunkTransportSender(
            ConnectionConfig(connection_id=cid, tpdu_units=16)
        )
        return data_packet(sender, make_payload(32))

    for now, cid in enumerate((1, 2, 3, 4), start=1):
        endpoint.receive_packet(one_object(cid))
        assert endpoint.sweep(now=float(now)) == [cid]
    # The FIFO remembers only the two newest tombstones; the two oldest
    # were dropped, and counted.
    assert sorted(endpoint.table.evicted_ids) == [3, 4]
    assert endpoint.table.evicted_ids.dropped == 2

    # Late traffic for a *remembered* C.ID: refused as evicted, exactly
    # one count per chunk (its establishment chunk included).
    late = one_object(4)
    n_late = len(Packet.decode(late).chunks)
    endpoint.receive_packet(late)
    assert endpoint.refused_evicted == n_late
    assert endpoint.refused_unknown == 0

    # Bare data for a *forgotten* C.ID degrades to the unknown count —
    # observably, not silently.
    bare = ChunkTransportSender(ConnectionConfig(connection_id=1, tpdu_units=16))
    frame = data_packet(bare, make_payload(16), signal=False)
    n_bare = len(Packet.decode(frame).chunks)
    endpoint.receive_packet(frame)
    assert endpoint.refused_unknown == n_bare
    assert endpoint.refused_evicted == n_late

    # A forgotten C.ID may legitimately re-establish (the third cycle)...
    events = endpoint.receive_packet(one_object(1))
    assert events.established == [1]
    assert endpoint.sweep(now=10.0) == [1]
    # ...and its post-eviction stragglers count as evicted again.
    again = one_object(1)
    endpoint.receive_packet(again)
    assert endpoint.refused_evicted == n_late + len(Packet.decode(again).chunks)
    assert endpoint.refused_unknown == n_bare
    assert endpoint.table.established_total == 5
    assert endpoint.table.evicted_total == 5
