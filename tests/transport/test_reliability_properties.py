"""Property test: reliable delivery converges under any bounded loss.

Hypothesis drives an adversarial deterministic drop schedule (a boolean
per transmission, cycled); as long as the schedule does not drop
*everything forever*, the sender/receiver pair must converge to a
byte-exact stream with all TPDUs verified — independent of which
packets die, in which order, on which direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packet import Packet
from repro.core.types import ChunkType
from repro.netsim.events import EventLoop
from repro.transport.connection import ConnectionConfig
from repro.transport.reliability import ReliableReceiver, ReliableSender

from tests.conftest import make_payload


@dataclass
class ScriptedLink:
    """Drops transmissions per a cyclic boolean schedule.

    To guarantee liveness the schedule is only consulted for the first
    `len(schedule) * repeat_cap` transmissions; afterwards everything is
    delivered (models loss that is heavy but not total).
    """

    loop: EventLoop
    deliver: "callable"
    schedule: tuple[bool, ...]
    delay: float = 0.005
    repeat_cap: int = 4
    _count: int = field(default=0, init=False)

    def send(self, frame: bytes) -> None:
        index = self._count
        self._count += 1
        if (
            self.schedule
            and index < len(self.schedule) * self.repeat_cap
            and self.schedule[index % len(self.schedule)]
        ):
            return  # dropped
        self.loop.schedule(self.delay, lambda: self.deliver(frame))


@given(
    fwd_drops=st.lists(st.booleans(), min_size=1, max_size=20),
    rev_drops=st.lists(st.booleans(), min_size=1, max_size=20),
    frames=st.integers(1, 5),
)
@settings(max_examples=40, deadline=None)
def test_converges_under_any_bounded_drop_schedule(fwd_drops, rev_drops, frames):
    loop = EventLoop()
    box = {}
    fwd = ScriptedLink(loop, lambda f: box["rx"].receive_packet(f), tuple(fwd_drops))
    # Worst case needs one retry per scheduled drop on BOTH directions
    # (every data retransmission may burn one dropped ACK), so the retry
    # budget must exceed both caps combined: 2 * 20 * repeat_cap(4).
    sender = ReliableSender(
        loop, fwd.send,
        ConnectionConfig(connection_id=1, tpdu_units=16),
        rto=0.05, max_retries=200,
    )

    def deliver_acks(frame):
        for chunk in Packet.decode(frame).chunks:
            if chunk.type is ChunkType.ACK:
                sender.handle_ack_chunk(chunk)

    rev = ScriptedLink(loop, deliver_acks, tuple(rev_drops))
    box["rx"] = ReliableReceiver(transmit=rev.send)

    payload = b""
    for index in range(frames):
        data = make_payload(16, seed=index)
        payload += data
        sender.send_frame(
            data, frame_id=index, end_of_connection=index == frames - 1
        )
    loop.run()

    assert sender.gave_up == []
    assert sender.finished
    assert box["rx"].receiver.stream_bytes() == payload
    assert box["rx"].receiver.corrupted_tpdus() == 0


@given(
    fwd_drops=st.lists(st.booleans(), min_size=1, max_size=16),
)
@settings(max_examples=20, deadline=None)
def test_total_forward_loss_gives_up_cleanly(fwd_drops):
    """With a dead forward path the sender must give up, not hang."""
    loop = EventLoop()
    fwd = ScriptedLink(
        loop, lambda f: None, tuple(True for _ in fwd_drops), repeat_cap=10**9
    )
    sender = ReliableSender(
        loop, fwd.send,
        ConnectionConfig(connection_id=1, tpdu_units=16),
        rto=0.01, max_retries=4,
    )
    sender.send_frame(make_payload(16), end_of_connection=True)
    loop.run()
    assert sender.gave_up
    assert sender.finished
