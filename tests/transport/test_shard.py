"""Unit tests for the sharded endpoint composition.

End-to-end equivalence with the unsharded endpoint lives in
``tests/properties/test_shard_equivalence.py`` and the scale acceptance
in ``tests/integration/test_sharded_scale.py``; this file pins the
composition mechanics — ownership routing, ingress fan-out, the
round-robin cross-shard packer, bound division, and reclamation.
"""

from __future__ import annotations

import pytest

from repro.core.bounded import BoundedSet
from repro.core.errors import EndpointError
from repro.netsim.shardloop import ShardedLoop
from repro.transport.connection import ConnectionConfig
from repro.transport.shard import ShardedEndpoint, shard_for

MTU = 600


def make_pair(shards: int = 4, **kwargs):
    """A sharded endpoint pair wired back-to-back (lossless, no delay)."""
    loop = ShardedLoop()
    sender = ShardedEndpoint(loop, mtu=MTU, shards=shards, **kwargs)
    receiver = ShardedEndpoint(loop, mtu=MTU, shards=shards, **kwargs)
    sender.transmit = receiver.receive_packet
    receiver.transmit = sender.receive_packet
    return loop, sender, receiver


def payload_for(cid: int, nbytes: int = 256) -> bytes:
    return bytes((cid * 13 + i) % 256 for i in range(nbytes))


class TestShardFor:
    def test_rejects_empty_shard_sets(self):
        for shards in (0, -1):
            with pytest.raises(ValueError):
                shard_for(7, shards)

    def test_endpoint_rejects_empty_shard_sets(self):
        with pytest.raises(ValueError):
            ShardedEndpoint(ShardedLoop(), shards=0)


class TestOwnershipRouting:
    def test_open_connection_lands_on_the_owning_shard(self):
        loop, sender, _ = make_pair(shards=4)
        for cid in (1, 2, 3, 1000):
            sender.open_connection(ConnectionConfig(connection_id=cid))
        for cid in (1, 2, 3, 1000):
            owner = sender.shard_of(cid)
            assert owner == shard_for(cid, 4)
            for shard in sender.shards:
                present = shard.endpoint.connection(cid) is not None
                assert present == (shard.index == owner)
            assert sender.connection(cid) is not None
        assert sender.connection(424242) is None

    def test_adding_a_shard_adds_a_member_loop(self):
        loop = ShardedLoop()
        assert len(loop.members) == 1
        ShardedEndpoint(loop, shards=4)
        # member 0 (primary) + one per shard
        assert len(loop.members) == 5

    def test_garbage_frame_is_a_counted_decode_failure(self):
        _, _, receiver = make_pair(shards=2)
        events = receiver.receive_packet(b"\x00\x01not a packet")
        assert events.decode_failed
        assert receiver.router.decode_failures == 1
        assert receiver.stats()["decode_failures"] == 1


class TestBoundDivision:
    def test_tombstone_capacity_divides_across_shards(self):
        loop = ShardedLoop()
        endpoint = ShardedEndpoint(loop, shards=8, tombstone_capacity=100)
        caps = [
            shard.endpoint.table.evicted_ids.max_entries
            for shard in endpoint.shards
        ]
        assert caps == [13] * 8  # ceil(100 / 8)
        # Total shard tombstone memory stays within rounding of the
        # endpoint-wide bound.
        assert sum(caps) <= 100 + 8

    def test_default_tombstone_bound_also_divides(self):
        loop = ShardedLoop()
        endpoint = ShardedEndpoint(loop, shards=4)
        expected = -(-BoundedSet.max_entries // 4)
        for shard in endpoint.shards:
            assert shard.endpoint.table.evicted_ids.max_entries == expected

    def test_max_connections_divides_across_shards(self):
        loop = ShardedLoop()
        endpoint = ShardedEndpoint(loop, shards=4, max_connections=10)
        for shard in endpoint.shards:
            assert shard.endpoint.max_connections == 3  # ceil(10 / 4)


class TestRoundRobinPacker:
    def test_drain_interleaves_one_chunk_per_shard_per_cycle(self):
        loop = ShardedLoop()
        endpoint = ShardedEndpoint(loop, shards=3)
        # The drain never inspects the queued objects, so sentinels do.
        endpoint.shards[0].egress.extend(["a1", "a2", "a3"])
        endpoint.shards[1].egress.extend(["b1"])
        endpoint.shards[2].egress.extend(["c1", "c2"])
        assert endpoint._drain_round_robin() == [
            "a1", "b1", "c1", "a2", "c2", "a3",
        ]

    def test_starting_shard_rotates_between_flushes(self):
        loop = ShardedLoop()
        endpoint = ShardedEndpoint(loop, shards=3)
        endpoint.shards[0].egress.append("a")
        endpoint.shards[1].egress.append("b")
        assert endpoint._drain_round_robin() == ["a", "b"]
        endpoint.shards[0].egress.append("a")
        endpoint.shards[1].egress.append("b")
        # Second flush starts at shard 1.
        assert endpoint._drain_round_robin() == ["b", "a"]

    def test_flush_without_transmit_is_an_error(self):
        loop, sender, _ = make_pair(shards=2)
        sender.transmit = None
        connection = sender.open_connection(ConnectionConfig(connection_id=1))
        connection.send_frame(payload_for(1), end_of_connection=True)
        with pytest.raises(EndpointError):
            loop.run()


class TestEndToEnd:
    def test_cross_shard_egress_and_ingress_fanout(self):
        # C.IDs 1..4 span three shards at shards=4 ({2, 0, 2, 1}), so
        # concurrent sends must produce mixed envelopes on egress and
        # fan-out on ingress.
        loop, sender, receiver = make_pair(shards=4)
        cids = (1, 2, 3, 4)
        for cid in cids:
            connection = sender.open_connection(ConnectionConfig(connection_id=cid))
            connection.send_frame(payload_for(cid), end_of_connection=True)
        loop.run()
        for cid in cids:
            received = receiver.connection(cid)
            assert received is not None
            assert received.stream_bytes()[:256] == payload_for(cid)
        stats = sender.stats()
        assert stats["cross_shard_packets"] > 0
        assert stats["mixed_packets"] >= stats["cross_shard_packets"]
        assert receiver.router.fanout_packets > 0
        assert receiver.stats()["fanout_packets"] == receiver.router.fanout_packets

    def test_sweep_covers_every_shard_and_reclaims_the_pool(self):
        loop, sender, receiver = make_pair(shards=4)
        cids = (1, 2, 3, 4)
        for cid in cids:
            connection = sender.open_connection(ConnectionConfig(connection_id=cid))
            connection.send_frame(payload_for(cid), end_of_connection=True)
        loop.run()
        assert receiver.pool.lent_total > 0
        evicted = receiver.sweep(now=loop.now + 3600.0)
        assert set(evicted) == set(cids)
        assert receiver.pool.lent_total == 0
        sender.sweep(now=loop.now + 3600.0)
        assert sender.pool.lent_total == 0

    def test_stats_surface_router_packer_and_pool_totals(self):
        loop, sender, receiver = make_pair(shards=2)
        connection = sender.open_connection(ConnectionConfig(connection_id=1))
        connection.send_frame(payload_for(1), end_of_connection=True)
        loop.run()
        for stats in (sender.stats(), receiver.stats()):
            for key in (
                "packets_received", "decode_failures", "fanout_packets",
                "packets_sent", "mixed_packets", "cross_shard_packets",
                "pool_lent", "pool_peak_lent", "pool_refusals",
            ):
                assert key in stats
        assert sender.stats()["packets_sent"] > 0
        # Placement borrowing happens on the receiving side.
        assert receiver.stats()["pool_peak_lent"] > 0
