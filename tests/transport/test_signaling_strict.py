"""Strict establishment parsing: reserved bytes and unknown flag bits.

A corrupted establishment chunk would install wrong per-connection
SIZE/TPDU parameters and mis-place every subsequent chunk of the
conversation, so :func:`parse_signaling_chunk` must fail loudly on any
payload it does not fully understand.
"""

from __future__ import annotations

import struct

import pytest

from repro.core.errors import SignalingError
from repro.core.chunk import Chunk
from repro.core.tuples import FramingTuple
from repro.core.types import ChunkType
from repro.transport.connection import (
    ConnectionConfig,
    build_signaling_chunk,
    parse_signaling_chunk,
)


def signaling_chunk_with_payload(payload: bytes, connection_id: int = 5) -> Chunk:
    pad = (-len(payload)) % 4
    payload += b"\x00" * pad
    return Chunk(
        type=ChunkType.SIGNALING,
        size=1,
        length=len(payload) // 4,
        c=FramingTuple(connection_id, 0, False),
        t=FramingTuple(0, 0, False),
        x=FramingTuple(0, 0, False),
        payload=payload,
    )


def raw_signaling(
    connection_id: int = 5,
    unit_words: int = 1,
    tpdu_units: int = 256,
    flags: int = 0,
    reserved1: int = 0,
    reserved2: int = 0,
) -> Chunk:
    payload = struct.pack(
        ">IHHHBB", connection_id, unit_words, tpdu_units, flags, reserved1, reserved2
    )
    return signaling_chunk_with_payload(payload, connection_id)


def test_well_formed_signaling_parses():
    config = ConnectionConfig(
        connection_id=77, unit_words=2, tpdu_units=128,
        implicit_t_id=True, regenerate_sns=True,
    )
    assert parse_signaling_chunk(build_signaling_chunk(config)) == config


@pytest.mark.parametrize("reserved", [(1, 0), (0, 1), (0xFF, 0xFF)])
def test_nonzero_reserved_bytes_rejected(reserved):
    chunk = raw_signaling(reserved1=reserved[0], reserved2=reserved[1])
    with pytest.raises(SignalingError, match="reserved"):
        parse_signaling_chunk(chunk)


@pytest.mark.parametrize("flags", [0x0004, 0x8000, 0x0007, 0xFFFC])
def test_unknown_flag_bits_rejected(flags):
    chunk = raw_signaling(flags=flags)
    with pytest.raises(SignalingError, match="flag"):
        parse_signaling_chunk(chunk)


def test_known_flags_still_accepted():
    config = parse_signaling_chunk(raw_signaling(flags=0x0003))
    assert config.implicit_t_id and config.regenerate_sns


def test_short_payload_rejected():
    chunk = signaling_chunk_with_payload(b"\x00\x00\x00\x00")
    with pytest.raises(SignalingError, match="short"):
        parse_signaling_chunk(chunk)


def test_wrong_type_rejected():
    data = Chunk(
        type=ChunkType.DATA, size=1, length=1,
        c=FramingTuple(1, 0, False), t=FramingTuple(0, 0, False),
        x=FramingTuple(0, 0, False), payload=b"\x00\x00\x00\x00",
    )
    with pytest.raises(SignalingError, match="not a signaling chunk"):
        parse_signaling_chunk(data)


def test_receiver_counts_rejections_and_keeps_config_unset():
    from repro.transport.receiver import ChunkTransportReceiver

    receiver = ChunkTransportReceiver()
    receiver.receive_chunks([raw_signaling(reserved1=9)])
    assert receiver.signaling_rejected == 1
    assert receiver.config is None
    receiver.receive_chunks([build_signaling_chunk(ConnectionConfig(connection_id=5))])
    assert receiver.config is not None
