"""Unit tests for the chunk transport: connection, sender, receiver."""

import random

import pytest

from repro.core.chunk import Chunk
from repro.core.errors import ChunkError
from repro.core.packet import pack_chunks
from repro.core.types import ChunkType
from repro.transport.connection import (
    ConnectionConfig,
    build_signaling_chunk,
    parse_signaling_chunk,
)
from repro.transport.receiver import ChunkTransportReceiver
from repro.transport.sender import ChunkTransportSender

from tests.conftest import make_payload


class TestConnectionConfig:
    def test_signaling_roundtrip(self):
        config = ConnectionConfig(
            connection_id=77, unit_words=2, tpdu_units=128,
            implicit_t_id=True, regenerate_sns=True,
        )
        chunk = build_signaling_chunk(config)
        assert chunk.type is ChunkType.SIGNALING
        assert parse_signaling_chunk(chunk) == config

    def test_defaults_roundtrip(self):
        config = ConnectionConfig(connection_id=1)
        assert parse_signaling_chunk(build_signaling_chunk(config)) == config

    def test_parse_rejects_data_chunk(self):
        from repro.core.errors import SignalingError
        from tests.conftest import make_chunk

        with pytest.raises(SignalingError):
            parse_signaling_chunk(make_chunk())

    def test_compression_profile_matches(self):
        config = ConnectionConfig(connection_id=5, unit_words=2, implicit_t_id=True)
        profile = config.compression_profile()
        assert profile.connection_id == 5
        assert profile.size_by_type[ChunkType.DATA] == 2
        assert profile.implicit_t_id

    def test_byte_accounting(self):
        config = ConnectionConfig(connection_id=1, unit_words=2, tpdu_units=10)
        assert config.unit_bytes == 8
        assert config.tpdu_bytes == 80


class TestSender:
    def _sender(self, tpdu_units=8, **kwargs):
        return ChunkTransportSender(
            ConnectionConfig(connection_id=3, tpdu_units=tpdu_units, **kwargs)
        )

    def test_frame_produces_data_chunks(self):
        sender = self._sender()
        chunks = sender.send_frame(make_payload(4))
        assert all(c.type is ChunkType.DATA for c in chunks)

    def test_ed_chunk_per_completed_tpdu(self):
        sender = self._sender(tpdu_units=8)
        chunks = sender.send_frame(make_payload(20))
        ed_chunks = [c for c in chunks if c.type is ChunkType.ERROR_DETECTION]
        assert len(ed_chunks) == 2  # units 0..7 and 8..15 completed
        assert sender.tpdus_sent == 2

    def test_ed_follows_its_tpdus_final_data(self):
        sender = self._sender(tpdu_units=8)
        chunks = sender.send_frame(make_payload(8))
        assert chunks[-1].type is ChunkType.ERROR_DETECTION
        assert chunks[-2].t.st
        assert chunks[-1].t.ident == chunks[-2].t.ident

    def test_close_sets_c_st_and_emits_ed(self):
        sender = self._sender(tpdu_units=100)
        chunks = sender.close(make_payload(5))
        data = [c for c in chunks if c.is_data]
        assert data[-1].c.st
        assert chunks[-1].type is ChunkType.ERROR_DETECTION

    def test_close_requires_payload(self):
        with pytest.raises(ChunkError):
            self._sender().close()

    def test_retransmit_reuses_identifiers(self):
        sender = self._sender(tpdu_units=8)
        original = sender.send_frame(make_payload(8))
        again = sender.retransmit(0)
        assert again == original

    def test_retransmit_unknown_tpdu(self):
        with pytest.raises(ChunkError):
            self._sender().retransmit(42)

    def test_acknowledge_trims_history(self):
        sender = self._sender(tpdu_units=4)
        sender.send_frame(make_payload(8))
        assert sender.outstanding_tpdus() == [0, 1]
        sender.acknowledge(0)
        assert sender.outstanding_tpdus() == [1]
        with pytest.raises(ChunkError):
            sender.retransmit(0)

    def test_history_limit(self):
        sender = ChunkTransportSender(
            ConnectionConfig(connection_id=3, tpdu_units=1), history_limit=3
        )
        sender.send_frame(make_payload(10))
        assert len(sender.outstanding_tpdus()) == 3

    def test_implicit_tid_allocation(self):
        sender = self._sender(tpdu_units=8, implicit_t_id=True)
        chunks = [c for c in sender.send_frame(make_payload(20)) if c.is_data]
        for chunk in chunks:
            assert chunk.t.ident == chunk.c.sn - chunk.t.sn


class TestReceiver:
    def _pipe(self, mtu=1500, shuffle_seed=None, tpdu_units=8, frames=3):
        sender = ChunkTransportSender(
            ConnectionConfig(connection_id=3, tpdu_units=tpdu_units)
        )
        receiver = ChunkTransportReceiver()
        chunks = [sender.establishment_chunk()]
        payload = b""
        for i in range(frames - 1):
            data = make_payload(tpdu_units, seed=i)
            payload += data
            chunks += sender.send_frame(data, frame_id=i)
        tail = make_payload(tpdu_units, seed=99)
        payload += tail
        chunks += sender.close(tail, frame_id=frames - 1)
        packets = pack_chunks(chunks, mtu)
        if shuffle_seed is not None:
            random.Random(shuffle_seed).shuffle(packets)
        return sender, receiver, packets, payload

    def test_in_order_delivery(self):
        _, receiver, packets, payload = self._pipe()
        for packet in packets:
            receiver.receive_packet(packet.encode())
        assert receiver.stream_bytes() == payload
        assert receiver.closed
        assert receiver.corrupted_tpdus() == 0

    def test_shuffled_delivery(self):
        _, receiver, packets, payload = self._pipe(mtu=128, shuffle_seed=8)
        for packet in packets:
            receiver.receive_packet(packet.encode())
        assert receiver.stream_bytes() == payload
        assert receiver.pending_tpdus() == []
        assert receiver.verified_tpdus() == 3

    def test_signaling_establishes_config(self):
        _, receiver, packets, _ = self._pipe()
        for packet in packets:
            receiver.receive_packet(packet.encode())
        assert receiver.config is not None
        assert receiver.config.connection_id == 3

    def test_frame_completion_events(self):
        _, receiver, packets, _ = self._pipe(frames=3)
        completed = []
        for packet in packets:
            events = receiver.receive_packet(packet.encode())
            completed += events.completed_frames
        assert sorted(completed) == [0, 1, 2]

    def test_garbage_packet_flagged(self):
        receiver = ChunkTransportReceiver()
        events = receiver.receive_packet(b"\x00\x01garbage")
        assert events.decode_failed

    def test_duplicate_packets_harmless(self):
        _, receiver, packets, payload = self._pipe(mtu=128)
        for packet in packets + packets:
            receiver.receive_packet(packet.encode())
        assert receiver.stream_bytes() == payload
        assert receiver.duplicate_chunks > 0
        assert receiver.corrupted_tpdus() == 0

    def test_partial_loss_leaves_pending_nack_list(self):
        _, receiver, packets, _ = self._pipe(mtu=128)
        # Drop a middle packet so at least one TPDU is partially heard.
        for packet in packets[: len(packets) // 2] + packets[len(packets) // 2 + 1 :]:
            receiver.receive_packet(packet.encode())
        assert receiver.pending_tpdus() or receiver.stream.missing()


class TestRetransmissionLoop:
    def test_loss_recovery_end_to_end(self):
        """Lossy delivery + ACK-driven retransmission converges, with
        retransmitted chunks reusing their original identifiers.  The
        sender retransmits every unacknowledged TPDU each round (a TPDU
        whose every packet was lost is invisible to the receiver, so
        recovery must be sender-driven)."""
        sender = ChunkTransportSender(ConnectionConfig(connection_id=4, tpdu_units=16))
        receiver = ChunkTransportReceiver()
        payload = b""
        chunks = []
        for i in range(6):
            data = make_payload(16, seed=i)
            payload += data
            chunks += sender.send_frame(data, frame_id=i)
        rng = random.Random(13)

        def lossy_deliver(wire_chunks):
            for packet in pack_chunks(wire_chunks, 256):
                if rng.random() > 0.35:  # 35% loss
                    events = receiver.receive_packet(packet.encode())
                    for verdict in events.verdicts:
                        if verdict.ok:
                            sender.acknowledge(verdict.t_id)  # the ACK path

        lossy_deliver(chunks)
        rounds = 0
        while sender.outstanding_tpdus() and rounds < 50:
            rounds += 1
            for t_id in list(sender.outstanding_tpdus()):
                lossy_deliver(sender.retransmit(t_id))
        assert sender.outstanding_tpdus() == []
        assert receiver.stream_bytes() == payload
        assert receiver.verified_tpdus() >= 6
        assert receiver.corrupted_tpdus() == 0


class TestPlacementGuards:
    def test_corrupted_c_sn_rejected_not_allocated(self):
        """A chunk whose C.SN implies a petabyte offset must be refused
        placement (and the TPDU fails verification) — found by fuzzing."""
        from dataclasses import replace as _replace

        sender = ChunkTransportSender(ConnectionConfig(connection_id=3, tpdu_units=8))
        receiver = ChunkTransportReceiver()
        chunks = sender.send_frame(make_payload(8))
        bad = chunks[0].with_tuples(c=_replace(chunks[0].c, sn=2**60))
        for packet in pack_chunks([bad] + chunks[1:], 1500):
            receiver.receive_packet(packet.encode())
        assert receiver.rejected_placements >= 1
        # Note: with the whole TPDU in ONE chunk, the (C.SN - T.SN)
        # consistency check has nothing to disagree with, so the TPDU
        # itself may verify — but its bytes land nowhere, and the
        # connection-level stream shows the hole (caught by the next
        # layer of virtual reassembly, exactly the paper's layering).
        assert receiver.stream.bytes_placed < 8 * 4
