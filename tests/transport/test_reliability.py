"""Unit tests for ACK chunks, reliable delivery, and adaptive TPDUs."""

import random

import pytest

from repro.core.errors import ChunkError
from repro.core.packet import Packet, pack_chunks
from repro.core.types import ChunkType
from repro.netsim.events import EventLoop
from repro.netsim.link import Link
from repro.netsim.rng import substream
from repro.transport.acks import (
    MAX_ACKS_PER_CHUNK,
    build_ack_chunk,
    parse_ack_chunk,
    piggyback,
)
from repro.transport.connection import ConnectionConfig
from repro.transport.reliability import (
    AdaptiveTpduPolicy,
    ReliableReceiver,
    ReliableSender,
)
from repro.transport.sender import ChunkTransportSender

from tests.conftest import make_payload


class TestAckChunks:
    def test_roundtrip(self):
        chunk = build_ack_chunk(7, [1, 2, 99])
        assert chunk.type is ChunkType.ACK
        assert parse_ack_chunk(chunk) == [1, 2, 99]
        assert chunk.c.ident == 7

    def test_empty_rejected(self):
        with pytest.raises(ChunkError):
            build_ack_chunk(7, [])

    def test_limit_enforced(self):
        with pytest.raises(ChunkError):
            build_ack_chunk(7, list(range(MAX_ACKS_PER_CHUNK + 1)))

    def test_parse_rejects_data(self):
        from tests.conftest import make_chunk

        with pytest.raises(ChunkError):
            parse_ack_chunk(make_chunk())

    def test_survives_wire_roundtrip(self):
        from repro.core.codec import decode_chunk, encode_chunk

        chunk = build_ack_chunk(3, [10, 20])
        decoded, _ = decode_chunk(encode_chunk(chunk))
        assert parse_ack_chunk(decoded) == [10, 20]

    def test_ack_chunks_are_indivisible(self):
        from repro.core.errors import FragmentationError
        from repro.core.fragment import split

        with pytest.raises(FragmentationError):
            split(build_ack_chunk(3, [1, 2]), 1)


class TestPiggyback:
    def test_acks_share_packets_with_data(self):
        sender = ChunkTransportSender(ConnectionConfig(connection_id=4, tpdu_units=8))
        data = sender.send_frame(make_payload(8))
        acks = [build_ack_chunk(4, [5, 6])]
        packets = piggyback(data, acks, mtu=1500)
        assert len(packets) == 1  # everything rode together
        types = {c.type for c in packets[0].chunks}
        assert ChunkType.ACK in types and ChunkType.DATA in types

    def test_no_special_format(self):
        """A piggybacked packet decodes with the ordinary packet parser."""
        sender = ChunkTransportSender(ConnectionConfig(connection_id=4, tpdu_units=8))
        data = sender.send_frame(make_payload(8))
        packets = piggyback(data, [build_ack_chunk(4, [1])], mtu=1500)
        decoded = Packet.decode(packets[0].encode())
        assert len(decoded.chunks) == len(packets[0].chunks)


class TestAdaptivePolicy:
    def test_loss_halves(self):
        policy = AdaptiveTpduPolicy(min_units=16, current_units=256)
        assert policy.on_loss() == 128
        assert policy.on_loss() == 64

    def test_floor(self):
        policy = AdaptiveTpduPolicy(min_units=32, current_units=40)
        assert policy.on_loss() == 32
        assert policy.on_loss() == 32

    def test_growth_needs_streak(self):
        policy = AdaptiveTpduPolicy(grow_after=3, grow_step=10, current_units=100)
        assert policy.on_first_try_success() == 100
        assert policy.on_first_try_success() == 100
        assert policy.on_first_try_success() == 110

    def test_loss_resets_streak(self):
        policy = AdaptiveTpduPolicy(grow_after=2, grow_step=10, current_units=100)
        policy.on_first_try_success()
        policy.on_loss()
        assert policy.on_first_try_success() == 50
        assert policy.on_first_try_success() == 60

    def test_ceiling(self):
        policy = AdaptiveTpduPolicy(
            grow_after=1, grow_step=1000, max_units=128, current_units=100
        )
        assert policy.on_first_try_success() == 128


def _wire_pair(loop, loss_fwd=0.0, loss_rev=0.0, seed=1, **sender_kwargs):
    """A ReliableSender and ReliableReceiver joined by lossy links."""
    receiver_box = {}

    fwd = Link(
        loop,
        deliver=lambda f: receiver_box["rx"].receive_packet(f),
        loss_rate=loss_fwd,
        rng=substream(seed, "fwd"),
        mtu=1500,
    )
    sender = ReliableSender(
        loop, fwd.send, ConnectionConfig(connection_id=3, tpdu_units=64),
        **sender_kwargs,
    )

    def deliver_acks(frame):
        for chunk in Packet.decode(frame).chunks:
            if chunk.type is ChunkType.ACK:
                sender.handle_ack_chunk(chunk)

    rev = Link(
        loop, deliver=deliver_acks, loss_rate=loss_rev,
        rng=substream(seed, "rev"), mtu=1500,
    )
    receiver_box["rx"] = ReliableReceiver(transmit=rev.send)
    return sender, receiver_box["rx"]


class TestReliableDelivery:
    def _transfer(self, loss_fwd, loss_rev, frames=8, seed=1, **kwargs):
        loop = EventLoop()
        sender, receiver = _wire_pair(
            loop, loss_fwd=loss_fwd, loss_rev=loss_rev, seed=seed, **kwargs
        )
        rng = random.Random(9)
        payload = b""
        for i in range(frames):
            data = bytes(rng.randrange(256) for _ in range(512))
            payload += data
            sender.send_frame(data, frame_id=i)
        loop.run()
        return sender, receiver, payload

    def test_clean_path_no_retransmissions(self):
        sender, receiver, payload = self._transfer(0.0, 0.0)
        assert sender.retransmissions == 0
        assert sender.finished
        assert receiver.receiver.stream_bytes() == payload

    def test_forward_loss_recovered(self):
        sender, receiver, payload = self._transfer(0.3, 0.0)
        assert sender.retransmissions > 0
        assert sender.finished and not sender.gave_up
        assert receiver.receiver.stream_bytes() == payload
        assert receiver.receiver.corrupted_tpdus() == 0

    def test_ack_loss_recovered_by_reack(self):
        sender, receiver, payload = self._transfer(0.0, 0.4)
        assert sender.finished and not sender.gave_up
        assert receiver.receiver.stream_bytes() == payload

    def test_bidirectional_loss(self):
        sender, receiver, payload = self._transfer(0.25, 0.25, seed=4)
        assert sender.finished and not sender.gave_up
        assert receiver.receiver.stream_bytes() == payload

    def test_gives_up_on_dead_path(self):
        loop = EventLoop()
        sender, receiver = _wire_pair(loop, loss_fwd=1.0, seed=2, max_retries=3)
        sender.send_frame(make_payload(64))
        loop.run()
        assert sender.gave_up
        assert sender.finished  # nothing left outstanding

    def test_adaptive_policy_shrinks_under_loss(self):
        sender, receiver, payload = self._transfer(
            0.35, 0.0, seed=3,
            policy=AdaptiveTpduPolicy(min_units=8, max_units=256, current_units=64),
        )
        assert sender.finished
        assert receiver.receiver.stream_bytes() == payload
        assert sender.sender.tpdu_units < 64

    def test_adaptive_policy_grows_on_clean_path(self):
        sender, receiver, payload = self._transfer(
            0.0, 0.0, frames=30, seed=3,
            policy=AdaptiveTpduPolicy(
                min_units=8, max_units=256, current_units=64,
                grow_after=4, grow_step=16,
            ),
        )
        assert sender.sender.tpdu_units > 64

    def test_retransmissions_reuse_identifiers(self):
        """The receiver's duplicate counters prove retransmitted chunks
        carried original labels (otherwise they'd be fresh TPDUs)."""
        sender, receiver, payload = self._transfer(0.3, 0.3, seed=6)
        assert receiver.receiver.stream_bytes() == payload
        # Every verified TPDU must be one the sender originally created.
        assert receiver.receiver.verified_tpdus() == sender.sender.tpdus_sent
