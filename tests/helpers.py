"""Shared deterministic data builders for the test suite.

Every generator here is a pure function of its arguments: the same
call always yields the same bytes, on any machine, so failures replay
exactly.  Import from here instead of redefining per-module
``_payload`` helpers (this module deduplicated three identical copies).
"""

from __future__ import annotations

import random

from repro.core.chunk import Chunk
from repro.core.tuples import FramingTuple
from repro.core.types import WORD_BYTES, ChunkType

__all__ = ["deterministic_bytes", "make_payload", "make_chunk"]


def deterministic_bytes(n: int, seed: int = 0) -> bytes:
    """*n* pseudo-random bytes, a pure function of *seed*.

    Seeds are streams: ``deterministic_bytes(100, s)`` is a prefix of
    ``deterministic_bytes(1000, s)``.
    """
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(n))


def make_payload(units: int, size: int = 1, seed: int = 1) -> bytes:
    """Deterministic payload of *units* atomic units of *size* words."""
    return deterministic_bytes(units * size * WORD_BYTES, seed)


def make_chunk(
    units: int = 8,
    size: int = 1,
    c_id: int = 1,
    c_sn: int = 0,
    c_st: bool = False,
    t_id: int = 10,
    t_sn: int = 0,
    t_st: bool = False,
    x_id: int = 100,
    x_sn: int = 0,
    x_st: bool = False,
    seed: int = 1,
    payload: bytes | None = None,
) -> Chunk:
    """A DATA chunk with sensible defaults for tests."""
    return Chunk(
        type=ChunkType.DATA,
        size=size,
        length=units,
        c=FramingTuple(c_id, c_sn, c_st),
        t=FramingTuple(t_id, t_sn, t_st),
        x=FramingTuple(x_id, x_sn, x_st),
        payload=payload if payload is not None else make_payload(units, size, seed),
    )
