"""Unit tests for chunk-aware routers (Figure 4 in motion)."""

from repro.core.packet import Packet, pack_chunks
from repro.core.reassemble import coalesce
from repro.netsim.events import EventLoop
from repro.netsim.router import ChunkRouter

from tests.conftest import make_chunk


def _receive_all(frames):
    chunks = []
    for frame in frames:
        chunks.extend(Packet.decode(frame).chunks)
    return chunks


def _run_router(mode, in_packets, out_mtu, batch_window=0.0):
    loop = EventLoop()
    frames = []
    router = ChunkRouter(
        loop, frames.append, out_mtu=out_mtu, mode=mode, batch_window=batch_window
    )
    for packet in in_packets:
        router.receive(packet.encode())
    loop.run()
    router.flush_now()
    loop.run()
    return router, frames


class TestLargeToSmall:
    def test_splits_for_smaller_mtu(self):
        chunk = make_chunk(units=100, t_st=True)
        router, frames = _run_router("repack", pack_chunks([chunk], 8192), 256)
        assert len(frames) > 1
        assert all(len(f) <= 256 for f in frames)
        assert coalesce(_receive_all(frames)) == [chunk]

    def test_split_counter(self):
        chunk = make_chunk(units=100)
        router, _ = _run_router("repack", pack_chunks([chunk], 8192), 256)
        assert router.stats.chunks_split > 0


class TestSmallToLarge:
    def _small_packets(self):
        chunk = make_chunk(units=30, t_st=True)
        packets = pack_chunks([chunk], 100)
        assert len(packets) > 1  # genuinely fragmented small packets
        return chunk, packets

    def test_one_per_packet_mode(self):
        chunk, small = self._small_packets()
        router, frames = _run_router("one-per-packet", small, 8192, batch_window=0.01)
        received = _receive_all(frames)
        assert len(frames) == len(received)
        assert coalesce(received) == [chunk]

    def test_repack_mode_combines(self):
        chunk, small = self._small_packets()
        router, frames = _run_router("repack", small, 8192, batch_window=0.01)
        assert len(frames) < len(small)
        assert coalesce(_receive_all(frames)) == [chunk]

    def test_reassemble_mode_merges_headers(self):
        chunk, small = self._small_packets()
        router, frames = _run_router("reassemble", small, 8192, batch_window=0.01)
        received = _receive_all(frames)
        assert received == [chunk]  # single merged chunk
        assert router.stats.chunks_merged > 0

    def test_reassemble_has_fewest_bytes(self):
        _, small = self._small_packets()
        results = {}
        for mode in ("one-per-packet", "repack", "reassemble"):
            _, frames = _run_router(mode, small, 8192, batch_window=0.01)
            results[mode] = sum(len(f) for f in frames)
        assert results["reassemble"] <= results["repack"] < results["one-per-packet"]


class TestRouterBehaviour:
    def test_transparent_to_receiver(self):
        """Receivers see well-formed chunks whatever the router did."""
        chunk = make_chunk(units=64, t_st=True, x_st=True)
        for mode in ("one-per-packet", "repack", "reassemble"):
            _, frames = _run_router(mode, pack_chunks([chunk], 2048), 300)
            assert coalesce(_receive_all(frames)) == [chunk]

    def test_garbage_frame_dropped(self):
        loop = EventLoop()
        frames = []
        router = ChunkRouter(loop, frames.append, out_mtu=1500)
        router.receive(b"not a packet at all")
        loop.run()
        assert frames == []
        assert router.stats.decode_failures == 1

    def test_stats_accounting(self):
        chunk = make_chunk(units=10)
        router, frames = _run_router("repack", pack_chunks([chunk], 1500), 1500)
        assert router.stats.frames_in == 1
        assert router.stats.frames_out == len(frames)
        assert router.stats.chunks_in == 1

    def test_batch_window_flushes_on_budget(self):
        """Enough arriving chunks to fill the out MTU flush immediately,
        without waiting for the timer."""
        chunk = make_chunk(units=120, t_st=True)
        small = pack_chunks([chunk], 100)
        loop = EventLoop()
        frames = []
        router = ChunkRouter(
            loop, frames.append, out_mtu=500, mode="repack", batch_window=10.0
        )
        for packet in small:
            router.receive(packet.encode())
        loop.run(until=1.0)  # well before the 10 s timer
        assert frames  # budget-triggered flush happened
