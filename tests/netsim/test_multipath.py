"""Unit tests for multipath striping: skew must cause reorder."""

from repro.netsim.events import EventLoop
from repro.netsim.multipath import MultipathChannel, aurora_stripe
from repro.netsim.link import Link
from repro.netsim.trace import ReceiverTrace


def _send_indexed(channel, count, size=1000):
    for index in range(count):
        channel.send(index.to_bytes(4, "big") + b"\x00" * (size - 4))


def _trace_receiver(loop):
    trace = ReceiverTrace()

    def deliver(frame):
        trace.record(loop.now, int.from_bytes(frame[:4], "big"), len(frame))

    return trace, deliver


class TestStriping:
    def test_round_robin_assignment(self):
        loop = EventLoop()
        counts = [0, 0, 0]
        links = [
            Link(loop, lambda f: None, rate_bps=1e9, delay=0.001)
            for _ in range(3)
        ]
        channel = MultipathChannel(links)
        for _ in range(9):
            channel.send(b"x" * 100)
        assert [l.stats.frames_in for l in links] == [3, 3, 3]

    def test_skew_causes_reorder(self):
        """The Section 1 scenario: parallel paths with skew disorder
        packets even with zero loss."""
        loop = EventLoop()
        trace, deliver = _trace_receiver(loop)
        channel = aurora_stripe(loop, deliver, paths=8, skew=0.0005)
        _send_indexed(channel, 64)
        loop.run()
        assert trace.count == 64
        assert trace.late_arrivals() > 0
        assert trace.disorder_fraction() > 0.1

    def test_zero_skew_preserves_order(self):
        loop = EventLoop()
        trace, deliver = _trace_receiver(loop)
        channel = aurora_stripe(loop, deliver, paths=8, skew=0.0)
        _send_indexed(channel, 64)
        loop.run()
        assert trace.late_arrivals() == 0

    def test_more_skew_more_displacement(self):
        displacements = []
        for skew in (0.0001, 0.001):
            loop = EventLoop()
            trace, deliver = _trace_receiver(loop)
            channel = aurora_stripe(loop, deliver, paths=8, skew=skew)
            _send_indexed(channel, 128)
            loop.run()
            displacements.append(trace.max_displacement())
        assert displacements[1] >= displacements[0]

    def test_aggregate_counters(self):
        loop = EventLoop()
        trace, deliver = _trace_receiver(loop)
        channel = aurora_stripe(loop, deliver, paths=4)
        _send_indexed(channel, 20)
        loop.run()
        assert channel.frames_in == 20
        assert channel.frames_delivered == 20


class TestTrace:
    def test_disorder_fraction_empty(self):
        assert ReceiverTrace().disorder_fraction() == 0.0

    def test_latency_of(self):
        trace = ReceiverTrace()
        trace.record(1.5, 0, 10)
        trace.record(2.5, 1, 10)
        latencies = trace.latency_of({0: 1.0, 1: 1.0})
        assert latencies == [0.5, 1.5]

    def test_max_displacement_in_order(self):
        trace = ReceiverTrace()
        for i in range(5):
            trace.record(float(i), i, 1)
        assert trace.max_displacement() == 0
