"""Lockstep composition: N member loops, one deterministic clock."""

from __future__ import annotations

import pytest

from repro.netsim.events import EventLoop
from repro.netsim.shardloop import ShardedLoop


class TestEventLoopPrimitives:
    def test_next_event_time_peeks_without_dispatching(self):
        loop = EventLoop()
        assert loop.next_event_time() is None
        loop.at(2.0, lambda: None)
        loop.at(1.0, lambda: None)
        assert loop.next_event_time() == 1.0
        assert loop.events_processed == 0

    def test_step_dispatches_exactly_one_event(self):
        loop = EventLoop()
        ran: list[int] = []
        loop.at(1.0, lambda: ran.append(1))
        loop.at(2.0, lambda: ran.append(2))
        assert loop.step() is True
        assert ran == [1]
        assert loop.now == 1.0
        assert loop.step() is True
        assert loop.step() is False
        assert ran == [1, 2]

    def test_advance_to_refuses_rewind_and_event_skips(self):
        loop = EventLoop()
        loop.advance_to(5.0)
        assert loop.now == 5.0
        with pytest.raises(ValueError):
            loop.advance_to(4.0)
        loop.at(6.0, lambda: None)
        with pytest.raises(ValueError):
            loop.advance_to(7.0)
        loop.advance_to(6.0)  # exactly at the pending event is allowed
        assert loop.now == 6.0


class TestShardedLoop:
    def test_needs_at_least_one_member(self):
        with pytest.raises(ValueError):
            ShardedLoop(members=0)

    def test_delegates_scheduling_to_the_primary(self):
        loop = ShardedLoop()
        ran: list[str] = []
        loop.schedule(0.5, lambda: ran.append("a"))
        loop.at(0.25, lambda: ran.append("b"))
        assert loop.member(0).pending() == 2
        loop.run()
        assert ran == ["b", "a"]
        assert loop.now == 0.5

    def test_add_member_joins_at_the_global_now(self):
        loop = ShardedLoop()
        loop.at(1.0, lambda: None)
        loop.run()
        member = loop.add_member()
        assert member.now == loop.now == 1.0

    def test_lockstep_order_is_global_time_then_member_index(self):
        loop = ShardedLoop()
        first = loop.add_member()
        second = loop.add_member()
        order: list[str] = []
        second.at(1.0, lambda: order.append("second@1"))
        first.at(1.0, lambda: order.append("first@1"))
        first.at(2.0, lambda: order.append("first@2"))
        loop.at(0.5, lambda: order.append("primary@0.5"))
        loop.run()
        assert order == ["primary@0.5", "first@1", "second@1", "first@2"]
        # Every member's clock ends at the global now.
        assert {member.now for member in loop.members} == {2.0}

    def test_members_advance_together_so_cross_scheduling_works(self):
        loop = ShardedLoop()
        shard = loop.add_member()
        ran: list[float] = []

        def from_primary() -> None:
            # A callback on the primary may schedule on a shard member
            # relative to *its* clock — lockstep keeps them equal.
            shard.schedule(0.5, lambda: ran.append(loop.now))

        loop.at(1.0, from_primary)
        loop.run()
        assert ran == [1.5]

    def test_run_until_advances_every_member_clock(self):
        loop = ShardedLoop()
        shard = loop.add_member()
        shard.at(10.0, lambda: None)
        loop.run(until=3.0)
        assert loop.now == 3.0
        assert shard.now == 3.0
        assert shard.pending() == 1

    def test_pending_and_events_processed_aggregate(self):
        loop = ShardedLoop()
        shard = loop.add_member()
        loop.at(1.0, lambda: None)
        shard.at(1.0, lambda: None)
        assert loop.pending() == 2
        loop.run()
        assert loop.pending() == 0
        assert loop.events_processed == 2
