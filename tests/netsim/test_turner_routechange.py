"""Unit tests for the Turner drop policy and route-change disorder."""

from repro.core.fragment import split_to_unit_limit
from repro.core.packet import Packet, pack_chunks
from repro.netsim.events import EventLoop
from repro.netsim.link import Link
from repro.netsim.routechange import RouteSwitcher
from repro.netsim.turner import BottleneckQueue

from tests.conftest import make_chunk


def _tpdu_packets(t_id, units=64, mtu=256):
    chunk = make_chunk(
        units=units, t_id=t_id, t_st=True, seed=t_id,
        c_sn=t_id * units, x_id=200 + t_id,
    )
    return [p.encode() for p in pack_chunks(split_to_unit_limit(chunk, 16), mtu)]


class TestBottleneckQueue:
    def _run(self, policy, depth=4, tpdus=6):
        """Frames of all TPDUs interleaved round-robin (striped traffic),
        so tail drops land mid-TPDU rather than on TPDU boundaries."""
        loop = EventLoop()
        delivered = []
        queue = BottleneckQueue(
            loop, delivered.append, rate_bps=1e6, depth_frames=depth, policy=policy
        )
        per_tpdu = [_tpdu_packets(t_id, units=128, mtu=128) for t_id in range(tpdus)]
        longest = max(len(frames) for frames in per_tpdu)
        # Pace arrivals at ~125% of the drain rate so the queue builds
        # gradually and overflows land mid-TPDU.
        drain_time = 128 * 8 / queue.rate_bps
        interval = drain_time / 1.25
        slot = 0
        for round_index in range(longest):
            for frames in per_tpdu:
                if round_index < len(frames):
                    frame = frames[round_index]
                    loop.at(slot * interval, lambda f=frame: queue.send(f))
                    slot += 1
        loop.run()
        return queue, delivered

    @staticmethod
    def _complete_tpdus(delivered):
        """TPDU ids whose every fragment arrived."""
        from repro.core.reassemble import coalesce

        chunks = [c for f in delivered for c in Packet.decode(f).chunks]
        complete = set()
        for merged in coalesce(chunks):
            if merged.t.sn == 0 and merged.t.st:
                complete.add(merged.t.ident)
        return complete

    def test_no_drops_when_queue_is_deep(self):
        queue, delivered = self._run("random", depth=1000)
        assert queue.stats.frames_dropped_overflow == 0
        assert len(self._complete_tpdus(delivered)) == 6

    def test_random_drop_wastes_partial_tpdus(self):
        queue, delivered = self._run("random", depth=3)
        assert queue.stats.frames_dropped_overflow > 0
        complete = self._complete_tpdus(delivered)
        # Bytes were forwarded for TPDUs that can never complete.
        partial_frames = [
            f for f in delivered
            if not all(
                c.t.ident in complete for c in Packet.decode(f).chunks if c.is_data
            )
        ]
        assert partial_frames

    def test_turner_drop_discards_doomed_fragments(self):
        queue, delivered = self._run("turner", depth=3)
        assert queue.stats.frames_dropped_turner > 0
        assert queue.stats.bytes_saved_by_turner > 0

    def test_turner_forwards_fewer_useless_bytes(self):
        _, random_delivered = self._run("random", depth=3)
        _, turner_delivered = self._run("turner", depth=3)
        random_complete = self._complete_tpdus(random_delivered)
        turner_complete = self._complete_tpdus(turner_delivered)

        def useless_bytes(delivered, complete):
            total = 0
            for frame in delivered:
                for chunk in Packet.decode(frame).chunks:
                    if chunk.is_data and chunk.t.ident not in complete:
                        total += chunk.payload_bytes
            return total

        assert useless_bytes(turner_delivered, turner_complete) < useless_bytes(
            random_delivered, random_complete
        )

    def test_forget_tpdu_allows_retransmission(self):
        loop = EventLoop()
        delivered = []
        queue = BottleneckQueue(
            loop, delivered.append, rate_bps=1e9, depth_frames=2, policy="turner"
        )
        frames = _tpdu_packets(1, units=256, mtu=128)
        for frame in frames:
            queue.send(frame)  # overflows; TPDU 1 doomed
        loop.run()
        assert queue.stats.frames_dropped_overflow > 0
        before = len(delivered)
        queue.forget_tpdu(1, 1)
        # A paced retransmission of the whole TPDU now passes; without
        # forget_tpdu the turner filter would discard every frame.
        for index, frame in enumerate(frames):
            loop.schedule(0.01 * (index + 1), lambda f=frame: queue.send(f))
        loop.run()
        assert len(delivered) > before
        assert 1 in self_complete(delivered)


def self_complete(delivered):
    return TestBottleneckQueue._complete_tpdus(delivered)


class TestRouteSwitcher:
    def test_switch_causes_overtaking(self):
        """Packets on the new (faster) route arrive before packets still
        in flight on the old route — Section 1's route-change disorder."""
        loop = EventLoop()
        arrivals = []

        def deliver(frame):
            arrivals.append((loop.now, int.from_bytes(frame[:4], "big")))

        slow = Link(loop, deliver, rate_bps=1e9, delay=0.050)
        fast = Link(loop, deliver, rate_bps=1e9, delay=0.001)
        switcher = RouteSwitcher(primary=slow, alternate=fast)
        for index in range(10):
            if index == 5:
                switcher.switch()
            switcher.send(index.to_bytes(4, "big") + b"\x00" * 96)
        loop.run()
        order = [i for _, i in sorted(arrivals)]
        assert order != sorted(order)     # disorder happened
        assert set(order) == set(range(10))  # nothing lost
        assert order[:5] == [5, 6, 7, 8, 9]  # new-route packets overtook

    def test_scheduled_switch(self):
        loop = EventLoop()
        a = Link(loop, lambda f: None, delay=0.01)
        b = Link(loop, lambda f: None, delay=0.01)
        switcher = RouteSwitcher(primary=a, alternate=b)
        switcher.schedule_switch(at=1.0)
        assert switcher.active_route == "primary"
        loop.run()
        assert switcher.active_route == "alternate"
        assert switcher.switches == 1

    def test_round_trip_switch(self):
        loop = EventLoop()
        a = Link(loop, lambda f: None, delay=0.01)
        b = Link(loop, lambda f: None, delay=0.01)
        switcher = RouteSwitcher(primary=a, alternate=b)
        switcher.switch()
        switcher.switch()
        assert switcher.active_route == "primary"
        switcher.send(b"x" * 10)
        assert a.stats.frames_in == 1 and b.stats.frames_in == 0
