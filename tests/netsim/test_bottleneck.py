"""SharedBottleneck: N pairs, one link, chunk-aware C.ID demux."""

from __future__ import annotations

from repro.core.packet import Packet
from repro.netsim.bottleneck import build_shared_bottleneck
from repro.netsim.events import EventLoop
from repro.netsim.topology import HopSpec
from tests.conftest import make_chunk


class Sink:
    def __init__(self) -> None:
        self.frames: list[bytes] = []

    def __call__(self, frame: bytes) -> None:
        self.frames.append(frame)

    def chunk_ids(self) -> list[int]:
        return [
            chunk.c.ident
            for frame in self.frames
            for chunk in Packet.decode(frame).chunks
        ]


def fast_net(loop: EventLoop, pairs: int) -> tuple:
    sinks = [(Sink(), Sink()) for _ in range(pairs)]
    net = build_shared_bottleneck(
        loop,
        pairs=[(fwd, rev) for fwd, rev in sinks],
        bottleneck=HopSpec(mtu=1500, rate_bps=1e9, delay=0.0001),
        seed=3,
    )
    return net, sinks


def test_single_pair_fast_path_passes_frames_verbatim():
    loop = EventLoop()
    net, sinks = fast_net(loop, pairs=1)
    # Even an undecodable frame passes through: with one pair and no
    # bound routes the demux never pays the decode.
    net.ports[0].send(b"not a packet")
    loop.run()
    assert sinks[0][0].frames == [b"not a packet"]
    assert net.frames_forward == 1
    assert net.undecodable_frames == 0


def test_single_pair_fast_path_is_byte_and_metric_identical_to_demux():
    """The fast path is an optimization, not a semantic: with one pair,
    delivering verbatim and decode-route-reencode must produce the same
    frames at the same simulated times with the same counters."""

    def run(force_general_path: bool):
        loop = EventLoop()
        net, sinks = fast_net(loop, pairs=1)
        if force_general_path:
            net.bind(1, net.ports[0])  # any bound route disables the fast path
        for i in range(12):
            # Mixed envelopes: bound C.ID 1 plus unbound C.ID 2 (which
            # falls back to port 0 either way).
            net.ports[0].send(
                Packet(
                    chunks=[make_chunk(c_id=1, t_id=i), make_chunk(c_id=2, t_id=i)]
                ).encode()
            )
            net.ports[0].send_reverse(
                Packet(chunks=[make_chunk(c_id=1, t_id=i, x_id=7)]).encode()
            )
        loop.run()
        forward, reverse = sinks[0]
        return (
            forward.frames,
            reverse.frames,
            (
                net.frames_forward,
                net.frames_reverse,
                net.split_frames,
                net.misrouted_chunks,
                net.undecodable_frames,
            ),
            loop.now,
        )

    assert run(force_general_path=False) == run(force_general_path=True)


def test_chunks_route_to_bound_ports_by_connection_id():
    loop = EventLoop()
    net, sinks = fast_net(loop, pairs=3)
    net.bind(7, net.ports[1])
    net.bind(9, net.ports[2])
    frame = Packet(
        chunks=[make_chunk(c_id=7), make_chunk(c_id=9), make_chunk(c_id=7)]
    ).encode()
    net.ports[0].send(frame)
    loop.run()
    assert sinks[1][0].chunk_ids() == [7, 7]
    assert sinks[2][0].chunk_ids() == [9]
    assert sinks[0][0].frames == []
    assert net.split_frames == 1


def test_unbound_connection_falls_back_to_port_zero():
    loop = EventLoop()
    net, sinks = fast_net(loop, pairs=2)
    net.ports[0].send(Packet(chunks=[make_chunk(c_id=42)]).encode())
    loop.run()
    assert sinks[0][0].chunk_ids() == [42]
    assert net.split_frames == 0


def test_single_port_frames_are_not_counted_as_split():
    loop = EventLoop()
    net, sinks = fast_net(loop, pairs=2)
    net.bind(5, net.ports[1])
    net.ports[0].send(
        Packet(chunks=[make_chunk(c_id=5), make_chunk(c_id=5)]).encode()
    )
    loop.run()
    assert sinks[1][0].chunk_ids() == [5, 5]
    assert net.split_frames == 0


def test_route_to_detached_port_counts_misrouted_chunks():
    loop = EventLoop()
    net, sinks = fast_net(loop, pairs=2)
    net.routes[3] = 9  # stale binding: port 9 never attached
    net.ports[0].send(
        Packet(chunks=[make_chunk(c_id=3), make_chunk(c_id=1)]).encode()
    )
    loop.run()
    assert net.misrouted_chunks == 1
    assert sinks[0][0].chunk_ids() == [1]


def test_undecodable_frames_are_dropped_and_counted():
    loop = EventLoop()
    net, sinks = fast_net(loop, pairs=2)
    net.ports[0].send(b"\xff" * 32)
    loop.run()
    assert net.undecodable_frames == 1
    assert sinks[0][0].frames == []
    assert sinks[1][0].frames == []


def test_reverse_path_demultiplexes_to_the_sending_pair():
    loop = EventLoop()
    net, sinks = fast_net(loop, pairs=2)
    net.bind(11, net.ports[1])
    frame = Packet(chunks=[make_chunk(c_id=11), make_chunk(c_id=2)]).encode()
    net.ports[0].send_reverse(frame)
    loop.run()
    assert net.frames_reverse == 1
    assert sinks[1][1].chunk_ids() == [11]
    assert sinks[0][1].chunk_ids() == [2]
    assert net.split_frames == 1


def test_access_links_feed_the_shared_bottleneck():
    loop = EventLoop()
    sinks = [(Sink(), Sink()) for _ in range(2)]
    net = build_shared_bottleneck(
        loop,
        pairs=[(fwd, rev) for fwd, rev in sinks],
        bottleneck=HopSpec(mtu=1500, rate_bps=1e9, delay=0.0001),
        access=HopSpec(mtu=1500, rate_bps=1e8, delay=0.001),
        seed=4,
    )
    net.bind(1, net.ports[0])
    net.bind(2, net.ports[1])
    net.ports[0].send(Packet(chunks=[make_chunk(c_id=1)]).encode())
    net.ports[1].send(Packet(chunks=[make_chunk(c_id=2)]).encode())
    loop.run()
    # Both access links funnel into one bottleneck; each pair still only
    # sees its own conversation's chunks.
    assert net.frames_forward == 2
    assert sinks[0][0].chunk_ids() == [1]
    assert sinks[1][0].chunk_ids() == [2]
    # Access and propagation delay mean delivery takes simulated time.
    assert loop.now > 0.001


def test_lossy_bottleneck_drops_are_shared():
    loop = EventLoop()
    sinks = [(Sink(), Sink())]
    net = build_shared_bottleneck(
        loop,
        pairs=[(fwd, rev) for fwd, rev in sinks],
        bottleneck=HopSpec(mtu=1500, rate_bps=1e9, delay=0.0001, loss_rate=0.5),
        seed=11,
    )
    for i in range(40):
        net.ports[0].send(Packet(chunks=[make_chunk(c_id=1, t_id=i)]).encode())
    loop.run()
    delivered = len(sinks[0][0].frames)
    assert 0 < delivered < 40
