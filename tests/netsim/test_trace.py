"""Unit tests for receiver-side trace metrics."""

import pytest

from repro.netsim.trace import ArrivalRecord, ReceiverTrace
from repro.obs import session


def _trace(indices, t0=0.0, dt=1.0):
    trace = ReceiverTrace()
    for position, index in enumerate(indices):
        trace.record(t0 + position * dt, index, 100)
    return trace


class TestDisorderMetrics:
    def test_in_order_has_no_late_arrivals(self):
        assert _trace([0, 1, 2, 3]).late_arrivals() == 0

    def test_single_swap(self):
        trace = _trace([0, 2, 1, 3])
        assert trace.late_arrivals() == 1
        assert trace.disorder_fraction() == pytest.approx(0.25)

    def test_fully_reversed(self):
        trace = _trace([3, 2, 1, 0])
        assert trace.late_arrivals() == 3
        assert trace.max_displacement() == 3

    def test_late_is_relative_to_running_maximum(self):
        # 5 arrives early; 1..4 are all late relative to it.
        trace = _trace([5, 1, 2, 3, 4, 0])
        assert trace.late_arrivals() == 5

    def test_displacement_of_in_order(self):
        assert _trace([0, 1, 2]).max_displacement() == 0

    def test_count(self):
        assert _trace([0, 1, 2]).count == 3

    def test_empty_trace(self):
        trace = ReceiverTrace()
        assert trace.late_arrivals() == 0
        assert trace.disorder_fraction() == 0.0
        assert trace.max_displacement() == 0


class TestPublish:
    """publish() exposes the disorder metrics as netsim gauges."""

    def _gauges(self, registry):
        return {
            name: registry.get("netsim", f"trace.{name}").value
            for name in (
                "arrivals",
                "late_arrivals",
                "max_displacement",
                "disorder_fraction",
            )
        }

    def test_empty_trace_publishes_zeros(self):
        with session() as (registry, _):
            values = ReceiverTrace().publish()
            assert values == {
                "arrivals": 0.0,
                "late_arrivals": 0.0,
                "max_displacement": 0.0,
                "disorder_fraction": 0.0,
            }
            assert self._gauges(registry) == values

    def test_all_in_order(self):
        with session() as (registry, _):
            values = _trace([0, 1, 2, 3]).publish()
            assert values["arrivals"] == 4.0
            assert values["late_arrivals"] == 0.0
            assert values["max_displacement"] == 0.0
            assert values["disorder_fraction"] == 0.0
            assert self._gauges(registry) == values

    def test_fully_reversed(self):
        with session() as (registry, _):
            values = _trace([4, 3, 2, 1, 0]).publish()
            assert values["arrivals"] == 5.0
            assert values["late_arrivals"] == 4.0
            assert values["max_displacement"] == 4.0
            assert values["disorder_fraction"] == pytest.approx(0.8)
            assert self._gauges(registry) == values

    def test_publish_without_registry_is_pure(self):
        # No registry installed: publish still returns the values and
        # must not raise (null-sink behavior).
        values = _trace([1, 0]).publish()
        assert values["late_arrivals"] == 1.0


class TestLatency:
    def test_latency_of_known_sends(self):
        trace = _trace([0, 1], t0=5.0, dt=1.0)
        latencies = trace.latency_of({0: 4.0, 1: 4.5})
        assert latencies == [1.0, 1.5]

    def test_unknown_indices_skipped(self):
        trace = _trace([0, 9], t0=1.0)
        assert trace.latency_of({0: 0.5}) == [0.5]

    def test_record_fields(self):
        record = ArrivalRecord(time=1.5, index=7, size=42)
        assert (record.time, record.index, record.size) == (1.5, 7, 42)
