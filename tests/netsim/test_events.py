"""Unit tests for the discrete-event loop."""

import pytest

from repro.netsim.events import EventLoop


class TestScheduling:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(3.0, lambda: order.append("c"))
        loop.schedule(1.0, lambda: order.append("a"))
        loop.schedule(2.0, lambda: order.append("b"))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_equal_times_are_fifo(self):
        loop = EventLoop()
        order = []
        for tag in "abc":
            loop.schedule(1.0, lambda t=tag: order.append(t))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_now_advances(self):
        loop = EventLoop()
        seen = []
        loop.schedule(2.5, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [2.5]
        assert loop.now == 2.5

    def test_nested_scheduling(self):
        loop = EventLoop()
        order = []

        def first():
            order.append("first")
            loop.schedule(1.0, lambda: order.append("second"))

        loop.schedule(1.0, first)
        loop.run()
        assert order == ["first", "second"]
        assert loop.now == 2.0

    def test_run_until_stops_early(self):
        loop = EventLoop()
        hits = []
        loop.schedule(1.0, lambda: hits.append(1))
        loop.schedule(5.0, lambda: hits.append(5))
        loop.run(until=2.0)
        assert hits == [1]
        assert loop.pending() == 1
        loop.run()
        assert hits == [1, 5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule(-1, lambda: None)

    def test_past_absolute_time_rejected(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.at(1.0, lambda: None)

    def test_events_processed_counter(self):
        loop = EventLoop()
        for _ in range(4):
            loop.schedule(1.0, lambda: None)
        loop.run()
        assert loop.events_processed == 4
