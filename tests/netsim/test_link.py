"""Unit tests for links and impairments."""

import random

from repro.netsim.events import EventLoop
from repro.netsim.link import Link
from repro.netsim.rng import corrupt_bytes, substream


def _collect():
    arrivals = []

    def deliver(frame):
        arrivals.append(frame)

    return arrivals, deliver


class TestTiming:
    def test_serialization_plus_propagation(self):
        loop = EventLoop()
        times = []
        link = Link(loop, lambda f: times.append(loop.now), rate_bps=8000, delay=0.5)
        link.send(b"x" * 100)  # 800 bits / 8000 bps = 0.1 s
        loop.run()
        assert times == [0.6]

    def test_fifo_no_reorder(self):
        loop = EventLoop()
        arrivals, deliver = _collect()
        link = Link(loop, deliver, rate_bps=1e6, delay=0.01)
        for i in range(10):
            link.send(bytes([i]) * 10)
        loop.run()
        assert arrivals == [bytes([i]) * 10 for i in range(10)]

    def test_back_to_back_serialization_queues(self):
        loop = EventLoop()
        times = []
        link = Link(loop, lambda f: times.append(loop.now), rate_bps=8000, delay=0.0)
        link.send(b"x" * 100)
        link.send(b"y" * 100)
        loop.run()
        assert times[0] == 0.1
        assert abs(times[1] - 0.2) < 1e-12


class TestImpairments:
    def test_oversize_dropped(self):
        loop = EventLoop()
        arrivals, deliver = _collect()
        link = Link(loop, deliver, mtu=50)
        link.send(b"z" * 51)
        loop.run()
        assert arrivals == []
        assert link.stats.frames_dropped_oversize == 1

    def test_loss_rate_statistics(self):
        loop = EventLoop()
        arrivals, deliver = _collect()
        link = Link(loop, deliver, loss_rate=0.3, rng=random.Random(1), delay=0)
        for _ in range(1000):
            link.send(b"frame")
        loop.run()
        assert link.stats.frames_lost + len(arrivals) == 1000
        assert 230 <= link.stats.frames_lost <= 370

    def test_zero_loss_delivers_all(self):
        loop = EventLoop()
        arrivals, deliver = _collect()
        link = Link(loop, deliver)
        for _ in range(50):
            link.send(b"frame")
        loop.run()
        assert len(arrivals) == 50

    def test_corruption_changes_bytes(self):
        loop = EventLoop()
        arrivals, deliver = _collect()
        link = Link(loop, deliver, corrupt_rate=1.0, rng=random.Random(2))
        link.send(b"\x00" * 20)
        loop.run()
        assert arrivals[0] != b"\x00" * 20
        assert len(arrivals[0]) == 20
        assert link.stats.frames_corrupted == 1

    def test_duplication(self):
        loop = EventLoop()
        arrivals, deliver = _collect()
        link = Link(loop, deliver, dup_rate=1.0, rng=random.Random(3))
        link.send(b"once")
        loop.run()
        assert arrivals == [b"once", b"once"]
        assert link.stats.frames_duplicated == 1

    def test_stats_bytes(self):
        loop = EventLoop()
        arrivals, deliver = _collect()
        link = Link(loop, deliver)
        link.send(b"x" * 30)
        loop.run()
        assert link.stats.bytes_in == 30
        assert link.stats.bytes_delivered == 30


class TestRngHelpers:
    def test_substream_is_deterministic(self):
        assert substream(7, "link", 1).random() == substream(7, "link", 1).random()

    def test_substream_labels_differ(self):
        assert substream(7, "a").random() != substream(7, "b").random()

    def test_corrupt_bytes_flips_exactly_one_bit(self):
        data = bytes(16)
        out = corrupt_bytes(data, random.Random(5), flips=1)
        diff = [a ^ b for a, b in zip(data, out)]
        assert sum(bin(d).count("1") for d in diff) == 1

    def test_corrupt_empty_is_noop(self):
        assert corrupt_bytes(b"", random.Random(5)) == b""
