"""Unit tests for multi-hop paths with chunk routers."""

import pytest

from repro.core.packet import Packet, pack_chunks
from repro.core.reassemble import coalesce
from repro.netsim.events import EventLoop
from repro.netsim.topology import HopSpec, build_chunk_path

from tests.conftest import make_chunk


def _deliver_list(loop):
    frames = []

    def deliver(frame):
        frames.append((loop.now, frame))

    return frames, deliver


class TestPaths:
    def test_single_hop(self):
        loop = EventLoop()
        frames, deliver = _deliver_list(loop)
        path = build_chunk_path(loop, [HopSpec(mtu=1500)], deliver)
        chunk = make_chunk(units=8)
        for packet in pack_chunks([chunk], 1500):
            path.send(packet.encode())
        path.run()
        assert len(frames) == 1

    def test_shrinking_mtus_fragment_in_network(self):
        """Large -> medium -> small MTU: routers split chunks en route
        and the receiver still reassembles in one step."""
        loop = EventLoop()
        frames, deliver = _deliver_list(loop)
        hops = [HopSpec(mtu=4096), HopSpec(mtu=1024), HopSpec(mtu=256)]
        path = build_chunk_path(loop, hops, deliver)
        chunk = make_chunk(units=400, t_st=True)
        for packet in pack_chunks([chunk], 4096):
            path.send(packet.encode())
        path.run()
        assert len(frames) > 1
        chunks = [c for _, f in frames for c in Packet.decode(f).chunks]
        assert coalesce(chunks) == [chunk]

    def test_growing_mtus_with_reassembly_mode(self):
        loop = EventLoop()
        frames, deliver = _deliver_list(loop)
        hops = [HopSpec(mtu=256), HopSpec(mtu=4096)]
        path = build_chunk_path(
            loop, hops, deliver, mode="reassemble", batch_window=0.01
        )
        chunk = make_chunk(units=200, t_st=True)
        for packet in pack_chunks([chunk], 256):
            path.send(packet.encode())
        path.run()
        chunks = [c for _, f in frames for c in Packet.decode(f).chunks]
        assert coalesce(chunks) == [chunk]
        # Far fewer envelopes on the big-MTU leg than entered.
        assert len(frames) < len(pack_chunks([chunk], 256))

    def test_lossy_hop_drops_frames(self):
        loop = EventLoop()
        frames, deliver = _deliver_list(loop)
        hops = [HopSpec(mtu=512, loss_rate=0.5)]
        path = build_chunk_path(loop, hops, deliver, seed=11)
        chunk = make_chunk(units=500)
        for packet in pack_chunks([chunk], 512):
            path.send(packet.encode())
        path.run()
        sent = len(pack_chunks([chunk], 512))
        assert 0 < len(frames) < sent

    def test_empty_hop_list_rejected(self):
        with pytest.raises(ValueError):
            build_chunk_path(EventLoop(), [], lambda f: None)

    def test_first_mtu_property(self):
        loop = EventLoop()
        path = build_chunk_path(
            loop, [HopSpec(mtu=1234), HopSpec(mtu=99)], lambda f: None
        )
        assert path.first_mtu == 1234

    def test_latency_accumulates_over_hops(self):
        results = {}
        for hops in (1, 3):
            loop = EventLoop()
            frames, deliver = _deliver_list(loop)
            specs = [HopSpec(mtu=1500, delay=0.01)] * hops
            path = build_chunk_path(loop, specs, deliver)
            for packet in pack_chunks([make_chunk(units=4)], 1500):
                path.send(packet.encode())
            path.run()
            results[hops] = frames[0][0]
        assert results[3] > results[1]
