"""Multi-connection packets and piggybacked mixtures (Appendix A).

"Previously we discussed packets that carry multiple chunks from a
single connection, and this idea can be extended to packets that carry
chunks from multiple connections.  Data, signaling information, and
acknowledgments can be combined in any combination."
"""

from __future__ import annotations

import random

from repro.core.packet import Packet, pack_chunks
from repro.core.types import ChunkType
from repro.transport.acks import build_ack_chunk
from repro.transport.connection import ConnectionConfig
from repro.transport.receiver import ChunkTransportReceiver
from repro.transport.sender import ChunkTransportSender

from tests.conftest import make_payload


def _connection_traffic(connection_id, seed, frames=3, tpdu_units=16):
    sender = ChunkTransportSender(
        ConnectionConfig(connection_id=connection_id, tpdu_units=tpdu_units)
    )
    chunks = [sender.establishment_chunk()]
    payload = b""
    for index in range(frames):
        data = make_payload(tpdu_units, seed=seed * 100 + index)
        payload += data
        if index == frames - 1:
            chunks += sender.close(data, frame_id=index)
        else:
            chunks += sender.send_frame(data, frame_id=index)
    return chunks, payload


class TestMultiConnectionPackets:
    def test_interleaved_connections_share_packets(self):
        chunks_a, payload_a = _connection_traffic(1, seed=1)
        chunks_b, payload_b = _connection_traffic(2, seed=2)
        # Interleave chunk-by-chunk so packets genuinely mix connections.
        mixed = [c for pair in zip(chunks_a, chunks_b) for c in pair]
        mixed += chunks_a[len(chunks_b):] + chunks_b[len(chunks_a):]
        packets = pack_chunks(mixed, 1500)
        assert any(
            len({c.c.ident for c in p.chunks if c.is_data}) > 1 for p in packets
        ), "no packet actually mixed connections"

        receivers = {1: ChunkTransportReceiver(), 2: ChunkTransportReceiver()}
        for packet in packets:
            decoded = Packet.decode(packet.encode())
            for chunk in decoded.chunks:
                receivers[chunk.c.ident].receive_chunk(chunk)
        assert receivers[1].stream_bytes() == payload_a
        assert receivers[2].stream_bytes() == payload_b
        assert receivers[1].corrupted_tpdus() == 0
        assert receivers[2].corrupted_tpdus() == 0

    def test_shuffled_multiconnection_delivery(self):
        chunks_a, payload_a = _connection_traffic(1, seed=3)
        chunks_b, payload_b = _connection_traffic(2, seed=4)
        packets = pack_chunks(chunks_a + chunks_b, 256)
        random.Random(6).shuffle(packets)
        receivers = {1: ChunkTransportReceiver(), 2: ChunkTransportReceiver()}
        for packet in packets:
            for chunk in Packet.decode(packet.encode()).chunks:
                receivers[chunk.c.ident].receive_chunk(chunk)
        assert receivers[1].stream_bytes() == payload_a
        assert receivers[2].stream_bytes() == payload_b

    def test_data_signaling_and_acks_in_one_packet(self):
        """The full Appendix A mixture in one envelope."""
        sender = ChunkTransportSender(ConnectionConfig(connection_id=5, tpdu_units=8))
        chunks = [sender.establishment_chunk()]
        chunks += sender.send_frame(make_payload(8))
        chunks.append(build_ack_chunk(9, [3, 4]))  # acks for connection 9
        packets = pack_chunks(chunks, 4096)
        assert len(packets) == 1
        types = {c.type for c in Packet.decode(packets[0].encode()).chunks}
        assert types >= {
            ChunkType.SIGNALING,
            ChunkType.DATA,
            ChunkType.ERROR_DETECTION,
            ChunkType.ACK,
        }

    def test_same_tpdu_ids_different_connections_do_not_collide(self):
        """Both connections use T.ID 0; demux by C.ID keeps them apart
        (the non-multiplexed connection ID of [FELD 90])."""
        chunks_a, payload_a = _connection_traffic(1, seed=7, frames=1)
        chunks_b, payload_b = _connection_traffic(2, seed=8, frames=1)
        t_ids_a = {c.t.ident for c in chunks_a if c.is_data}
        t_ids_b = {c.t.ident for c in chunks_b if c.is_data}
        assert t_ids_a & t_ids_b  # genuinely colliding T.IDs
        receiver = {1: ChunkTransportReceiver(), 2: ChunkTransportReceiver()}
        for chunk in chunks_a + chunks_b:
            receiver[chunk.c.ident].receive_chunk(chunk)
        assert receiver[1].stream_bytes() == payload_a
        assert receiver[2].stream_bytes() == payload_b
