"""Acceptance: 1,000 conversations across 8 C.ID-hashed worker shards.

The sharded endpoint's whole claim is that partitioning by the label
changes *capacity*, not *behaviour*: the same wire, the same delivered
bytes, the same reclamation guarantees — just N workers instead of one.
This suite drives 1,000 staggered bulk/video conversations between two
8-shard :class:`~repro.transport.shard.ShardedEndpoint`\\ s through one
shared lossy bottleneck and checks the acceptance contract at once:
byte-identical delivery for every conversation, Jain fairness ≥ 0.9
over both delivered bytes and the hash partition itself, the global
budget pool fully reclaimed once eviction runs, and a same-seed
unsharded run delivering bit-for-bit the same streams.
"""

from __future__ import annotations

import pytest

from repro.app.concurrent import ConcurrentWorkload, deterministic_payload, staggered_specs
from repro.netsim.bottleneck import build_shared_bottleneck
from repro.netsim.events import EventLoop
from repro.netsim.shardloop import ShardedLoop
from repro.netsim.topology import HopSpec
from repro.transport.endpoint import ChunkEndpoint
from repro.transport.shard import ShardedEndpoint

CONVERSATIONS = 1000
SHARDS = 8
OBJECT_BYTES = 1024
LOSS = 0.01
SEED = 47
# Batch egress across a couple of stagger slots so envelopes genuinely
# mix conversations (and shards) instead of flushing one send at a time.
FLUSH_WINDOW = 0.001


def jain(values: list[int]) -> float:
    """Jain's fairness index: 1.0 when every share is equal."""
    if not values or not any(values):
        return 0.0
    return sum(values) ** 2 / (len(values) * sum(v * v for v in values))


def run_scale(shards: int | None):
    """Drive the full workload; returns (loop, sender, receiver, outcomes)."""
    if shards is None:
        loop: EventLoop | ShardedLoop = EventLoop()
        netloop = loop
        sender: ChunkEndpoint | ShardedEndpoint = ChunkEndpoint(
            loop, mtu=1500, idle_timeout=5.0, flush_window=FLUSH_WINDOW
        )
        receiver: ChunkEndpoint | ShardedEndpoint = ChunkEndpoint(
            loop, mtu=1500, idle_timeout=5.0, flush_window=FLUSH_WINDOW
        )
    else:
        loop = ShardedLoop()
        netloop = loop.member(0)
        sender = ShardedEndpoint(
            loop, mtu=1500, shards=shards, idle_timeout=5.0,
            flush_window=FLUSH_WINDOW,
        )
        receiver = ShardedEndpoint(
            loop, mtu=1500, shards=shards, idle_timeout=5.0,
            flush_window=FLUSH_WINDOW,
        )
    net = build_shared_bottleneck(
        netloop,
        pairs=[(receiver.receive_packet, sender.receive_packet)],
        bottleneck=HopSpec(mtu=1500, rate_bps=622e6, delay=0.0005, loss_rate=LOSS),
        reverse=HopSpec(mtu=1500, rate_bps=622e6, delay=0.0005),
        seed=SEED,
    )
    sender.transmit = net.ports[0].send
    receiver.transmit = net.ports[0].send_reverse
    work = ConcurrentWorkload(loop, sender, receiver)
    work.launch(
        staggered_specs(CONVERSATIONS, total_bytes=OBJECT_BYTES, stagger=0.0005)
    )
    outcomes = work.run()
    return loop, sender, receiver, outcomes


def delivered_streams(receiver) -> dict[int, bytes]:
    streams: dict[int, bytes] = {}
    for cid in range(1, CONVERSATIONS + 1):
        conn = receiver.connection(cid)
        streams[cid] = b"" if conn is None else conn.stream_bytes()[:OBJECT_BYTES]
    return streams


@pytest.fixture(scope="module")
def sharded_run():
    """One 1,000-conversation 8-shard run shared by the per-property tests."""
    return run_scale(SHARDS)


@pytest.mark.slow
def test_every_stream_is_byte_identical(sharded_run):
    _, _, receiver, outcomes = sharded_run
    assert len(outcomes) == CONVERSATIONS
    assert all(o.launched for o in outcomes)
    incomplete = [o.spec.connection_id for o in outcomes if not o.complete]
    assert incomplete == []
    for cid in (1, CONVERSATIONS // 2, CONVERSATIONS):
        conn = receiver.connection(cid)
        assert conn is not None
        assert conn.stream_bytes() == deterministic_payload(cid, OBJECT_BYTES)


@pytest.mark.slow
def test_jain_fairness_of_delivery_and_partition(sharded_run):
    _, _, receiver, outcomes = sharded_run
    # Fairness of outcome: every conversation's delivered bytes.
    assert jain([o.bytes_received for o in outcomes]) >= 0.9
    # Fairness of the partition itself: CRC-32 spreads the 1,000 C.IDs
    # near-uniformly, so no shard becomes a hot spot.
    per_shard = [
        len(shard.endpoint.table.connections) for shard in receiver.shards
    ]
    assert sum(per_shard) == CONVERSATIONS
    assert jain(per_shard) >= 0.9


@pytest.mark.slow
def test_conversations_crossed_shards_on_one_wire(sharded_run):
    _, sender, receiver, _ = sharded_run
    # The run must exercise the cross-shard packer and the ingress
    # fan-out, not degenerate into eight isolated endpoints.
    assert sender.mixed_packets > 0
    assert sender.cross_shard_packets > 0
    assert receiver.router.fanout_packets > 0
    stats = receiver.stats()
    assert stats["established_total"] == CONVERSATIONS
    assert stats["active_connections"] == CONVERSATIONS


@pytest.mark.slow
def test_same_seed_sharded_and_unsharded_deliver_identically(sharded_run):
    _, _, receiver, _ = sharded_run
    _, _, base_receiver, base_outcomes = run_scale(None)
    assert all(o.complete for o in base_outcomes)
    assert delivered_streams(receiver) == delivered_streams(base_receiver)


@pytest.mark.slow
def test_eviction_returns_every_borrowed_block(sharded_run):
    # Runs last in the module: it evicts the shared run's connections.
    loop, sender, receiver, _ = sharded_run
    pool = receiver.pool
    assert pool.lent_total > 0
    assert pool.peak_lent > 0
    evicted = receiver.sweep(now=loop.now + 6.0)
    assert sorted(evicted) == list(range(1, CONVERSATIONS + 1))
    # Every shard budget drained and every borrowed block went home.
    for shard in receiver.shards:
        assert shard.endpoint.budget.reserved_total == 0
        assert len(shard.endpoint.table.connections) == 0
    assert pool.lent_total == 0
    sender.sweep(now=loop.now + 6.0)
    assert sender.pool.lent_total == 0
