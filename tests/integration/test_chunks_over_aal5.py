"""Layering check: chunk packets ride AAL5 cells as a link adaptation.

The AURORA scenario carries packets over ATM; AAL5 segments each chunk
packet into 48-byte cells and reassembles it at the link exit.  Chunks
neither know nor care — the cell layer is just another envelope — and
if the cell layer misorders (which real ATM does not, but a faulty
switch might), its CRC rejects the frame and the chunk transport's
retransmission absorbs the loss.
"""

from __future__ import annotations

import random

from repro.baselines.aal import Aal5Reassembler, aal5_segment
from repro.core.packet import pack_chunks
from repro.transport.connection import ConnectionConfig
from repro.transport.receiver import ChunkTransportReceiver
from repro.transport.sender import ChunkTransportSender

from tests.conftest import make_payload


def _traffic(frames=4, tpdu_units=32):
    sender = ChunkTransportSender(ConnectionConfig(connection_id=6, tpdu_units=tpdu_units))
    chunks = [sender.establishment_chunk()]
    payload = b""
    for index in range(frames):
        data = make_payload(tpdu_units, seed=index)
        payload += data
        last = index == frames - 1
        if last:
            chunks += sender.close(data, frame_id=index)
        else:
            chunks += sender.send_frame(data, frame_id=index)
    return sender, chunks, payload


class TestChunksOverAal5:
    def test_clean_cell_path(self):
        sender, chunks, payload = _traffic()
        receiver = ChunkTransportReceiver()
        reasm = Aal5Reassembler()
        for packet in pack_chunks(chunks, 1500):
            for cell in aal5_segment(packet.encode()):
                frame = reasm.add_cell(cell)
                if frame is not None:
                    receiver.receive_packet(frame)
        assert reasm.frames_ok == len(pack_chunks(chunks, 1500))
        assert receiver.stream_bytes() == payload
        assert receiver.corrupted_tpdus() == 0

    def test_cell_misorder_caught_by_aal5_crc_not_by_chunks(self):
        """A cell swap corrupts exactly one AAL5 frame; the chunk layer
        sees a clean loss (missing packet), never corrupt data."""
        sender, chunks, payload = _traffic()
        receiver = ChunkTransportReceiver()
        reasm = Aal5Reassembler()
        packets = pack_chunks(chunks, 296)
        assert len(packets) >= 3
        for index, packet in enumerate(packets):
            cells = aal5_segment(packet.encode())
            if index == 1 and len(cells) >= 2:
                cells[0], cells[1] = cells[1], cells[0]
            for cell in cells:
                frame = reasm.add_cell(cell)
                if frame is not None:
                    receiver.receive_packet(frame)
        assert reasm.frames_bad_crc == 1
        assert receiver.corrupted_tpdus() == 0  # nothing *wrong* got through
        # The damaged packet's TPDU is simply incomplete (normal loss).
        assert receiver.pending_tpdus() or receiver.stream.missing()

    def test_packet_boundaries_align_with_cell_frames(self):
        """AAL5 padding round-trips: the delivered frame is exactly the
        encoded packet, whatever its length mod 48."""
        sender, chunks, payload = _traffic(frames=1, tpdu_units=7)
        for mtu in (96, 171, 533, 1500):
            reasm = Aal5Reassembler()
            for packet in pack_chunks(chunks, mtu):
                blob = packet.encode()
                delivered = None
                for cell in aal5_segment(blob):
                    out = reasm.add_cell(cell)
                    if out is not None:
                        delivered = out
                assert delivered == blob

    def test_loss_recovery_through_the_cell_layer(self):
        """Drop whole cells at random; AAL5 CRC turns them into packet
        losses; sender-driven retransmission completes the transfer."""
        rng = random.Random(8)
        sender, chunks, payload = _traffic()
        receiver = ChunkTransportReceiver()

        def send_via_cells(wire_chunks):
            reasm = Aal5Reassembler()
            for packet in pack_chunks(wire_chunks, 1500):
                for cell in aal5_segment(packet.encode()):
                    if rng.random() < 0.03:
                        continue  # cell lost
                    frame = reasm.add_cell(cell)
                    if frame is not None:
                        events = receiver.receive_packet(frame)
                        for verdict in events.verdicts:
                            if verdict.ok:
                                sender.acknowledge(verdict.t_id)

        send_via_cells(chunks)
        rounds = 0
        while sender.outstanding_tpdus() and rounds < 40:
            rounds += 1
            for t_id in list(sender.outstanding_tpdus()):
                send_via_cells(sender.retransmit(t_id))
        assert sender.outstanding_tpdus() == []
        assert receiver.stream_bytes() == payload
        assert receiver.corrupted_tpdus() == 0
