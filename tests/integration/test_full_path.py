"""Integration tests: transport over the simulated network.

These exercise the complete pipeline the paper describes: application
frames -> chunk framing -> per-TPDU WSC-2 -> packets -> links/routers
(fragmentation, multipath skew, loss, duplication) -> immediate-
processing receiver -> verified, correctly placed application data.
"""

import random

import pytest

from repro.core.packet import pack_chunks
from repro.netsim.events import EventLoop
from repro.netsim.multipath import aurora_stripe
from repro.netsim.topology import HopSpec, build_chunk_path
from repro.transport.connection import ConnectionConfig
from repro.transport.receiver import ChunkTransportReceiver
from repro.transport.sender import ChunkTransportSender

from tests.conftest import make_payload


def _make_traffic(frames=8, tpdu_units=64, connection_id=1):
    sender = ChunkTransportSender(
        ConnectionConfig(connection_id=connection_id, tpdu_units=tpdu_units)
    )
    chunks = [sender.establishment_chunk()]
    payload = b""
    for i in range(frames - 1):
        data = make_payload(tpdu_units // 2, seed=i)
        payload += data
        chunks += sender.send_frame(data, frame_id=i)
    tail = make_payload(tpdu_units // 2, seed=999)
    payload += tail
    chunks += sender.close(tail, frame_id=frames - 1)
    return sender, chunks, payload


class TestMultiHopFragmentingPath:
    def test_shrinking_mtu_path_delivers_verified_stream(self):
        loop = EventLoop()
        receiver = ChunkTransportReceiver()
        path = build_chunk_path(
            loop,
            [HopSpec(mtu=4096), HopSpec(mtu=576), HopSpec(mtu=256)],
            lambda frame: receiver.receive_packet(frame),
        )
        sender, chunks, payload = _make_traffic()
        for packet in pack_chunks(chunks, 4096):
            path.send(packet.encode())
        path.run()
        assert receiver.stream_bytes() == payload
        assert receiver.corrupted_tpdus() == 0
        assert receiver.pending_tpdus() == []
        assert receiver.closed

    @pytest.mark.parametrize("mode", ["repack", "one-per-packet", "reassemble"])
    def test_growing_mtu_path_all_modes(self, mode):
        loop = EventLoop()
        receiver = ChunkTransportReceiver()
        path = build_chunk_path(
            loop,
            [HopSpec(mtu=256), HopSpec(mtu=4096)],
            lambda frame: receiver.receive_packet(frame),
            mode=mode,
            batch_window=0.001,
        )
        sender, chunks, payload = _make_traffic()
        for packet in pack_chunks(chunks, 256):
            path.send(packet.encode())
        path.run()
        assert receiver.stream_bytes() == payload
        assert receiver.corrupted_tpdus() == 0


class TestMultipathSkew:
    def test_disordered_arrival_still_verifies(self):
        """The Section 1 scenario end to end: 8 striped paths with skew
        disorder packets; the receiver never reorders yet delivers a
        correct, fully verified stream."""
        loop = EventLoop()
        receiver = ChunkTransportReceiver()
        arrival_indices = []
        sent = []

        def deliver(frame):
            arrival_indices.append(sent.index(frame))
            receiver.receive_packet(frame)

        channel = aurora_stripe(loop, deliver, paths=8, skew=0.0008, seed=3)
        sender, chunks, payload = _make_traffic(frames=24, tpdu_units=32)
        for packet in pack_chunks(chunks, 256):
            frame = packet.encode()
            sent.append(frame)
            channel.send(frame)
        loop.run()
        # The network genuinely disordered the packets...
        assert arrival_indices != sorted(arrival_indices)
        # ...and the receiver did not care.
        assert receiver.stream_bytes() == payload
        assert receiver.corrupted_tpdus() == 0
        assert receiver.pending_tpdus() == []


class TestLossAndRecoveryOverNetwork:
    def test_recovery_over_lossy_path(self):
        loop = EventLoop()
        receiver = ChunkTransportReceiver()
        sender, chunks, payload = _make_traffic(frames=6, tpdu_units=32)

        acked = []

        def deliver(frame):
            events = receiver.receive_packet(frame)
            for verdict in events.verdicts:
                if verdict.ok:
                    sender.acknowledge(verdict.t_id)
                    acked.append(verdict.t_id)

        path = build_chunk_path(
            loop, [HopSpec(mtu=512, loss_rate=0.25)], deliver, seed=21
        )
        for packet in pack_chunks(chunks, 512):
            path.send(packet.encode())
        path.run()
        rounds = 0
        while sender.outstanding_tpdus() and rounds < 40:
            rounds += 1
            for t_id in list(sender.outstanding_tpdus()):
                for packet in pack_chunks(sender.retransmit(t_id), 512):
                    path.send(packet.encode())
            path.run()
        assert sender.outstanding_tpdus() == []
        assert receiver.stream_bytes() == payload
        assert receiver.corrupted_tpdus() == 0

    def test_duplicating_path_harmless(self):
        loop = EventLoop()
        receiver = ChunkTransportReceiver()
        path = build_chunk_path(
            loop,
            [HopSpec(mtu=512, dup_rate=0.4)],
            lambda frame: receiver.receive_packet(frame),
            seed=8,
        )
        sender, chunks, payload = _make_traffic(frames=6, tpdu_units=32)
        for packet in pack_chunks(chunks, 512):
            path.send(packet.encode())
        path.run()
        assert receiver.stream_bytes() == payload
        assert receiver.corrupted_tpdus() == 0


class TestCorruptionOverNetwork:
    def test_corrupting_path_never_accepts_bad_tpdus(self):
        """Random single-bit corruption on the path: a TPDU verdicted OK
        must carry its exact original bytes — corruption may reduce the
        number of verified TPDUs, never their integrity."""
        tpdu_units = 32
        unit_bytes = 4
        verified: list[int] = []
        loop = EventLoop()
        receiver = ChunkTransportReceiver()

        def deliver(frame):
            events = receiver.receive_packet(frame)
            verified.extend(v.t_id for v in events.verdicts if v.ok)

        path = build_chunk_path(
            loop, [HopSpec(mtu=512, corrupt_rate=0.3)], deliver, seed=5
        )
        sender, chunks, payload = _make_traffic(frames=10, tpdu_units=tpdu_units)
        for packet in pack_chunks(chunks, 512):
            path.send(packet.encode())
        path.run()

        assert verified, "some TPDUs should survive 30% packet corruption"
        stream = receiver.stream_bytes()
        tpdu_bytes = tpdu_units * unit_bytes
        for t_id in verified:
            start = t_id * tpdu_bytes
            end = min(start + tpdu_bytes, len(payload))
            assert stream[start:end] == payload[start:end], f"TPDU {t_id}"

    def test_corruption_campaign_statistics(self):
        """Across many corrupted runs, no verified TPDU is ever wrong
        and detection reasons stay within the Table 1 vocabulary."""
        reasons = set()
        for seed in range(8):
            loop = EventLoop()
            receiver = ChunkTransportReceiver()
            bad = []

            def deliver(frame):
                events = receiver.receive_packet(frame)
                bad.extend(v for v in events.verdicts if not v.ok)

            path = build_chunk_path(
                loop, [HopSpec(mtu=384, corrupt_rate=0.5)], deliver, seed=seed
            )
            sender, chunks, payload = _make_traffic(frames=6, tpdu_units=16)
            for packet in pack_chunks(chunks, 384):
                path.send(packet.encode())
            path.run()
            bad.extend(receiver.verifier.abort_pending())
            reasons.update(v.reason for v in bad)
        assert reasons <= {
            "code-mismatch",
            "reassembly-error",
            "consistency-check",
        }
        assert reasons  # 50% corruption must catch something
