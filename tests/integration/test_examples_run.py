"""Smoke: every shipped example runs to completion and reports success.

Examples are documentation that executes; letting them rot defeats the
point.  Each is run in-process (import + main) with its output captured
and its own success indicators checked.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run_example(name: str, capsys, argv: list[str] | None = None) -> str:
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        if argv is None:
            module.main()
        else:
            module.main(argv)
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


@pytest.mark.slow
def test_quickstart(capsys):
    out = _run_example("quickstart", capsys)
    assert "byte-exact: True" in out
    assert "corrupted: 0" in out


@pytest.mark.slow
def test_bulk_transfer(capsys):
    out = _run_example("bulk_transfer", capsys)
    assert "sha256 matches: True" in out
    assert "transfer complete: True" in out


@pytest.mark.slow
def test_video_stream(capsys):
    out = _run_example("video_stream", capsys)
    assert "played: 30" in out
    assert "pixel-exact content: 30/30" in out


@pytest.mark.slow
def test_internetwork_fragmentation(capsys):
    out = _run_example("internetwork_fragmentation", capsys)
    assert "byte-exact" in out
    assert "reassemble" in out


@pytest.mark.slow
def test_error_detection_demo(capsys):
    out = _run_example("error_detection_demo", capsys)
    assert "OK" in out
    assert "code-mismatch" in out
    assert "consistency-check" in out
    assert "reassembly-error" in out


@pytest.mark.slow
def test_reliable_transfer(capsys):
    out = _run_example("reliable_transfer", capsys)
    assert "byte-exact delivery: True" in out
    assert "gave up: 0" in out


@pytest.mark.slow
def test_many_conversations(capsys):
    out = _run_example("many_conversations", capsys)
    assert "byte-exact: 32/32" in out
    assert "idle sweep evicted 32 connections" in out
    assert "pool now holds 0" in out


@pytest.mark.slow
def test_many_conversations_sharded(capsys):
    out = _run_example("many_conversations", capsys, argv=["--shards", "4"])
    assert "4 worker shards" in out
    assert "byte-exact: 32/32" in out
    assert "connections per shard:" in out
    assert "idle sweep evicted 32 connections" in out
    assert "pool now holds 0" in out
