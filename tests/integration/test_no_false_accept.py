"""Safety property: the verifier never OKs a TPDU with wrong bytes.

This is the load-bearing guarantee behind the whole Section 4 design:
whatever bits get flipped in flight — header or payload, any field, any
count — a TPDU verdicted OK must deliver exactly the sender's bytes.
Hypothesis drives random corruption of random wire bytes across random
fragmentation schedules; any false accept is a reproduction-breaking
bug.  (False *rejects* are allowed: corruption may waste a TPDU, never
forge one.)
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import ChunkStreamBuilder
from repro.core.codec import decode_chunks, encode_chunk
from repro.core.errors import CodecError, ReproError
from repro.core.fragment import split_to_unit_limit
from repro.wsc.endtoend import EndToEndReceiver
from repro.wsc.invariant import encode_tpdu

from tests.conftest import make_payload

TPDU_UNITS = 16


def _tpdu(seed: int):
    builder = ChunkStreamBuilder(connection_id=3, tpdu_units=TPDU_UNITS)
    chunks = builder.add_frame(make_payload(TPDU_UNITS, seed=seed), frame_id=0)
    _, ed = encode_tpdu(chunks)
    return chunks, ed


@given(
    seed=st.integers(0, 50),
    limit=st.integers(1, 6),
    shuffle_seed=st.integers(0, 2**16),
    flips=st.lists(
        st.tuples(st.integers(0, 10**6), st.integers(0, 7)),
        min_size=1,
        max_size=8,
    ),
)
@settings(max_examples=250, deadline=None)
def test_random_bit_flips_never_forge_a_tpdu(seed, limit, shuffle_seed, flips):
    chunks, ed = _tpdu(seed)
    original_payload = b"".join(c.payload for c in chunks)
    pieces = [p for c in chunks for p in split_to_unit_limit(c, limit)] + [ed]
    random.Random(shuffle_seed).shuffle(pieces)

    # Serialize the whole delivery, flip bits anywhere in it.
    blob = bytearray(b"".join(encode_chunk(p) for p in pieces))
    for position, bit in flips:
        blob[position % len(blob)] ^= 1 << bit

    try:
        arrived = decode_chunks(bytes(blob))
    except CodecError:
        return  # whole delivery unparseable: trivially safe

    receiver = EndToEndReceiver()
    verdicts = []
    placements: dict[int, bytes] = {}
    for chunk in arrived:
        if chunk.is_data:
            for index in range(chunk.length):
                placements.setdefault(
                    chunk.t.sn + index,
                    chunk.unit(index),
                )
        try:
            verdicts += receiver.receive(chunk)
        except ReproError:
            return  # loud rejection is safe

    for verdict in verdicts:
        if verdict.ok and verdict.t_id == chunks[0].t.ident:
            # The verifier accepted: every unit it accounted must match
            # the sender's bytes exactly.
            got = b"".join(placements[i] for i in range(TPDU_UNITS))
            assert got == original_payload, "FALSE ACCEPT: corrupted TPDU verified OK"


@given(
    seed=st.integers(0, 50),
    limit=st.integers(1, 6),
    shuffle_seed=st.integers(0, 2**16),
)
@settings(max_examples=100, deadline=None)
def test_clean_delivery_always_accepts(seed, limit, shuffle_seed):
    """The dual guard: zero corruption must always verify (no false
    rejects on clean traffic, whatever the fragmentation/order)."""
    chunks, ed = _tpdu(seed)
    pieces = [p for c in chunks for p in split_to_unit_limit(c, limit)] + [ed]
    random.Random(shuffle_seed).shuffle(pieces)
    receiver = EndToEndReceiver()
    verdicts = []
    for chunk in pieces:
        verdicts += receiver.receive(chunk)
    assert len(verdicts) == 1 and verdicts[0].ok
