"""Scale test: a large transfer through a hostile multi-hop network.

One megabyte, three hops with shrinking MTUs, duplication on one hop,
multipath-grade reordering from a route switch, loss on the last hop,
ACK-driven recovery — everything at once, byte-exact at the end.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.core.packet import Packet, pack_chunks
from repro.core.types import ChunkType
from repro.netsim.events import EventLoop
from repro.netsim.link import Link
from repro.netsim.rng import substream
from repro.netsim.topology import HopSpec, build_chunk_path
from repro.transport.connection import ConnectionConfig
from repro.transport.reliability import ReliableReceiver, ReliableSender

OBJECT_BYTES = 1 * 1024 * 1024


@pytest.mark.slow
def test_megabyte_through_hostile_network():
    loop = EventLoop()
    box = {}

    def deliver(frame):
        box["rx"].receive_packet(frame)

    path = build_chunk_path(
        loop,
        [
            HopSpec(mtu=4096, rate_bps=622e6, delay=0.002, dup_rate=0.02),
            HopSpec(mtu=1500, rate_bps=622e6, delay=0.002),
            HopSpec(mtu=576, rate_bps=622e6, delay=0.002, loss_rate=0.05),
        ],
        deliver,
        seed=42,
    )

    sender = ReliableSender(
        loop,
        path.send,
        ConnectionConfig(connection_id=77, tpdu_units=2048),
        mtu=4096,
        rto=0.08,
        max_retries=30,
    )

    def deliver_acks(frame):
        for chunk in Packet.decode(frame).chunks:
            if chunk.type is ChunkType.ACK:
                sender.handle_ack_chunk(chunk)

    ack_link = Link(
        loop, deliver=deliver_acks, loss_rate=0.05,
        rng=substream(42, "acks"), mtu=1500,
    )
    box["rx"] = ReliableReceiver(transmit=ack_link.send)

    rng = random.Random(9)
    payload = bytes(rng.getrandbits(8) for _ in range(OBJECT_BYTES))
    digest = hashlib.sha256(payload).hexdigest()

    frame_bytes = 32 * 1024
    frame_count = OBJECT_BYTES // frame_bytes
    for index in range(frame_count):
        piece = payload[index * frame_bytes : (index + 1) * frame_bytes]
        last = index == frame_count - 1
        loop.at(
            index * 0.003,
            lambda d=piece, i=index, eoc=last: sender.send_frame(
                d, frame_id=i, end_of_connection=eoc
            ),
        )
    loop.run()
    # Drain router batches if any remain, then finish retransmissions.
    for _ in range(3):
        path.run()
        loop.run()

    received = box["rx"].receiver.stream_bytes()
    assert len(received) == OBJECT_BYTES
    assert hashlib.sha256(received).hexdigest() == digest
    assert sender.gave_up == []
    assert box["rx"].receiver.corrupted_tpdus() == 0
    # The network genuinely misbehaved:
    assert sender.retransmissions > 0
    assert box["rx"].receiver.duplicate_chunks > 0
