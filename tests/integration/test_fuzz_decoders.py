"""Decoder robustness: arbitrary bytes never crash a parser.

A protocol stack's parsers face attacker- and noise-controlled input;
every decoder in the library must either return valid objects or raise
the library's own error types — never IndexError/struct.error/
UnboundLocalError or an infinite loop.  Hypothesis supplies the bytes;
mutation tests flip bits in valid encodings (the harder case, since the
prefix parses).
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import ChunkStreamBuilder
from repro.core.codec import decode_chunks, encode_chunk
from repro.core.compress import CompressionProfile, HeaderCompressor, HeaderDecompressor
from repro.core.errors import ReproError
from repro.core.packet import Packet, pack_chunks
from repro.core.packetcomp import CompressedPacketCodec
from repro.transport.connection import ConnectionConfig
from repro.transport.receiver import ChunkTransportReceiver
from repro.wsc.endtoend import EndToEndReceiver

from tests.conftest import make_payload


def _valid_packet_bytes(seed=1) -> bytes:
    builder = ChunkStreamBuilder(connection_id=2, tpdu_units=8)
    chunks = builder.add_frame(make_payload(10, seed=seed))
    return pack_chunks(chunks, 512)[0].encode()


class TestWireCodecFuzz:
    @given(st.binary(max_size=400))
    @settings(max_examples=150)
    def test_decode_chunks_random_bytes(self, data):
        try:
            chunks = decode_chunks(data)
        except ReproError:
            return
        for chunk in chunks:
            assert chunk.length >= 1  # structurally valid objects only

    @given(st.binary(max_size=400))
    @settings(max_examples=100)
    def test_packet_decode_random_bytes(self, data):
        try:
            packet = Packet.decode(data)
        except ReproError:
            return
        assert isinstance(packet.chunks, list)

    @given(st.data())
    @settings(max_examples=150)
    def test_packet_decode_mutated_valid_bytes(self, data):
        blob = bytearray(_valid_packet_bytes())
        for _ in range(data.draw(st.integers(1, 6))):
            index = data.draw(st.integers(0, len(blob) - 1))
            blob[index] ^= 1 << data.draw(st.integers(0, 7))
        try:
            packet = Packet.decode(bytes(blob))
        except ReproError:
            return
        for chunk in packet.chunks:
            assert chunk.payload_bytes == (
                chunk.length * (chunk.unit_bytes if chunk.is_data else 4)
            )


class TestCompactCodecFuzz:
    PROFILE = CompressionProfile(connection_id=2, regenerate_sns=True)

    def _valid_compact(self, seed=1) -> bytes:
        builder = ChunkStreamBuilder(connection_id=2, tpdu_units=8)
        chunks = builder.add_frame(make_payload(10, seed=seed))
        compressor = HeaderCompressor(self.PROFILE)
        return b"".join(compressor.encode(c) for c in chunks)

    @given(st.binary(max_size=200))
    @settings(max_examples=150)
    def test_random_bytes(self, data):
        decoder = HeaderDecompressor(self.PROFILE)
        offset = 0
        try:
            while offset < len(data):
                _, offset = decoder.decode(data, offset)
        except ReproError:
            return

    @given(st.data())
    @settings(max_examples=150)
    def test_mutated_valid_bytes(self, data):
        blob = bytearray(self._valid_compact())
        index = data.draw(st.integers(0, len(blob) - 1))
        blob[index] ^= 1 << data.draw(st.integers(0, 7))
        decoder = HeaderDecompressor(self.PROFILE)
        offset = 0
        try:
            while offset < len(blob):
                chunk, offset = decoder.decode(bytes(blob), offset)
        except ReproError:
            return


class TestCompressedPacketFuzz:
    @given(st.binary(max_size=300))
    @settings(max_examples=100)
    def test_random_bytes(self, data):
        codec = CompressedPacketCodec()
        try:
            codec.decode(data)
        except ReproError:
            return

    @given(st.data())
    @settings(max_examples=100)
    def test_mutated_valid_bytes(self, data):
        builder = ChunkStreamBuilder(connection_id=2, tpdu_units=8)
        chunks = builder.add_frame(make_payload(10))
        codec = CompressedPacketCodec()
        blob = bytearray(codec.encode(chunks))
        index = data.draw(st.integers(0, len(blob) - 1))
        blob[index] ^= 1 << data.draw(st.integers(0, 7))
        try:
            CompressedPacketCodec().decode(bytes(blob))
        except ReproError:
            return


class TestReceiverFuzz:
    @given(st.binary(max_size=300))
    @settings(max_examples=100)
    def test_transport_receiver_random_packets(self, data):
        receiver = ChunkTransportReceiver()
        events = receiver.receive_packet(data)
        assert events.decode_failed or isinstance(events.verdicts, list)

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_transport_receiver_mutated_stream(self, data):
        """A full connection's packets with random mutations: the
        receiver must never crash and never report a corrupted stream
        as fully verified when bytes changed."""
        builder_seed = data.draw(st.integers(0, 20))
        receiver = ChunkTransportReceiver()
        from repro.transport.sender import ChunkTransportSender

        sender = ChunkTransportSender(ConnectionConfig(connection_id=2, tpdu_units=8))
        chunks = [sender.establishment_chunk()]
        chunks += sender.send_frame(make_payload(16, seed=builder_seed))
        frames = [p.encode() for p in pack_chunks(chunks, 256)]
        target = data.draw(st.integers(0, len(frames) - 1))
        blob = bytearray(frames[target])
        index = data.draw(st.integers(0, len(blob) - 1))
        blob[index] ^= 1 << data.draw(st.integers(0, 7))
        frames[target] = bytes(blob)
        order = list(range(len(frames)))
        random.Random(data.draw(st.integers(0, 99))).shuffle(order)
        for position in order:
            receiver.receive_packet(frames[position])
        # No crash is the main property; counters must stay coherent.
        assert receiver.verified_tpdus() + receiver.corrupted_tpdus() >= 0


class TestEndToEndReceiverFuzz:
    @given(st.data())
    @settings(max_examples=120)
    def test_decoded_garbage_chunks(self, data):
        """Whatever parses as a chunk must be digestible."""
        blob = data.draw(st.binary(min_size=44, max_size=200))
        padded = bytes(blob)
        try:
            chunks = decode_chunks(padded)
        except ReproError:
            return
        receiver = EndToEndReceiver()
        for chunk in chunks:
            try:
                receiver.receive(chunk)
            except ReproError:
                return
