"""Two Appendix A / Section 1 integration scenarios.

1. **SN-regeneration desynchronization** (Appendix A): "because loss and
   misordering may occur, the counter at the receiver may sometimes lose
   synchronization with the transmitter...  During the time that the
   receiver is out of synchronization, the error detection system will
   detect the incorrect sequence numbers and allow any incorrect chunks
   to be discarded."  We drop a compact-header chunk mid-stream and show
   (a) subsequent implicit chunks decode with wrong SNs, (b) the
   end-to-end verifier rejects every affected TPDU, (c) the explicit
   header at the next TPDU start resynchronizes and later TPDUs verify.

2. **Encrypted transfer on disordered chunks** (Section 1 / [FELD 92]):
   64-bit cipher blocks ride as SIZE=2 chunks; the SIZE field keeps
   blocks intact under fragmentation, and the position-keyed mode
   decrypts every chunk on arrival, in any order.
"""

from __future__ import annotations

import random

from repro.core.builder import ChunkStreamBuilder
from repro.core.compress import (
    CompressionProfile,
    HeaderCompressor,
    HeaderDecompressor,
    implicit_tpdu_ids,
)
from repro.core.fragment import split_to_unit_limit
from repro.crypto.modes import PositionKeyedMode
from repro.crypto.xtea import Xtea
from repro.host.delivery import PlacementBuffer
from repro.wsc.endtoend import EndToEndReceiver
from repro.wsc.invariant import encode_tpdu

from tests.conftest import make_payload

KEY = bytes(range(16))


class TestSnRegenerationDesync:
    def _compact_stream(self, tpdus=4, tpdu_units=8):
        builder = ChunkStreamBuilder(
            connection_id=4,
            tpdu_units=tpdu_units,
            tpdu_ids=implicit_tpdu_ids(0, tpdu_units),
        )
        profile = CompressionProfile(
            connection_id=4, implicit_t_id=True, regenerate_sns=True
        )
        compressor = HeaderCompressor(profile)
        records = []  # (tpdu_id, encoded chunk bytes or ed chunk bytes)
        for index in range(tpdus):
            chunks = builder.add_frame(
                make_payload(tpdu_units, seed=index), frame_id=index
            )
            # Two chunks per TPDU so the second can ride implicitly.
            halves = []
            for chunk in chunks:
                halves.extend(split_to_unit_limit(chunk, tpdu_units // 2))
            _, ed = encode_tpdu(chunks)
            for piece in halves:
                records.append((index, compressor.encode(piece)))
            records.append((index, compressor.encode(ed)))
        return profile, records

    def test_desync_detected_then_resynchronized(self):
        profile, records = self._compact_stream()
        # Drop the SECOND (implicit) data record of TPDU 1.
        implicit_positions = [
            i for i, (tpdu, blob) in enumerate(records)
            if tpdu == 1 and not (blob[1] & 0x08)  # EXPLICIT flag clear
        ]
        assert implicit_positions, "stream has no implicit headers to drop"
        kept = [r for i, r in enumerate(records) if i != implicit_positions[0]]

        decoder = HeaderDecompressor(profile)
        receiver = EndToEndReceiver()
        verdicts = []
        for _tpdu, blob in kept:
            offset = 0
            while offset < len(blob):
                chunk, offset = decoder.decode(blob, offset)
                verdicts += receiver.receive(chunk)
        verdicts += receiver.abort_pending()

        by_tpdu = {v.t_id: v for v in verdicts}
        ok = {t for t, v in by_tpdu.items() if v.ok}
        bad = {t for t, v in by_tpdu.items() if not v.ok}
        # TPDU 0 (before the drop) and TPDUs 2..3 (after the explicit
        # resync at their TPDU-start headers) verify; TPDU 1 does not.
        assert 0 in ok
        assert bad  # the desynchronized TPDU was caught, not accepted
        later = {t for t in ok if t > max(bad)}
        assert later, "no TPDU after the desync recovered"

    def test_clean_compact_stream_all_verify(self):
        profile, records = self._compact_stream()
        decoder = HeaderDecompressor(profile)
        receiver = EndToEndReceiver()
        verdicts = []
        for _tpdu, blob in records:
            offset = 0
            while offset < len(blob):
                chunk, offset = decoder.decode(blob, offset)
                verdicts += receiver.receive(chunk)
        assert len(verdicts) == 4 and all(v.ok for v in verdicts)


class TestEncryptedDisorderedTransfer:
    def test_decrypt_on_arrival_any_order(self):
        plaintext = make_payload(64, size=2, seed=9)  # 512 B, 64 blocks
        mode = PositionKeyedMode(Xtea(KEY), nonce=5)
        ciphertext = mode.encrypt_at(0, plaintext)

        builder = ChunkStreamBuilder(connection_id=8, tpdu_units=32, unit_words=2)
        chunks = builder.add_frame(ciphertext, frame_id=0, end_of_connection=True)
        pieces = [p for c in chunks for p in split_to_unit_limit(c, 3)]
        random.Random(4).shuffle(pieces)

        # Every unit is one 64-bit cipher block; SIZE=2 guarantees no
        # fragment ever splits a block.
        assert all(p.unit_bytes == 8 for p in pieces)

        out = PlacementBuffer(total_bytes=len(plaintext))
        for piece in pieces:
            block_index = piece.c.sn  # block position = connection SN
            decrypted = mode.decrypt_at(block_index, piece.payload)
            out.place(piece.c.sn * piece.unit_bytes, decrypted)
        assert out.is_complete()
        assert out.contents() == plaintext

    def test_verification_and_decryption_compose(self):
        """ED runs over the ciphertext (what was transmitted); decryption
        is an independent per-chunk step — ILP in action."""
        plaintext = make_payload(32, size=2, seed=11)
        mode = PositionKeyedMode(Xtea(KEY), nonce=6)
        ciphertext = mode.encrypt_at(0, plaintext)

        builder = ChunkStreamBuilder(connection_id=8, tpdu_units=32, unit_words=2)
        chunks = builder.add_frame(ciphertext, frame_id=0)
        _, ed = encode_tpdu(chunks)
        pieces = [p for c in chunks for p in split_to_unit_limit(c, 2)] + [ed]
        random.Random(1).shuffle(pieces)

        receiver = EndToEndReceiver()
        out = PlacementBuffer(total_bytes=len(plaintext))
        verdicts = []
        for piece in pieces:
            verdicts += receiver.receive(piece)
            if piece.is_data:
                out.place(
                    piece.c.sn * piece.unit_bytes,
                    mode.decrypt_at(piece.c.sn, piece.payload),
                )
        assert len(verdicts) == 1 and verdicts[0].ok
        assert out.contents() == plaintext
