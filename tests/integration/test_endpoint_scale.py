"""Acceptance: one multiplexed endpoint, 256 concurrent conversations.

The C.ID demultiplexing move the paper builds on (one label lookup per
chunk, state "directly available" per conversation) only earns its keep
if one endpoint can run hundreds of conversations over a contended,
lossy link without per-connection interference.  This suite drives 256
staggered bulk/video conversations between a single sender
``ChunkEndpoint`` and a single receiver ``ChunkEndpoint`` through one
shared lossy bottleneck and checks the whole contract at once:
byte-identical delivery per conversation, the 1.0-touch/byte budget per
connection, idle eviction reclaiming table and pool state, and fair
refusal (never blocking) when the shared placement pool runs short.
"""

from __future__ import annotations

import pytest

from repro.app.concurrent import (
    ConcurrentWorkload,
    deterministic_payload,
    staggered_specs,
)
from repro.host.budget import SharedPlacementBudget
from repro.netsim.bottleneck import build_shared_bottleneck
from repro.netsim.events import EventLoop
from repro.netsim.topology import HopSpec
from repro.transport.connection import ConnectionConfig
from repro.transport.endpoint import ChunkEndpoint

CONVERSATIONS = 256
OBJECT_BYTES = 2048
LOSS = 0.01


def endpoint_pair_over_bottleneck(
    loop: EventLoop,
    loss: float = LOSS,
    seed: int = 41,
    budget: SharedPlacementBudget | None = None,
) -> tuple[ChunkEndpoint, ChunkEndpoint]:
    sender = ChunkEndpoint(loop, mtu=1500, idle_timeout=5.0)
    receiver = ChunkEndpoint(loop, mtu=1500, idle_timeout=5.0)
    if budget is not None:
        receiver.budget = budget
    net = build_shared_bottleneck(
        loop,
        pairs=[(receiver.receive_packet, sender.receive_packet)],
        bottleneck=HopSpec(mtu=1500, rate_bps=622e6, delay=0.0005, loss_rate=loss),
        reverse=HopSpec(mtu=1500, rate_bps=622e6, delay=0.0005),
        seed=seed,
    )
    sender.transmit = net.ports[0].send
    receiver.transmit = net.ports[0].send_reverse
    return sender, receiver


@pytest.fixture(scope="module")
def scale_run():
    """One 256-conversation run shared by the per-property tests."""
    loop = EventLoop()
    sender, receiver = endpoint_pair_over_bottleneck(loop)
    work = ConcurrentWorkload(loop, sender, receiver)
    work.launch(
        staggered_specs(CONVERSATIONS, total_bytes=OBJECT_BYTES, stagger=0.0005)
    )
    outcomes = work.run()
    return loop, sender, receiver, outcomes


@pytest.mark.slow
def test_every_stream_is_byte_identical(scale_run):
    _, _, receiver, outcomes = scale_run
    assert len(outcomes) == CONVERSATIONS
    assert all(o.launched for o in outcomes)
    incomplete = [o.spec.connection_id for o in outcomes if not o.complete]
    assert incomplete == []
    # `complete` already compares against the deterministic payload, but
    # re-check a sample end to end through the endpoint's own accessor.
    for cid in (1, CONVERSATIONS // 2, CONVERSATIONS):
        conn = receiver.connection(cid)
        assert conn is not None
        assert conn.stream_bytes() == deterministic_payload(cid, OBJECT_BYTES)


@pytest.mark.slow
def test_every_connection_keeps_the_touch_budget(scale_run):
    _, _, receiver, outcomes = scale_run
    # Data labelling's payoff at scale: placement stays one touch per
    # byte for every conversation even when 256 share the endpoint.
    assert all(abs(o.touches_per_byte - 1.0) < 1e-9 for o in outcomes)
    for conn in receiver.table.connections.values():
        assert conn.ledger.touches == {"nic-to-app": OBJECT_BYTES}


@pytest.mark.slow
def test_conversations_actually_overlapped(scale_run):
    _, sender, receiver, _ = scale_run
    # The run must exercise multiplexing, not 256 serial transfers:
    # egress packed chunks of different conversations into shared
    # packets, and the whole sweep finished in far less time than 256
    # back-to-back transfers would need.
    assert sender.mixed_packets > 0
    stats = receiver.stats()
    assert stats["established_total"] == CONVERSATIONS
    assert stats["active_connections"] == CONVERSATIONS


@pytest.mark.slow
def test_idle_eviction_reclaims_table_and_pool(scale_run):
    loop, _, receiver, _ = scale_run
    held = receiver.budget.reserved_total
    assert held > 0
    assert len(receiver.table.connections) == CONVERSATIONS
    loop.at(loop.now + receiver.idle_timeout + 1.0, lambda: None)
    loop.run()
    evicted = receiver.sweep()
    assert sorted(evicted) == list(range(1, CONVERSATIONS + 1))
    assert len(receiver.table.connections) == 0
    assert receiver.budget.reserved_total == 0
    assert receiver.table.evicted_total == CONVERSATIONS


@pytest.mark.slow
def test_budget_refuses_over_limit_connection_without_stalling_others():
    peers = 12
    peer_bytes = 2048
    pool = 64 * 1024  # stream+frames double-reserve: each peer holds ~4 KiB
    loop = EventLoop()
    budget = SharedPlacementBudget(pool_bytes=pool, min_share_bytes=4 * 1024)
    sender, receiver = endpoint_pair_over_bottleneck(
        loop, loss=0.0, seed=43, budget=budget
    )
    for cid in range(1, peers + 1):
        conn = sender.open_connection(ConnectionConfig(connection_id=cid, tpdu_units=64))
        conn.send_frame(deterministic_payload(cid, peer_bytes), end_of_connection=True)
    hog = sender.open_connection(
        ConnectionConfig(connection_id=500, tpdu_units=64), max_retries=3
    )
    hog.send_frame(deterministic_payload(500, 48 * 1024), end_of_connection=True)
    loop.run()
    for cid in range(1, peers + 1):
        conn = receiver.connection(cid)
        assert conn is not None, f"peer {cid} never established"
        assert conn.stream_bytes() == deterministic_payload(cid, peer_bytes)
    # The hog was refused — visibly.  Its sender gave up on TPDUs the
    # receiver never acknowledged (refused placements are not verified,
    # so there is no acknowledged-but-unplaced silent loss), the pool
    # never overran, and the refusals are all attributable to the hog.
    assert budget.refusals > 0
    assert budget.was_refused(500)
    assert len(hog.sender.gave_up) > 0
    assert budget.peak_reserved <= pool
    hog_conn = receiver.connection(500)
    if hog_conn is not None and hog_conn.receiver is not None:
        placed = hog_conn.receiver.receiver.stream.bytes_placed
        assert placed < 48 * 1024
